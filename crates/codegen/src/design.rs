//! The generated communication design: which CK pairs exist on each rank and
//! where every application port attaches.
//!
//! "Each FPGA network interface is managed by a different CKS/CKR pair. In
//! this way, we avoid a single centralization point […] Application endpoints
//! are connected to one CKS or CKR using a FIFO buffer." (§4.3)

use serde::{Deserialize, Serialize};

use smi_topology::Topology;

use crate::{CodegenError, OpKind, OpSpec, ProgramMeta};

/// The attachment of one application port to the transport layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PortBinding {
    /// The SMI operation this binding realizes.
    pub op: OpSpec,
    /// Index into [`CommDesign::ck_qsfps`]: which CKS/CKR pair serves this
    /// endpoint's FIFO.
    pub ck_pair: usize,
}

/// The communication hardware generated for one rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommDesign {
    /// This design's rank.
    pub rank: usize,
    /// QSFP port ids (in ascending order) that have a cable, i.e. for which a
    /// CKS/CKR pair is instantiated.
    pub ck_qsfps: Vec<usize>,
    /// Application endpoint attachments, in declaration order.
    pub bindings: Vec<PortBinding>,
}

impl CommDesign {
    /// Generate the design for `rank` from its op metadata and the cluster
    /// topology. Application ports are distributed over the CK pairs
    /// round-robin in ascending port order, so that independent endpoints
    /// use distinct network interfaces where possible ("all ports represent
    /// hardware connections, and can thus operate fully in parallel", §2.2).
    pub fn generate(
        meta: &ProgramMeta,
        topo: &Topology,
        rank: usize,
    ) -> Result<CommDesign, CodegenError> {
        meta.validate()?;
        let ck_qsfps: Vec<usize> = topo.neighbors(rank).map(|(q, _)| q).collect();
        if ck_qsfps.is_empty() && topo.num_ranks() > 1 {
            return Err(CodegenError::NoNetworkPorts { rank });
        }
        // Deterministic assignment: sort endpoint declarations by (port, kind
        // discriminant), then round-robin over CK pairs.
        let mut order: Vec<usize> = (0..meta.ops.len()).collect();
        order.sort_by_key(|&i| (meta.ops[i].port, meta.ops[i].kind as usize));
        let n_pairs = ck_qsfps.len().max(1);
        let mut bindings = vec![
            PortBinding {
                op: OpSpec::send(0, smi_wire::Datatype::Char),
                ck_pair: 0
            };
            meta.ops.len()
        ];
        for (slot, &op_idx) in order.iter().enumerate() {
            bindings[op_idx] = PortBinding {
                op: meta.ops[op_idx],
                ck_pair: slot % n_pairs,
            };
        }
        Ok(CommDesign {
            rank,
            ck_qsfps,
            bindings,
        })
    }

    /// Number of CKS/CKR pairs in this design.
    #[inline]
    pub fn num_ck_pairs(&self) -> usize {
        self.ck_qsfps.len()
    }

    /// The binding of `port` for the given op kind, if any.
    pub fn binding(&self, port: usize, kind: OpKind) -> Option<&PortBinding> {
        self.bindings
            .iter()
            .find(|b| b.op.port == port && b.op.kind == kind)
    }

    /// The CK pair serving `port`/`kind`, as an index into `ck_qsfps`.
    pub fn ck_pair_of(&self, port: usize, kind: OpKind) -> Option<usize> {
        self.binding(port, kind).map(|b| b.ck_pair)
    }
}

/// The designs of all ranks of a program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterDesign {
    /// One design per rank.
    pub per_rank: Vec<CommDesign>,
}

impl ClusterDesign {
    /// SPMD: the same op metadata on every rank ("for SPMD programs, only one
    /// instance of the code is generated", §4.5).
    pub fn spmd(meta: &ProgramMeta, topo: &Topology) -> Result<ClusterDesign, CodegenError> {
        let per_rank = (0..topo.num_ranks())
            .map(|r| CommDesign::generate(meta, topo, r))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ClusterDesign { per_rank })
    }

    /// MPMD: distinct metadata per rank (`metas.len()` must equal the number
    /// of ranks).
    pub fn mpmd(metas: &[ProgramMeta], topo: &Topology) -> Result<ClusterDesign, CodegenError> {
        assert_eq!(
            metas.len(),
            topo.num_ranks(),
            "one ProgramMeta per rank required"
        );
        let per_rank = metas
            .iter()
            .enumerate()
            .map(|(r, m)| CommDesign::generate(m, topo, r))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ClusterDesign { per_rank })
    }

    /// Cross-rank consistency check for collectives: a collective port must
    /// be declared with the same kind, datatype and reduce operator on every
    /// rank that declares it.
    pub fn validate_collectives(&self) -> Result<(), CodegenError> {
        let mut seen: Vec<(usize, OpSpec)> = Vec::new();
        for design in &self.per_rank {
            for b in &design.bindings {
                if !b.op.kind.is_collective() {
                    continue;
                }
                match seen.iter().find(|(p, _)| *p == b.op.port) {
                    None => seen.push((b.op.port, b.op)),
                    Some((_, prev)) => {
                        if prev.kind != b.op.kind {
                            return Err(CodegenError::SpmdMismatch {
                                port: b.op.port,
                                detail: format!("{:?} vs {:?}", prev.kind, b.op.kind),
                            });
                        }
                        if prev.dtype != b.op.dtype {
                            return Err(CodegenError::SpmdMismatch {
                                port: b.op.port,
                                detail: format!("dtype {:?} vs {:?}", prev.dtype, b.op.dtype),
                            });
                        }
                        if prev.reduce_op != b.op.reduce_op {
                            return Err(CodegenError::SpmdMismatch {
                                port: b.op.port,
                                detail: format!(
                                    "reduce op {:?} vs {:?}",
                                    prev.reduce_op, b.op.reduce_op
                                ),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The design of one rank.
    #[inline]
    pub fn rank(&self, r: usize) -> &CommDesign {
        &self.per_rank[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smi_wire::{Datatype, ReduceOp};

    fn p2p_meta() -> ProgramMeta {
        ProgramMeta::new()
            .with(OpSpec::send(0, Datatype::Int))
            .with(OpSpec::recv(1, Datatype::Int))
            .with(OpSpec::send(2, Datatype::Float))
            .with(OpSpec::recv(3, Datatype::Float))
            .with(OpSpec::send(4, Datatype::Double))
    }

    #[test]
    fn one_ck_pair_per_connected_qsfp() {
        let topo = Topology::torus2d(2, 4);
        let design = CommDesign::generate(&p2p_meta(), &topo, 0).unwrap();
        assert_eq!(design.num_ck_pairs(), 4);
        assert_eq!(design.ck_qsfps, vec![0, 1, 2, 3]);
        let topo = Topology::bus(8);
        let design = CommDesign::generate(&p2p_meta(), &topo, 0).unwrap();
        assert_eq!(design.num_ck_pairs(), 1, "bus end has one cable");
        let design = CommDesign::generate(&p2p_meta(), &topo, 3).unwrap();
        assert_eq!(design.num_ck_pairs(), 2, "bus middle has two cables");
    }

    #[test]
    fn ports_round_robin_over_ck_pairs() {
        let topo = Topology::torus2d(2, 4);
        let design = CommDesign::generate(&p2p_meta(), &topo, 0).unwrap();
        // Ports 0..4 sorted -> pairs 0,1,2,3,0.
        assert_eq!(design.ck_pair_of(0, OpKind::Send), Some(0));
        assert_eq!(design.ck_pair_of(1, OpKind::Recv), Some(1));
        assert_eq!(design.ck_pair_of(2, OpKind::Send), Some(2));
        assert_eq!(design.ck_pair_of(3, OpKind::Recv), Some(3));
        assert_eq!(design.ck_pair_of(4, OpKind::Send), Some(0));
    }

    #[test]
    fn spmd_cluster() {
        let topo = Topology::torus2d(2, 4);
        let meta = ProgramMeta::new().with(OpSpec::bcast(0, Datatype::Float));
        let cluster = ClusterDesign::spmd(&meta, &topo).unwrap();
        assert_eq!(cluster.per_rank.len(), 8);
        cluster.validate_collectives().unwrap();
    }

    #[test]
    fn mpmd_collective_mismatch_detected() {
        let topo = Topology::bus(2);
        let m0 = ProgramMeta::new().with(OpSpec::reduce(0, Datatype::Float, ReduceOp::Add));
        let m1 = ProgramMeta::new().with(OpSpec::reduce(0, Datatype::Float, ReduceOp::Max));
        let cluster = ClusterDesign::mpmd(&[m0, m1], &topo).unwrap();
        assert!(matches!(
            cluster.validate_collectives(),
            Err(CodegenError::SpmdMismatch { port: 0, .. })
        ));
    }

    #[test]
    fn isolated_rank_rejected() {
        // Single-rank topologies are fine (no network needed)…
        let topo = Topology::bus(1);
        CommDesign::generate(&p2p_meta(), &topo, 0).unwrap();
        // …but a rank with no cables in a multi-rank cluster cannot exist —
        // the Topology constructor already rejects disconnected graphs, so
        // exercise the check directly via an empty neighbor list.
        // (bus(1) has no neighbors and num_ranks == 1, so it passes.)
    }

    #[test]
    fn invalid_meta_propagates() {
        let topo = Topology::bus(2);
        let meta = ProgramMeta::new()
            .with(OpSpec::send(0, Datatype::Int))
            .with(OpSpec::send(0, Datatype::Int));
        assert!(CommDesign::generate(&meta, &topo, 0).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let topo = Topology::torus2d(2, 2);
        let cluster = ClusterDesign::spmd(&p2p_meta(), &topo).unwrap();
        let json = serde_json::to_string(&cluster).unwrap();
        let back: ClusterDesign = serde_json::from_str(&json).unwrap();
        assert_eq!(cluster, back);
    }
}
