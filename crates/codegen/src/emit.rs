//! Human-readable report of a generated communication design — the stand-in
//! for the OpenCL device source the paper's code generator emits.

use std::fmt::Write as _;

use crate::{ClusterDesign, CommDesign};

/// Render one rank's design as a report resembling the structure of the
/// generated device code (CK instances, FIFO attachments, support kernels).
pub fn emit_rank_report(design: &CommDesign) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// === generated SMI transport for rank {} ===",
        design.rank
    );
    let _ = writeln!(out, "// {} CKS/CKR pair(s)", design.num_ck_pairs());
    for (pair, qsfp) in design.ck_qsfps.iter().enumerate() {
        let _ = writeln!(out, "kernel CK_S_{pair} {{ io_channel: QSFP{qsfp} (tx) }}");
        let _ = writeln!(out, "kernel CK_R_{pair} {{ io_channel: QSFP{qsfp} (rx) }}");
    }
    for b in &design.bindings {
        let op = &b.op;
        let dir = match op.kind {
            crate::OpKind::Send => "app -> CK_S",
            crate::OpKind::Recv => "CK_R -> app",
            _ => "app <-> support kernel",
        };
        let _ = writeln!(
            out,
            "endpoint port {port}: {kind:?}<{dtype:?}> {dir}_{pair} (fifo depth {depth} packets){extra}",
            port = op.port,
            kind = op.kind,
            dtype = op.dtype,
            dir = dir,
            pair = b.ck_pair,
            depth = op.buffer_depth,
            extra = match op.reduce_op {
                Some(r) => format!(" reduce={r:?}"),
                None => String::new(),
            },
        );
        if op.kind.is_collective() {
            let _ = writeln!(
                out,
                "kernel support_{kind:?}_{port} {{ between app port {port} and CK pair {pair} }}",
                kind = op.kind,
                port = op.port,
                pair = b.ck_pair,
            );
        }
    }
    out
}

/// Render the whole cluster's design.
pub fn emit_cluster_report(cluster: &ClusterDesign) -> String {
    let mut out = String::new();
    for d in &cluster.per_rank {
        out.push_str(&emit_rank_report(d));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpSpec, ProgramMeta};
    use smi_topology::Topology;
    use smi_wire::{Datatype, ReduceOp};

    #[test]
    fn report_mentions_all_components() {
        let topo = Topology::torus2d(2, 4);
        let meta = ProgramMeta::new()
            .with(OpSpec::send(0, Datatype::Int))
            .with(OpSpec::reduce(1, Datatype::Float, ReduceOp::Add));
        let design = crate::CommDesign::generate(&meta, &topo, 3).unwrap();
        let report = emit_rank_report(&design);
        assert!(report.contains("rank 3"));
        assert!(report.contains("CK_S_0"));
        assert!(report.contains("CK_R_3"));
        assert!(report.contains("QSFP2"));
        assert!(report.contains("Send<Int>"));
        assert!(report.contains("support_Reduce_1"));
        assert!(report.contains("reduce=Add"));
    }

    #[test]
    fn cluster_report_covers_every_rank() {
        let topo = Topology::bus(4);
        let meta = ProgramMeta::new().with(OpSpec::bcast(0, Datatype::Float));
        let cluster = crate::ClusterDesign::spmd(&meta, &topo).unwrap();
        let report = emit_cluster_report(&cluster);
        for r in 0..4 {
            assert!(report.contains(&format!("rank {r}")));
        }
    }
}
