//! SMI operation metadata — what the paper's Clang-based metadata extractor
//! pulls out of the user's device code.

use serde::{Deserialize, Serialize};

use smi_wire::{Datatype, ReduceOp};

use crate::{CodegenError, DEFAULT_BUFFER_DEPTH};

/// The kind of an SMI operation appearing in a program.
///
/// `Send`/`Recv` correspond to `SMI_Open_send_channel` /
/// `SMI_Open_recv_channel`; the rest to the collective open-channel
/// primitives of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Point-to-point send endpoint.
    Send,
    /// Point-to-point receive endpoint.
    Recv,
    /// Broadcast participant (root or non-root — decided at runtime).
    Bcast,
    /// Scatter participant.
    Scatter,
    /// Gather participant.
    Gather,
    /// Reduce participant.
    Reduce,
}

impl OpKind {
    /// All op kinds.
    pub const ALL: [OpKind; 6] = [
        OpKind::Send,
        OpKind::Recv,
        OpKind::Bcast,
        OpKind::Scatter,
        OpKind::Gather,
        OpKind::Reduce,
    ];

    /// Collectives require a dedicated support kernel and exclusive port use:
    /// "SMI allows multiple collective communications of the same type to
    /// execute in parallel, provided that they use separate ports" (§3.2).
    #[inline]
    pub fn is_collective(self) -> bool {
        !matches!(self, OpKind::Send | OpKind::Recv)
    }
}

/// One SMI operation found in a rank's code.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpSpec {
    /// Which primitive.
    pub kind: OpKind,
    /// The SMI port identifying this endpoint within the rank.
    pub port: usize,
    /// Element datatype of the channel.
    pub dtype: Datatype,
    /// Reduction operator — present iff `kind == Reduce`.
    pub reduce_op: Option<ReduceOp>,
    /// FIFO depth (in packets) between the endpoint and its CK module —
    /// the asynchronicity degree *k* of §3.3, a pure optimization parameter.
    pub buffer_depth: usize,
}

impl OpSpec {
    /// A point-to-point send endpoint on `port` carrying `dtype`.
    pub fn send(port: usize, dtype: Datatype) -> OpSpec {
        OpSpec {
            kind: OpKind::Send,
            port,
            dtype,
            reduce_op: None,
            buffer_depth: DEFAULT_BUFFER_DEPTH,
        }
    }

    /// A point-to-point receive endpoint on `port` carrying `dtype`.
    pub fn recv(port: usize, dtype: Datatype) -> OpSpec {
        OpSpec {
            kind: OpKind::Recv,
            port,
            dtype,
            reduce_op: None,
            buffer_depth: DEFAULT_BUFFER_DEPTH,
        }
    }

    /// A broadcast endpoint on `port` carrying `dtype`.
    pub fn bcast(port: usize, dtype: Datatype) -> OpSpec {
        OpSpec {
            kind: OpKind::Bcast,
            port,
            dtype,
            reduce_op: None,
            buffer_depth: DEFAULT_BUFFER_DEPTH,
        }
    }

    /// A scatter endpoint on `port` carrying `dtype`.
    pub fn scatter(port: usize, dtype: Datatype) -> OpSpec {
        OpSpec {
            kind: OpKind::Scatter,
            port,
            dtype,
            reduce_op: None,
            buffer_depth: DEFAULT_BUFFER_DEPTH,
        }
    }

    /// A gather endpoint on `port` carrying `dtype`.
    pub fn gather(port: usize, dtype: Datatype) -> OpSpec {
        OpSpec {
            kind: OpKind::Gather,
            port,
            dtype,
            reduce_op: None,
            buffer_depth: DEFAULT_BUFFER_DEPTH,
        }
    }

    /// A reduce endpoint on `port` carrying `dtype`, reducing with `op`.
    pub fn reduce(port: usize, dtype: Datatype, op: ReduceOp) -> OpSpec {
        OpSpec {
            kind: OpKind::Reduce,
            port,
            dtype,
            reduce_op: Some(op),
            buffer_depth: DEFAULT_BUFFER_DEPTH,
        }
    }

    /// Builder-style override of the FIFO depth.
    pub fn with_buffer_depth(mut self, depth: usize) -> OpSpec {
        self.buffer_depth = depth;
        self
    }
}

/// The full set of SMI operations of one rank's program.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProgramMeta {
    /// The operations, in declaration order.
    pub ops: Vec<OpSpec>,
}

impl ProgramMeta {
    /// An empty program (no SMI ops — a compute-only rank).
    pub fn new() -> ProgramMeta {
        ProgramMeta::default()
    }

    /// Build from a list of ops.
    pub fn from_ops(ops: Vec<OpSpec>) -> ProgramMeta {
        ProgramMeta { ops }
    }

    /// Add an op (builder style).
    pub fn with(mut self, op: OpSpec) -> ProgramMeta {
        self.ops.push(op);
        self
    }

    /// Validate the port-sharing rules:
    ///
    /// * a port may carry at most one `Send` and at most one `Recv`
    ///   (both together are legal — intra-rank channels use matching ports);
    /// * a collective owns its port exclusively;
    /// * all ops on a port agree on the datatype;
    /// * reduce ops carry a reduction operator, others must not;
    /// * ports fit the wire field and buffer depths are nonzero.
    pub fn validate(&self) -> Result<(), CodegenError> {
        for op in &self.ops {
            if op.port >= smi_wire::MAX_PORTS {
                return Err(CodegenError::PortOutOfRange(op.port));
            }
            if (op.kind == OpKind::Reduce) != op.reduce_op.is_some() {
                return Err(CodegenError::BadReduceOp { port: op.port });
            }
            if op.buffer_depth == 0 {
                return Err(CodegenError::ZeroBufferDepth { port: op.port });
            }
        }
        // Pairwise port-sharing rules (op lists are tiny; O(n^2) is fine).
        for (i, a) in self.ops.iter().enumerate() {
            for b in &self.ops[i + 1..] {
                if a.port != b.port {
                    continue;
                }
                let compatible = (a.kind == OpKind::Send && b.kind == OpKind::Recv)
                    || (a.kind == OpKind::Recv && b.kind == OpKind::Send);
                if !compatible {
                    return Err(CodegenError::PortClash {
                        port: a.port,
                        first: a.kind,
                        second: b.kind,
                    });
                }
                if a.dtype != b.dtype {
                    return Err(CodegenError::TypeClash {
                        port: a.port,
                        first: a.dtype,
                        second: b.dtype,
                    });
                }
            }
        }
        Ok(())
    }

    /// Look up the op bound to `port` with the given kind.
    pub fn find(&self, port: usize, kind: OpKind) -> Option<&OpSpec> {
        self.ops.iter().find(|o| o.port == port && o.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_fields() {
        let op = OpSpec::reduce(3, Datatype::Float, ReduceOp::Add).with_buffer_depth(64);
        assert_eq!(op.kind, OpKind::Reduce);
        assert_eq!(op.port, 3);
        assert_eq!(op.reduce_op, Some(ReduceOp::Add));
        assert_eq!(op.buffer_depth, 64);
    }

    #[test]
    fn valid_program() {
        let meta = ProgramMeta::new()
            .with(OpSpec::send(0, Datatype::Int))
            .with(OpSpec::recv(1, Datatype::Int))
            .with(OpSpec::bcast(2, Datatype::Float))
            .with(OpSpec::reduce(3, Datatype::Float, ReduceOp::Add));
        meta.validate().unwrap();
    }

    #[test]
    fn send_recv_port_share_is_legal() {
        // Intra-rank channel: send and recv on the same port.
        let meta = ProgramMeta::new()
            .with(OpSpec::send(5, Datatype::Double))
            .with(OpSpec::recv(5, Datatype::Double));
        meta.validate().unwrap();
    }

    #[test]
    fn duplicate_send_rejected() {
        let meta = ProgramMeta::new()
            .with(OpSpec::send(0, Datatype::Int))
            .with(OpSpec::send(0, Datatype::Int));
        assert!(matches!(
            meta.validate(),
            Err(CodegenError::PortClash { port: 0, .. })
        ));
    }

    #[test]
    fn collective_port_is_exclusive() {
        let meta = ProgramMeta::new()
            .with(OpSpec::bcast(0, Datatype::Int))
            .with(OpSpec::send(0, Datatype::Int));
        assert!(matches!(
            meta.validate(),
            Err(CodegenError::PortClash { .. })
        ));
        let meta = ProgramMeta::new()
            .with(OpSpec::bcast(1, Datatype::Int))
            .with(OpSpec::gather(1, Datatype::Int));
        assert!(matches!(
            meta.validate(),
            Err(CodegenError::PortClash { .. })
        ));
    }

    #[test]
    fn type_clash_on_shared_port() {
        let meta = ProgramMeta::new()
            .with(OpSpec::send(2, Datatype::Int))
            .with(OpSpec::recv(2, Datatype::Float));
        assert!(matches!(
            meta.validate(),
            Err(CodegenError::TypeClash { port: 2, .. })
        ));
    }

    #[test]
    fn reduce_op_required_exactly_for_reduce() {
        let mut bad = OpSpec::send(0, Datatype::Int);
        bad.reduce_op = Some(ReduceOp::Max);
        assert!(matches!(
            ProgramMeta::from_ops(vec![bad]).validate(),
            Err(CodegenError::BadReduceOp { .. })
        ));
        let mut bad = OpSpec::reduce(0, Datatype::Int, ReduceOp::Max);
        bad.reduce_op = None;
        assert!(matches!(
            ProgramMeta::from_ops(vec![bad]).validate(),
            Err(CodegenError::BadReduceOp { .. })
        ));
    }

    #[test]
    fn range_checks() {
        let meta = ProgramMeta::from_ops(vec![OpSpec::send(300, Datatype::Int)]);
        assert_eq!(meta.validate(), Err(CodegenError::PortOutOfRange(300)));
        let meta = ProgramMeta::from_ops(vec![OpSpec::send(0, Datatype::Int).with_buffer_depth(0)]);
        assert!(matches!(
            meta.validate(),
            Err(CodegenError::ZeroBufferDepth { .. })
        ));
    }

    #[test]
    fn serde_roundtrip() {
        let meta = ProgramMeta::new()
            .with(OpSpec::send(0, Datatype::Int))
            .with(OpSpec::reduce(3, Datatype::Float, ReduceOp::Min));
        let json = serde_json::to_string(&meta).unwrap();
        let back: ProgramMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(meta, back);
    }
}
