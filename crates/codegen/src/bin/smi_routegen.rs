//! The route generator of the SMI workflow (§4.5, Fig. 8):
//!
//! > "A route generator accepts the network topology of the FPGA cluster and
//! > produces the necessary routing tables that drive the forwarding logic
//! > at runtime. […] it can be executed independently from the compilation
//! > (crucially, you can change the routes without recompiling the
//! > bitstream)."
//!
//! Usage:
//!
//! ```text
//! smi-routegen <topology.json> [--scheme updown|shortest] [--out routes.json] [--check]
//! ```
//!
//! Reads a topology description (JSON, or the `A:0 - B:0` text format when
//! the file does not start with `{`), computes the routing plan, optionally
//! verifies deadlock-freedom, and writes the serialized plan.

use std::process::ExitCode;

use smi_topology::deadlock::find_cycle;
use smi_topology::routing::Scheme;
use smi_topology::{PathStats, RoutingPlan, Topology};

fn usage() -> ExitCode {
    eprintln!(
        "usage: smi-routegen <topology.json> [--scheme updown|shortest] [--out routes.json] [--check]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut topo_path = None;
    let mut out_path = None;
    let mut scheme = Scheme::UpDown;
    let mut check = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scheme" => match it.next().map(String::as_str) {
                Some("updown") => scheme = Scheme::UpDown,
                Some("shortest") => scheme = Scheme::ShortestPath,
                _ => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => return usage(),
            },
            "--check" => check = true,
            "--help" | "-h" => return usage(),
            p if topo_path.is_none() => topo_path = Some(p.to_string()),
            _ => return usage(),
        }
    }
    let Some(topo_path) = topo_path else {
        return usage();
    };
    let text = match std::fs::read_to_string(&topo_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("smi-routegen: cannot read {topo_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let topo = if text.trim_start().starts_with('{') {
        Topology::from_json(&text)
    } else {
        Topology::from_text(&text)
    };
    let topo = match topo {
        Ok(t) => t,
        Err(e) => {
            eprintln!("smi-routegen: bad topology: {e}");
            return ExitCode::FAILURE;
        }
    };
    let plan = match RoutingPlan::compute_with(&topo, scheme) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("smi-routegen: routing failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = PathStats::analyze(&topo, &plan);
    println!(
        "{} ranks, {} cables; diameter {} (routed {}), mean stretch {:.3}",
        topo.num_ranks(),
        topo.connections().len(),
        stats.diameter,
        stats.routed_diameter,
        stats.mean_stretch
    );
    if check {
        match find_cycle(&topo, &plan) {
            None => println!("deadlock check: channel dependency graph is acyclic"),
            Some(cycle) => {
                eprintln!(
                    "deadlock check FAILED: CDG cycle through {} channels: {:?}",
                    cycle.len(),
                    cycle
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let json = serde_json::to_string_pretty(&plan).expect("plan serializes");
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, json) {
                eprintln!("smi-routegen: cannot write {p}: {e}");
                return ExitCode::FAILURE;
            }
            println!("routing tables written to {p}");
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}
