//! # smi-codegen — deriving the communication design from SMI op metadata
//!
//! In the paper's workflow (§4.5, Fig. 8) a *metadata extractor* parses the
//! user's device code with Clang, finds all SMI operations, and a *code
//! generator* emits the device-side transport: "all the necessary CKS, CKR,
//! communication primitives and collective support kernel implementations
//! that are tailored for the specified set of SMI operations". A separate
//! *route generator* turns the cluster topology into routing tables that are
//! uploaded at runtime without recompiling the bitstream.
//!
//! This crate reproduces that build-time pipeline at the metadata level:
//!
//! * [`ProgramMeta`] — the set of SMI operations a rank's code performs
//!   (what the Clang pass would extract): op kind, port, datatype, buffer
//!   depth, reduction operator.
//! * [`CommDesign`] / [`ClusterDesign`] — the "generated hardware": how many
//!   CKS/CKR pairs a rank instantiates (one per connected QSFP port), which
//!   CK pair each application port's FIFO attaches to, and which collective
//!   support kernels exist. Consumed verbatim by both `smi-fabric` (to build
//!   the clocked design) and the `smi` runtime (to spawn transport threads).
//! * [`emit`] — a human-readable report of the generated design, standing in
//!   for the emitted OpenCL source.
//! * `smi-routegen` (binary) — the route generator: topology JSON in,
//!   routing-table JSON out.
//!
//! ```
//! use smi_codegen::{ClusterDesign, OpSpec, ProgramMeta};
//! use smi_topology::Topology;
//! use smi_wire::{Datatype, ReduceOp};
//!
//! // The ops the metadata extractor found in the (SPMD) device code:
//! let meta = ProgramMeta::new()
//!     .with(OpSpec::send(0, Datatype::Int))
//!     .with(OpSpec::recv(0, Datatype::Int))
//!     .with(OpSpec::reduce(1, Datatype::Float, ReduceOp::Add));
//! let topo = Topology::torus2d(2, 4);
//! let design = ClusterDesign::spmd(&meta, &topo).unwrap();
//! design.validate_collectives().unwrap();
//! // Every rank instantiates one CK pair per connected QSFP port.
//! assert_eq!(design.rank(0).num_ck_pairs(), 4);
//! ```

#![warn(missing_docs)]

pub mod design;
pub mod emit;
pub mod error;
pub mod metadata;

pub use design::{ClusterDesign, CommDesign, PortBinding};
pub use error::CodegenError;
pub use metadata::{OpKind, OpSpec, ProgramMeta};

/// Default FIFO depth (asynchronicity degree *k*) between an application
/// endpoint and its CK module, in packets. "The internal buffer size is a
/// compile-time parameter … considered an optimization parameter, as
/// programs must not rely on these buffer sizes for correctness" (§4.2).
pub const DEFAULT_BUFFER_DEPTH: usize = 16;
