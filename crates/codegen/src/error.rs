//! Error type for communication-design generation.

use std::fmt;

use smi_wire::Datatype;

use crate::OpKind;

/// Errors detected while validating SMI op metadata or generating a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// Two operations that cannot share a port were declared on the same
    /// port (e.g. two sends, or a collective plus anything else).
    PortClash {
        /// The contested port.
        port: usize,
        /// First op kind on the port.
        first: OpKind,
        /// Conflicting op kind.
        second: OpKind,
    },
    /// A port exceeded the wire's 8-bit port field.
    PortOutOfRange(usize),
    /// A `Reduce` op without a reduction operator, or a non-reduce op with one.
    BadReduceOp {
        /// The port of the offending op.
        port: usize,
    },
    /// A collective port is declared with different kinds or datatypes on
    /// different ranks of an SPMD program.
    SpmdMismatch {
        /// The port with inconsistent declarations.
        port: usize,
        /// Description of the inconsistency.
        detail: String,
    },
    /// A rank has no connected QSFP port, so no CK pair can be instantiated.
    NoNetworkPorts {
        /// The isolated rank.
        rank: usize,
    },
    /// Zero-depth FIFO requested (the hardware needs at least one slot).
    ZeroBufferDepth {
        /// The port of the offending op.
        port: usize,
    },
    /// Inconsistent datatype between two ops sharing a port.
    TypeClash {
        /// The port with inconsistent datatypes.
        port: usize,
        /// First datatype.
        first: Datatype,
        /// Conflicting datatype.
        second: Datatype,
    },
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::PortClash {
                port,
                first,
                second,
            } => {
                write!(f, "port {port}: {first:?} clashes with {second:?}")
            }
            CodegenError::PortOutOfRange(p) => {
                write!(f, "port {p} exceeds the 8-bit wire port field")
            }
            CodegenError::BadReduceOp { port } => {
                write!(
                    f,
                    "port {port}: reduce operator mismatch (required iff kind is Reduce)"
                )
            }
            CodegenError::SpmdMismatch { port, detail } => {
                write!(f, "port {port}: SPMD declaration mismatch: {detail}")
            }
            CodegenError::NoNetworkPorts { rank } => {
                write!(f, "rank {rank} has no connected QSFP ports")
            }
            CodegenError::ZeroBufferDepth { port } => {
                write!(f, "port {port}: buffer depth must be at least 1 packet")
            }
            CodegenError::TypeClash {
                port,
                first,
                second,
            } => {
                write!(f, "port {port}: datatype {first:?} clashes with {second:?}")
            }
        }
    }
}

impl std::error::Error for CodegenError {}
