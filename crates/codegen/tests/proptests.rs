//! Property tests of the communication-design generator.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smi_codegen::{ClusterDesign, CommDesign, OpKind, OpSpec, ProgramMeta};
use smi_topology::Topology;
use smi_wire::{Datatype, ReduceOp};

fn arb_dtype() -> impl Strategy<Value = Datatype> {
    prop::sample::select(Datatype::ALL.to_vec())
}

/// A random *valid* program: distinct ports per op, send/recv may pair up.
fn arb_meta() -> impl Strategy<Value = ProgramMeta> {
    (
        prop::collection::btree_set(0usize..32, 0..10),
        prop::collection::vec((0usize..6, arb_dtype(), 1usize..64), 10),
    )
        .prop_map(|(ports, specs)| {
            let mut meta = ProgramMeta::new();
            for (port, (kind_pick, dtype, depth)) in ports.into_iter().zip(specs) {
                let op = match kind_pick {
                    0 => OpSpec::send(port, dtype),
                    1 => OpSpec::recv(port, dtype),
                    2 => OpSpec::bcast(port, dtype),
                    3 => OpSpec::scatter(port, dtype),
                    4 => OpSpec::gather(port, dtype),
                    _ => OpSpec::reduce(port, dtype, ReduceOp::Max),
                }
                .with_buffer_depth(depth);
                meta = meta.with(op);
                // Half the time, pair a Send with a matching Recv.
                if kind_pick == 0 && depth % 2 == 0 {
                    meta = meta.with(OpSpec::recv(port, dtype).with_buffer_depth(depth));
                }
            }
            meta
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Generated designs satisfy the structural invariants: every binding's
    /// CK pair index is in range, every declared op has exactly one binding,
    /// and ports distribute round-robin (no pair is over-subscribed by more
    /// than one endpoint relative to the others).
    #[test]
    fn designs_are_structurally_sound(
        meta in arb_meta(),
        n in 2usize..12,
        extra in 0usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = Topology::random_connected(n, 4, extra, &mut rng).unwrap();
        for rank in 0..n {
            let design = CommDesign::generate(&meta, &topo, rank).unwrap();
            let pairs = design.num_ck_pairs();
            prop_assert!(pairs >= 1);
            prop_assert_eq!(design.bindings.len(), meta.ops.len());
            let mut load = vec![0usize; pairs];
            for b in &design.bindings {
                prop_assert!(b.ck_pair < pairs, "pair index in range");
                load[b.ck_pair] += 1;
                // The binding reproduces its op spec verbatim.
                prop_assert!(meta.ops.contains(&b.op));
            }
            // Round-robin balance: max load - min load <= 1.
            if !load.is_empty() && !meta.ops.is_empty() {
                let (lo, hi) = (load.iter().min().unwrap(), load.iter().max().unwrap());
                prop_assert!(hi - lo <= 1, "unbalanced CK load {:?}", load);
            }
            // Lookups find every binding.
            for op in &meta.ops {
                prop_assert!(design.binding(op.port, op.kind).is_some());
            }
        }
    }

    /// SPMD cluster designs validate their collectives and serialize
    /// round-trip through JSON.
    #[test]
    fn spmd_designs_roundtrip(meta in arb_meta(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = Topology::random_connected(6, 4, 2, &mut rng).unwrap();
        let cluster = ClusterDesign::spmd(&meta, &topo).unwrap();
        cluster.validate_collectives().unwrap();
        let json = serde_json::to_string(&cluster).unwrap();
        let back: ClusterDesign = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(cluster, back);
    }

    /// A meta with a duplicated non-pairable port never generates.
    #[test]
    fn port_clashes_always_rejected(
        port in 0usize..8,
        dtype in arb_dtype(),
        collective in any::<bool>(),
    ) {
        let dup = if collective {
            OpSpec::bcast(port, dtype)
        } else {
            OpSpec::send(port, dtype)
        };
        let meta = ProgramMeta::new().with(dup).with(dup);
        prop_assert!(meta.validate().is_err());
        let topo = Topology::bus(2);
        prop_assert!(CommDesign::generate(&meta, &topo, 0).is_err());
    }

    /// Kind is part of the binding key: Send and Recv on one port resolve to
    /// their own bindings.
    #[test]
    fn send_recv_pairs_resolve_independently(port in 0usize..16, dtype in arb_dtype()) {
        let meta = ProgramMeta::new()
            .with(OpSpec::send(port, dtype))
            .with(OpSpec::recv(port, dtype));
        let topo = Topology::torus2d(2, 2);
        let design = CommDesign::generate(&meta, &topo, 0).unwrap();
        let s = design.binding(port, OpKind::Send).unwrap();
        let r = design.binding(port, OpKind::Recv).unwrap();
        prop_assert_eq!(s.op.kind, OpKind::Send);
        prop_assert_eq!(r.op.kind, OpKind::Recv);
    }
}
