//! Hardware FIFOs with backpressure and single-cycle visibility.
//!
//! These model the on-chip FIFO buffers that connect application endpoints,
//! CK modules and network interfaces (§4.2: "These connections are
//! implemented using FIFO buffers, where the internal buffer size is a
//! compile-time parameter"). A push performed in cycle *t* becomes visible to
//! poppers in cycle *t + 1* (registered output), and a full FIFO refuses
//! pushes — the backpressure that the whole transport layer relies on.

use std::collections::VecDeque;

use smi_wire::NetworkPacket;

/// Index of a FIFO in the [`FifoPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FifoId(pub(crate) usize);

impl FifoId {
    /// The raw index (for stats tables).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// One hardware FIFO carrying network packets.
#[derive(Debug)]
pub struct HwFifo {
    name: String,
    capacity: usize,
    queue: VecDeque<NetworkPacket>,
    staged: Vec<NetworkPacket>,
    /// Lifetime statistics.
    pushes: u64,
    max_occupancy: usize,
}

impl HwFifo {
    fn new(name: String, capacity: usize) -> Self {
        assert!(capacity >= 1, "FIFO needs at least one slot");
        HwFifo {
            name,
            capacity,
            queue: VecDeque::with_capacity(capacity),
            staged: Vec::with_capacity(2),
            pushes: 0,
            max_occupancy: 0,
        }
    }

    /// Occupancy counting both visible and staged entries.
    #[inline]
    fn total_len(&self) -> usize {
        self.queue.len() + self.staged.len()
    }
}

/// The arena of all FIFOs of a fabric; components address FIFOs by
/// [`FifoId`]. Tracks whether any transfer happened in the current cycle
/// (for quiescence/deadlock detection).
#[derive(Debug, Default)]
pub struct FifoPool {
    fifos: Vec<HwFifo>,
    activity: bool,
}

impl FifoPool {
    /// Create an empty pool.
    pub fn new() -> FifoPool {
        FifoPool::default()
    }

    /// Allocate a FIFO with `capacity` packet slots.
    pub fn add(&mut self, name: impl Into<String>, capacity: usize) -> FifoId {
        self.fifos.push(HwFifo::new(name.into(), capacity));
        FifoId(self.fifos.len() - 1)
    }

    /// Number of FIFOs allocated.
    pub fn len(&self) -> usize {
        self.fifos.len()
    }

    /// True when no FIFO exists.
    pub fn is_empty(&self) -> bool {
        self.fifos.is_empty()
    }

    /// Can one more packet be pushed this cycle?
    #[inline]
    pub fn can_push(&self, id: FifoId) -> bool {
        let f = &self.fifos[id.0];
        f.total_len() < f.capacity
    }

    /// Push a packet (visible to poppers from the next cycle). Panics when
    /// full — callers must check [`FifoPool::can_push`]; real hardware wires
    /// the ready signal into the producer's pipeline stall.
    #[inline]
    pub fn push(&mut self, id: FifoId, pkt: NetworkPacket) {
        let f = &mut self.fifos[id.0];
        assert!(
            f.total_len() < f.capacity,
            "push into full FIFO '{}'",
            f.name
        );
        f.staged.push(pkt);
        f.pushes += 1;
        self.activity = true;
    }

    /// Is a packet available to pop this cycle?
    #[inline]
    pub fn can_pop(&self, id: FifoId) -> bool {
        !self.fifos[id.0].queue.is_empty()
    }

    /// Peek at the head packet without consuming it.
    #[inline]
    pub fn peek(&self, id: FifoId) -> Option<&NetworkPacket> {
        self.fifos[id.0].queue.front()
    }

    /// Pop the head packet. Panics when empty — callers must check
    /// [`FifoPool::can_pop`].
    #[inline]
    pub fn pop(&mut self, id: FifoId) -> NetworkPacket {
        let f = &mut self.fifos[id.0];
        let pkt = f
            .queue
            .pop_front()
            .unwrap_or_else(|| panic!("pop from empty FIFO '{}'", f.name));
        self.activity = true;
        pkt
    }

    /// Visible occupancy of a FIFO.
    #[inline]
    pub fn occupancy(&self, id: FifoId) -> usize {
        self.fifos[id.0].queue.len()
    }

    /// End-of-cycle commit: staged pushes become visible; returns whether any
    /// push or pop happened during the cycle.
    pub fn commit(&mut self) -> bool {
        for f in &mut self.fifos {
            if !f.staged.is_empty() {
                f.queue.extend(f.staged.drain(..));
            }
            f.max_occupancy = f.max_occupancy.max(f.queue.len());
        }
        std::mem::take(&mut self.activity)
    }

    /// True when every FIFO is completely empty (no queued or staged data).
    pub fn all_empty(&self) -> bool {
        self.fifos.iter().all(|f| f.total_len() == 0)
    }

    /// Lifetime push count of a FIFO.
    pub fn pushes(&self, id: FifoId) -> u64 {
        self.fifos[id.0].pushes
    }

    /// Highest observed visible occupancy of a FIFO.
    pub fn max_occupancy(&self, id: FifoId) -> usize {
        self.fifos[id.0].max_occupancy
    }

    /// The FIFO's configured capacity.
    pub fn capacity(&self, id: FifoId) -> usize {
        self.fifos[id.0].capacity
    }

    /// The FIFO's diagnostic name.
    pub fn name(&self, id: FifoId) -> &str {
        &self.fifos[id.0].name
    }

    /// Names and occupancies of all non-empty FIFOs (deadlock diagnostics).
    pub fn nonempty_report(&self) -> Vec<(String, usize)> {
        self.fifos
            .iter()
            .filter(|f| f.total_len() > 0)
            .map(|f| (f.name.clone(), f.total_len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smi_wire::PacketOp;

    fn pkt(tag: u8) -> NetworkPacket {
        let mut p = NetworkPacket::new(tag, 0, 0, PacketOp::Send);
        p.header.count = 1;
        p
    }

    #[test]
    fn push_visible_next_cycle_only() {
        let mut pool = FifoPool::new();
        let id = pool.add("t", 4);
        assert!(pool.can_push(id));
        pool.push(id, pkt(1));
        assert!(
            !pool.can_pop(id),
            "staged pushes invisible within the cycle"
        );
        pool.commit();
        assert!(pool.can_pop(id));
        assert_eq!(pool.pop(id).header.src, 1);
    }

    #[test]
    fn capacity_counts_staged() {
        let mut pool = FifoPool::new();
        let id = pool.add("t", 2);
        pool.push(id, pkt(1));
        pool.push(id, pkt(2));
        assert!(!pool.can_push(id), "staged entries occupy capacity");
        pool.commit();
        assert!(!pool.can_push(id));
        pool.pop(id);
        assert!(pool.can_push(id));
    }

    #[test]
    fn fifo_order_preserved() {
        let mut pool = FifoPool::new();
        let id = pool.add("t", 8);
        for i in 0..5 {
            pool.push(id, pkt(i));
        }
        pool.commit();
        for i in 0..5 {
            assert_eq!(pool.pop(id).header.src, i);
        }
    }

    #[test]
    fn activity_flag() {
        let mut pool = FifoPool::new();
        let id = pool.add("t", 2);
        assert!(!pool.commit(), "no activity on idle cycle");
        pool.push(id, pkt(0));
        assert!(pool.commit());
        assert!(!pool.commit());
        pool.pop(id);
        assert!(pool.commit());
    }

    #[test]
    fn stats_tracked() {
        let mut pool = FifoPool::new();
        let id = pool.add("t", 4);
        for i in 0..3 {
            pool.push(id, pkt(i));
        }
        pool.commit();
        assert_eq!(pool.pushes(id), 3);
        assert_eq!(pool.max_occupancy(id), 3);
        assert_eq!(pool.capacity(id), 4);
        assert_eq!(pool.name(id), "t");
        pool.pop(id);
        pool.commit();
        assert_eq!(pool.max_occupancy(id), 3, "high watermark sticks");
    }

    #[test]
    #[should_panic(expected = "full FIFO")]
    fn overflow_panics() {
        let mut pool = FifoPool::new();
        let id = pool.add("t", 1);
        pool.push(id, pkt(0));
        pool.push(id, pkt(1));
    }

    #[test]
    #[should_panic(expected = "empty FIFO")]
    fn underflow_panics() {
        let mut pool = FifoPool::new();
        let id = pool.add("t", 1);
        pool.pop(id);
    }
}
