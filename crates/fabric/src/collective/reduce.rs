//! The Reduce support kernel — credit-based flow control (§4.4).
//!
//! "The latter implements rendezvous with a credit-based flow control
//! algorithm with C credits, corresponding to an internal buffer of size C at
//! the root rank holding accumulation results. When C contributions have been
//! received from each rank, the reduced result is forwarded to the
//! application, and new credits are sent to the ranks."
//!
//! Senders stream at most `C` elements ahead (per tile); the root folds
//! contributions element-wise into the tile buffer (order-insensitive across
//! ranks thanks to associativity/commutativity — the "fill columns in
//! parallel" of Fig. 5), emits the reduced tile to the application, and
//! re-credits every sender. The per-tile round trip is what makes Reduce
//! latency-sensitive on high-diameter topologies (Fig. 11).

use smi_wire::{Deframer, Framer, NetworkPacket, PacketOp, ReduceOp};

use crate::builder::SupportWiring;
use crate::collective::CollectiveComm;
use crate::engine::{Component, Status};
use crate::fifo::FifoPool;

enum RootPhase {
    /// Accumulate contributions into the tile buffer.
    Fold,
    /// Stream the reduced tile to the application (element offset).
    Emit { offset: u64 },
    /// Send fresh credits to every non-root sender (communicator index).
    Credits { idx: usize },
}

struct RootState {
    /// Tile accumulation buffer (capacity `credits` elements).
    tile: Vec<u8>,
    /// Elements in the current tile (min(credits, remaining)).
    tile_size: u64,
    /// Per communicator index: elements folded into the current tile.
    progress: Vec<u64>,
    /// Elements fully reduced and emitted so far.
    done: u64,
    /// Deframer for the root's own contribution stream (it can straddle
    /// tile boundaries, unlike network packets which senders flush per tile).
    own: Deframer,
    /// Fairness flip-flop between network and local input.
    prefer_net: bool,
    phase: RootPhase,
}

struct LeafState {
    credits: u64,
    sent: u64,
    deframer: Deframer,
    framer: Framer,
    pending: Option<NetworkPacket>,
}

enum Role {
    Root(RootState),
    Leaf(LeafState),
    Finished,
}

/// Reduce support kernel of one rank.
pub struct ReduceSupport {
    name: String,
    comm: CollectiveComm,
    op: ReduceOp,
    /// Credits `C` (tile size in elements).
    credits: u64,
    my_rank: usize,
    w: SupportWiring,
    role: Role,
}

impl ReduceSupport {
    /// Create the support kernel. `credits` is the root's tile buffer size
    /// `C` in elements.
    pub fn new(
        name: impl Into<String>,
        comm: CollectiveComm,
        op: ReduceOp,
        credits: u64,
        my_rank: usize,
        wiring: SupportWiring,
    ) -> Self {
        assert!(credits >= 1, "reduce needs at least one credit");
        let sz = comm.dtype.size_bytes();
        let role = if comm.count == 0 {
            Role::Finished
        } else if my_rank == comm.root {
            let tile_size = comm.count.min(credits);
            let mut tile = vec![0u8; credits as usize * sz];
            init_identity(&mut tile, op, &comm);
            Role::Root(RootState {
                tile,
                tile_size,
                progress: vec![0; comm.size()],
                done: 0,
                own: Deframer::new(comm.dtype),
                prefer_net: true,
                phase: RootPhase::Fold,
            })
        } else {
            Role::Leaf(LeafState {
                credits,
                sent: 0,
                deframer: Deframer::new(comm.dtype),
                framer: Framer::new(
                    comm.dtype,
                    my_rank as u8,
                    comm.root as u8,
                    comm.port,
                    PacketOp::Reduce,
                ),
                pending: None,
            })
        };
        ReduceSupport {
            name: name.into(),
            comm,
            op,
            credits,
            my_rank,
            w: wiring,
            role,
        }
    }
}

fn init_identity(tile: &mut [u8], op: ReduceOp, comm: &CollectiveComm) {
    let sz = comm.dtype.size_bytes();
    let mut ident = vec![0u8; sz];
    op.identity_bytes(comm.dtype, &mut ident);
    for chunk in tile.chunks_exact_mut(sz) {
        chunk.copy_from_slice(&ident);
    }
}

impl Component for ReduceSupport {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64, fifos: &mut FifoPool) -> Status {
        let sz = self.comm.dtype.size_bytes();
        match &mut self.role {
            Role::Finished => Status::Done,
            Role::Root(st) => {
                if st.done == self.comm.count && matches!(st.phase, RootPhase::Fold) {
                    return Status::Done;
                }
                match &mut st.phase {
                    RootPhase::Fold => {
                        let root_idx = self.comm.root_index();
                        let mut acted = false;
                        // One network packet xor one local packet per cycle.
                        let try_net = st.prefer_net;
                        st.prefer_net = !st.prefer_net;
                        let net_ready = fifos.can_pop(self.w.from_ckr);
                        let own_possible = st.progress[root_idx] < st.tile_size;
                        if net_ready && (try_net || !own_possible) {
                            let pkt = fifos.pop(self.w.from_ckr);
                            assert_eq!(pkt.header.op, PacketOp::Reduce, "reduce root expects data");
                            let idx = self
                                .comm
                                .index_of(pkt.header.src as usize)
                                .expect("contribution from member");
                            let k = pkt.header.count as u64;
                            let at = st.progress[idx];
                            assert!(
                                at + k <= st.tile_size,
                                "sender violated credit window ({at}+{k} > {})",
                                st.tile_size
                            );
                            let lo = at as usize * sz;
                            let hi = (at + k) as usize * sz;
                            self.op.fold_bytes(
                                self.comm.dtype,
                                &mut st.tile[lo..hi],
                                &pkt.payload[..(k as usize) * sz],
                            );
                            st.progress[idx] += k;
                            acted = true;
                        } else if own_possible {
                            // Fold the local contribution element-wise.
                            if st.own.is_empty() && fifos.can_pop(self.w.app_in) {
                                st.own.refill(fifos.pop(self.w.app_in));
                            }
                            let mut buf = [0u8; 8];
                            let mut folded = 0;
                            while st.progress[root_idx] < st.tile_size
                                && folded < self.comm.dtype.elems_per_packet()
                                && st.own.pop_bytes(&mut buf[..sz])
                            {
                                let at = st.progress[root_idx] as usize;
                                self.op.fold_bytes(
                                    self.comm.dtype,
                                    &mut st.tile[at * sz..(at + 1) * sz],
                                    &buf[..sz],
                                );
                                st.progress[root_idx] += 1;
                                folded += 1;
                            }
                            acted = folded > 0;
                        }
                        if st.progress.iter().all(|&p| p == st.tile_size) {
                            st.phase = RootPhase::Emit { offset: 0 };
                            return Status::Active;
                        }
                        if acted {
                            Status::Active
                        } else {
                            Status::Idle
                        }
                    }
                    RootPhase::Emit { offset } => {
                        // One packet of reduced results per cycle.
                        if !fifos.can_push(self.w.app_out) {
                            return Status::Idle;
                        }
                        let epp = self.comm.dtype.elems_per_packet() as u64;
                        let k = epp.min(st.tile_size - *offset);
                        let mut pkt = NetworkPacket::new(
                            self.my_rank as u8,
                            self.my_rank as u8,
                            self.comm.port,
                            PacketOp::Reduce,
                        );
                        pkt.header.count = k as u8;
                        let lo = *offset as usize * sz;
                        pkt.payload[..(k as usize) * sz]
                            .copy_from_slice(&st.tile[lo..lo + k as usize * sz]);
                        fifos.push(self.w.app_out, pkt);
                        *offset += k;
                        if *offset == st.tile_size {
                            st.done += st.tile_size;
                            if st.done == self.comm.count {
                                // Message complete: no further credits needed.
                                st.phase = RootPhase::Fold; // Fold + done => Done
                            } else if self.comm.size() == 1 {
                                // No senders to credit: start the next tile.
                                let remaining = self.comm.count - st.done;
                                st.tile_size = remaining.min(self.credits);
                                init_identity(&mut st.tile, self.op, &self.comm);
                                st.progress.iter_mut().for_each(|p| *p = 0);
                                st.phase = RootPhase::Fold;
                            } else {
                                st.phase = RootPhase::Credits { idx: 0 };
                            }
                        }
                        Status::Active
                    }
                    RootPhase::Credits { idx } => {
                        // Grant C fresh credits to each non-root member.
                        let non_roots: Vec<usize> = self.comm.non_roots().collect();
                        if *idx == non_roots.len() {
                            let remaining = self.comm.count - st.done;
                            st.tile_size = remaining.min(self.credits);
                            init_identity(&mut st.tile, self.op, &self.comm);
                            st.progress.iter_mut().for_each(|p| *p = 0);
                            st.phase = RootPhase::Fold;
                            return Status::Active;
                        }
                        if fifos.can_push(self.w.to_cks) {
                            let credit = self.comm.control(
                                self.my_rank,
                                non_roots[*idx],
                                PacketOp::Credit,
                                self.credits as u32,
                            );
                            fifos.push(self.w.to_cks, credit);
                            *idx += 1;
                            Status::Active
                        } else {
                            Status::Idle
                        }
                    }
                }
            }
            Role::Leaf(st) => {
                // 1. Flush a stalled packet.
                if let Some(pkt) = st.pending.take() {
                    if fifos.can_push(self.w.to_cks) {
                        fifos.push(self.w.to_cks, pkt);
                        return Status::Active;
                    }
                    st.pending = Some(pkt);
                    return Status::Idle;
                }
                if st.sent == self.comm.count {
                    return Status::Done;
                }
                // 2. Refresh credits.
                if st.credits == 0 {
                    if fifos.can_pop(self.w.from_ckr) {
                        let pkt = fifos.pop(self.w.from_ckr);
                        assert_eq!(
                            pkt.header.op,
                            PacketOp::Credit,
                            "reduce leaf expects credits"
                        );
                        st.credits += pkt.control_arg() as u64;
                        return Status::Active;
                    }
                    return Status::Idle;
                }
                // 3. Stream contribution elements within the credit window.
                let mut buf = [0u8; 8];
                let mut moved = false;
                while st.credits > 0 && st.sent < self.comm.count && st.pending.is_none() {
                    if st.deframer.is_empty() {
                        if fifos.can_pop(self.w.app_in) {
                            st.deframer.refill(fifos.pop(self.w.app_in));
                        } else {
                            break;
                        }
                    }
                    if !st.deframer.pop_bytes(&mut buf[..sz]) {
                        break;
                    }
                    st.credits -= 1;
                    st.sent += 1;
                    moved = true;
                    if let Some(pkt) = st.framer.push_bytes(&buf[..sz]) {
                        st.pending = Some(pkt);
                    } else if st.credits == 0 || st.sent == self.comm.count {
                        // Flush at the credit-window / message boundary so no
                        // packet straddles a tile.
                        st.pending = st.framer.flush();
                    }
                }
                if let Some(pkt) = st.pending.take() {
                    if fifos.can_push(self.w.to_cks) {
                        fifos.push(self.w.to_cks, pkt);
                    } else {
                        st.pending = Some(pkt);
                    }
                }
                if moved {
                    Status::Active
                } else {
                    Status::Idle
                }
            }
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}
