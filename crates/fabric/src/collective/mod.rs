//! Collective support kernels (§4.4).
//!
//! "The implemented SMI transport layer uses a support kernel for
//! coordinating each collective. Support kernels reside between the
//! application and the associated CKR/CKS modules, and their logic is
//! specialized to the specific collective. […] Both the root and non-root
//! behavior is instantiated at every rank, to allow the root rank to be
//! specified dynamically."
//!
//! All four collectives are implemented with the paper's *linear* scheme:
//!
//! * **Bcast/Scatter** (one-to-all): every receiver first signals readiness
//!   with a `Sync` packet; the root then streams data (fanning packets out
//!   one per cycle for Bcast, slice by slice for Scatter).
//! * **Gather** (all-to-one): the root grants each source, in rank order, a
//!   `Sync` go-ahead and receives its contribution before moving on.
//! * **Reduce** (all-to-one): credit-based flow control with `C` credits —
//!   the root folds contributions into a `C`-element tile buffer and
//!   re-credits all senders when the tile completes.
//!
//! The tree-based variants the paper names as an extension live in
//! [`tree`].

pub mod bcast;
pub mod gather;
pub mod reduce;
pub mod scatter;
pub mod tree;

pub use bcast::BcastSupport;
pub use gather::GatherSupport;
pub use reduce::ReduceSupport;
pub use scatter::ScatterSupport;

use smi_wire::{Datatype, NetworkPacket, PacketOp};

/// The communicator a collective operates on: an ordered set of global ranks
/// (as in `SMI_Comm`), the root, and the channel parameters.
#[derive(Debug, Clone)]
pub struct CollectiveComm {
    /// Participating global ranks, in communicator order.
    pub ranks: Vec<usize>,
    /// The root's global rank (must be in `ranks`).
    pub root: usize,
    /// The SMI port dedicated to this collective.
    pub port: u8,
    /// Element datatype.
    pub dtype: Datatype,
    /// Elements **per rank** (Bcast: message length; Scatter/Gather/Reduce:
    /// slice/contribution length).
    pub count: u64,
}

impl CollectiveComm {
    /// Number of participants.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// Communicator index of the root.
    pub fn root_index(&self) -> usize {
        self.ranks
            .iter()
            .position(|&r| r == self.root)
            .expect("root is a member of the communicator")
    }

    /// Communicator index of a global rank.
    pub fn index_of(&self, rank: usize) -> Option<usize> {
        self.ranks.iter().position(|&r| r == rank)
    }

    /// Non-root ranks in communicator order.
    pub fn non_roots(&self) -> impl Iterator<Item = usize> + '_ {
        self.ranks.iter().copied().filter(move |&r| r != self.root)
    }

    /// A control packet (Sync/Credit) on this collective's port.
    pub fn control(&self, src: usize, dst: usize, op: PacketOp, arg: u32) -> NetworkPacket {
        NetworkPacket::control(src as u8, dst as u8, self.port, op, arg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_indexing() {
        let comm = CollectiveComm {
            ranks: vec![4, 2, 7],
            root: 2,
            port: 3,
            dtype: Datatype::Float,
            count: 10,
        };
        assert_eq!(comm.size(), 3);
        assert_eq!(comm.root_index(), 1);
        assert_eq!(comm.index_of(7), Some(2));
        assert_eq!(comm.index_of(9), None);
        assert_eq!(comm.non_roots().collect::<Vec<_>>(), vec![4, 7]);
    }

    #[test]
    fn control_packet_fields() {
        let comm = CollectiveComm {
            ranks: vec![0, 1],
            root: 0,
            port: 9,
            dtype: Datatype::Int,
            count: 1,
        };
        let p = comm.control(1, 0, PacketOp::Sync, 42);
        assert_eq!(p.header.src, 1);
        assert_eq!(p.header.dst, 0);
        assert_eq!(p.header.port, 9);
        assert_eq!(p.header.op, PacketOp::Sync);
        assert_eq!(p.control_arg(), 42);
    }
}
