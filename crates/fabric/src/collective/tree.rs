//! Tree-based collective variants.
//!
//! The paper's reference implementation "does not yet implement tree-based
//! collectives, resulting in a higher congestion in the root rank" (§5.3.4),
//! but names them as the natural extension the support-kernel architecture
//! enables ("they can also be exploited to offer different implementations of
//! collectives, such as tree-based schema for Bcast and Reduce", §4.4).
//!
//! [`TreeBcastSupport`] implements a streaming **binomial-tree broadcast**:
//! every rank receives the message stream from its tree parent and fans each
//! packet out to its children, so the root pushes each packet `O(log N)`
//! times instead of `N−1` times. Readiness `Sync`s flow child→parent before
//! any data moves, preserving the §3.3 correctness protocol along every tree
//! edge. The tree-based Reduce ([`TreeReduceSupport`]) reverses the edges:
//! children stream credit-windowed contributions to their parent, which folds
//! them with its own stream and forwards the partial aggregate upward.

use smi_wire::{Deframer, NetworkPacket, PacketOp, ReduceOp};

use crate::builder::SupportWiring;
use crate::collective::CollectiveComm;
use crate::engine::{Component, Status};
use crate::fifo::FifoPool;

/// Binomial-tree relations on *virtual* ranks (communicator indices rotated
/// so the root is 0).
pub(crate) fn vrank(comm: &CollectiveComm, rank: usize) -> usize {
    let idx = comm.index_of(rank).expect("member rank");
    (idx + comm.size() - comm.root_index()) % comm.size()
}

pub(crate) fn rank_of_vrank(comm: &CollectiveComm, v: usize) -> usize {
    comm.ranks[(v + comm.root_index()) % comm.size()]
}

/// Parent of virtual rank `v` in the binomial tree (None for the root).
pub(crate) fn tree_parent(v: usize) -> Option<usize> {
    if v == 0 {
        None
    } else {
        // Clear the highest set bit.
        let hb = usize::BITS - 1 - v.leading_zeros();
        Some(v & !(1 << hb))
    }
}

/// Children of virtual rank `v` in a binomial tree over `n` nodes,
/// in increasing order.
pub(crate) fn tree_children(v: usize, n: usize) -> Vec<usize> {
    let start = if v == 0 {
        0
    } else {
        (usize::BITS - v.leading_zeros()) as usize
    };
    let mut kids = Vec::new();
    let mut j = start;
    loop {
        let child = v + (1usize << j);
        if child >= n {
            break;
        }
        kids.push(child);
        j += 1;
    }
    kids
}

enum Phase {
    /// Collect readiness Syncs from all children. Runs *before* announcing
    /// to the parent: a node's readiness means its whole subtree is ready,
    /// otherwise parent data could arrive interleaved with child syncs on
    /// the same port.
    CollectSyncs {
        got: usize,
    },
    /// Non-root: announce subtree readiness to the parent.
    SendSync,
    /// Stream: pull packets (from parent or the root's app) and fan out.
    Stream {
        elems: u64,
        pkt: Option<NetworkPacket>,
        fanout_idx: usize,
        delivered_local: bool,
    },
    Done,
}

/// Binomial-tree broadcast support kernel.
pub struct TreeBcastSupport {
    name: String,
    comm: CollectiveComm,
    my_rank: usize,
    w: SupportWiring,
    children: Vec<usize>, // global ranks
    is_root: bool,
    phase: Phase,
}

impl TreeBcastSupport {
    /// Create the support kernel for `my_rank`.
    pub fn new(
        name: impl Into<String>,
        comm: CollectiveComm,
        my_rank: usize,
        wiring: SupportWiring,
    ) -> Self {
        let v = vrank(&comm, my_rank);
        let children: Vec<usize> = tree_children(v, comm.size())
            .into_iter()
            .map(|c| rank_of_vrank(&comm, c))
            .collect();
        let is_root = v == 0;
        let phase = if comm.count == 0 {
            Phase::Done
        } else if children.is_empty() {
            // Leaf: nothing to collect; root-leaf degenerates to streaming.
            if is_root {
                Phase::Stream {
                    elems: 0,
                    pkt: None,
                    fanout_idx: 0,
                    delivered_local: false,
                }
            } else {
                Phase::SendSync
            }
        } else {
            Phase::CollectSyncs { got: 0 }
        };
        TreeBcastSupport {
            name: name.into(),
            comm,
            my_rank,
            w: wiring,
            children,
            is_root,
            phase,
        }
    }
}

impl Component for TreeBcastSupport {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64, fifos: &mut FifoPool) -> Status {
        match &mut self.phase {
            Phase::Done => Status::Done,
            Phase::SendSync => {
                let parent_v = tree_parent(vrank(&self.comm, self.my_rank)).expect("non-root");
                let parent = rank_of_vrank(&self.comm, parent_v);
                if fifos.can_push(self.w.to_cks) {
                    let sync = self.comm.control(self.my_rank, parent, PacketOp::Sync, 0);
                    fifos.push(self.w.to_cks, sync);
                    self.phase = Phase::Stream {
                        elems: 0,
                        pkt: None,
                        fanout_idx: 0,
                        delivered_local: false,
                    };
                    Status::Active
                } else {
                    Status::Idle
                }
            }
            Phase::CollectSyncs { got } => {
                if fifos.can_pop(self.w.from_ckr) {
                    let pkt = fifos.pop(self.w.from_ckr);
                    assert_eq!(pkt.header.op, PacketOp::Sync, "expected child Sync");
                    *got += 1;
                    if *got == self.children.len() {
                        self.phase = if self.is_root {
                            Phase::Stream {
                                elems: 0,
                                pkt: None,
                                fanout_idx: 0,
                                delivered_local: false,
                            }
                        } else {
                            Phase::SendSync
                        };
                    }
                    Status::Active
                } else {
                    Status::Idle
                }
            }
            Phase::Stream {
                elems,
                pkt,
                fanout_idx,
                delivered_local,
            } => {
                if pkt.is_none() {
                    let input = if self.is_root {
                        self.w.app_in
                    } else {
                        self.w.from_ckr
                    };
                    if !fifos.can_pop(input) {
                        return Status::Idle;
                    }
                    let got = fifos.pop(input);
                    if !self.is_root {
                        assert_eq!(got.header.op, PacketOp::Bcast, "expected Bcast data");
                    }
                    *pkt = Some(got);
                    *fanout_idx = 0;
                    *delivered_local = self.is_root; // root's app already has the data
                }
                let data = pkt.expect("loaded above");
                // Deliver locally first (non-root only), then to children,
                // one push per cycle.
                if !*delivered_local {
                    if !fifos.can_push(self.w.app_out) {
                        return Status::Idle;
                    }
                    fifos.push(self.w.app_out, data);
                    *delivered_local = true;
                    return Status::Active;
                }
                if *fanout_idx < self.children.len() {
                    if !fifos.can_push(self.w.to_cks) {
                        return Status::Idle;
                    }
                    let mut copy = data;
                    copy.header.src = self.my_rank as u8;
                    copy.header.dst = self.children[*fanout_idx] as u8;
                    copy.header.port = self.comm.port;
                    copy.header.op = PacketOp::Bcast;
                    fifos.push(self.w.to_cks, copy);
                    *fanout_idx += 1;
                    if *fanout_idx < self.children.len() {
                        return Status::Active;
                    }
                }
                *elems += data.header.count as u64;
                *pkt = None;
                if *elems >= self.comm.count {
                    self.phase = Phase::Done;
                }
                Status::Active
            }
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}

/// Binomial-tree reduce support kernel.
///
/// Every node folds its own application stream with its children's partial
/// aggregates (credit-windowed per edge) and forwards the tile to its parent;
/// the root emits the final tile to the application. Implemented in the
/// ablation pass — see `TreeReduceSupport::new`.
pub struct TreeReduceSupport {
    name: String,
    comm: CollectiveComm,
    op: ReduceOp,
    credits: u64,
    my_rank: usize,
    w: SupportWiring,
    children: Vec<usize>,
    parent: Option<usize>,
    // Tile machinery.
    tile: Vec<u8>,
    tile_size: u64,
    /// progress[0] = own stream; progress[1..] per child.
    progress: Vec<u64>,
    done: u64,
    own: Deframer,
    /// Credits granted to us by the parent (leaf→root flow control).
    upstream_credits: u64,
    /// Emission state toward parent/app.
    emit_offset: u64,
    emitting: bool,
    credit_idx: usize,
    crediting: bool,
    pending: Option<NetworkPacket>,
}

impl TreeReduceSupport {
    /// Create the support kernel for `my_rank`.
    pub fn new(
        name: impl Into<String>,
        comm: CollectiveComm,
        op: ReduceOp,
        credits: u64,
        my_rank: usize,
        wiring: SupportWiring,
    ) -> Self {
        assert!(credits >= 1);
        let v = vrank(&comm, my_rank);
        let children: Vec<usize> = tree_children(v, comm.size())
            .into_iter()
            .map(|c| rank_of_vrank(&comm, c))
            .collect();
        let parent = tree_parent(v).map(|p| rank_of_vrank(&comm, p));
        let sz = comm.dtype.size_bytes();
        let tile_size = comm.count.min(credits);
        let mut tile = vec![0u8; credits as usize * sz];
        let mut ident = vec![0u8; sz];
        op.identity_bytes(comm.dtype, &mut ident);
        for chunk in tile.chunks_exact_mut(sz) {
            chunk.copy_from_slice(&ident);
        }
        let n_children = children.len();
        let own = Deframer::new(comm.dtype);
        TreeReduceSupport {
            name: name.into(),
            comm,
            op,
            credits,
            my_rank,
            w: wiring,
            children,
            parent,
            tile,
            tile_size,
            progress: vec![0; 1 + n_children],
            done: 0,
            own,
            upstream_credits: credits,
            emit_offset: 0,
            emitting: false,
            credit_idx: 0,
            crediting: false,
            pending: None,
        }
    }

    fn reset_tile(&mut self) {
        let sz = self.comm.dtype.size_bytes();
        let mut ident = vec![0u8; sz];
        self.op.identity_bytes(self.comm.dtype, &mut ident);
        for chunk in self.tile.chunks_exact_mut(sz) {
            chunk.copy_from_slice(&ident);
        }
        self.progress.iter_mut().for_each(|p| *p = 0);
    }

    fn child_index(&self, rank: usize) -> Option<usize> {
        self.children.iter().position(|&c| c == rank).map(|i| i + 1)
    }
}

impl Component for TreeReduceSupport {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64, fifos: &mut FifoPool) -> Status {
        let sz = self.comm.dtype.size_bytes();
        if self.done == self.comm.count
            && self.pending.is_none()
            && !self.emitting
            && !self.crediting
        {
            return Status::Done;
        }
        // 0. Flush a stalled outgoing packet.
        if let Some(pkt) = self.pending.take() {
            if fifos.can_push(self.w.to_cks) {
                fifos.push(self.w.to_cks, pkt);
                return Status::Active;
            }
            self.pending = Some(pkt);
            return Status::Idle;
        }
        // 1. Credit grants to children after a consumed tile.
        if self.crediting {
            if self.credit_idx == self.children.len() {
                self.crediting = false;
                let remaining = self.comm.count - self.done;
                self.tile_size = remaining.min(self.credits);
                self.reset_tile();
                return Status::Active;
            }
            if fifos.can_push(self.w.to_cks) {
                let credit = self.comm.control(
                    self.my_rank,
                    self.children[self.credit_idx],
                    PacketOp::Credit,
                    self.credits as u32,
                );
                fifos.push(self.w.to_cks, credit);
                self.credit_idx += 1;
                return Status::Active;
            }
            return Status::Idle;
        }
        // 2. Emit a completed tile: root → app, inner node → parent (credit-
        //    windowed).
        if self.emitting {
            match self.parent {
                None => {
                    if !fifos.can_push(self.w.app_out) {
                        return Status::Idle;
                    }
                    let epp = self.comm.dtype.elems_per_packet() as u64;
                    let k = epp.min(self.tile_size - self.emit_offset);
                    let mut pkt = NetworkPacket::new(
                        self.my_rank as u8,
                        self.my_rank as u8,
                        self.comm.port,
                        PacketOp::Reduce,
                    );
                    pkt.header.count = k as u8;
                    let lo = self.emit_offset as usize * sz;
                    pkt.payload[..k as usize * sz]
                        .copy_from_slice(&self.tile[lo..lo + k as usize * sz]);
                    fifos.push(self.w.app_out, pkt);
                    self.emit_offset += k;
                }
                Some(_) => {
                    // The parent granted tile-sized credit windows; our tile
                    // size equals theirs, so one full tile fits one window.
                    if self.upstream_credits == 0 {
                        if fifos.can_pop(self.w.from_ckr) {
                            let pkt = fifos.pop(self.w.from_ckr);
                            if pkt.header.op == PacketOp::Credit {
                                self.upstream_credits += pkt.control_arg() as u64;
                                return Status::Active;
                            }
                            // Children data can interleave with parent credits
                            // on the same port; fold it.
                            self.fold_network_packet(pkt, sz);
                            return Status::Active;
                        }
                        return Status::Idle;
                    }
                    if !fifos.can_push(self.w.to_cks) {
                        return Status::Idle;
                    }
                    let epp = self.comm.dtype.elems_per_packet() as u64;
                    let k = epp
                        .min(self.tile_size - self.emit_offset)
                        .min(self.upstream_credits);
                    let mut pkt = NetworkPacket::new(
                        self.my_rank as u8,
                        self.parent.expect("inner node") as u8,
                        self.comm.port,
                        PacketOp::Reduce,
                    );
                    pkt.header.count = k as u8;
                    let lo = self.emit_offset as usize * sz;
                    pkt.payload[..k as usize * sz]
                        .copy_from_slice(&self.tile[lo..lo + k as usize * sz]);
                    fifos.push(self.w.to_cks, pkt);
                    self.emit_offset += k;
                    self.upstream_credits -= k;
                }
            }
            if self.emit_offset == self.tile_size {
                self.done += self.tile_size;
                self.emitting = false;
                self.emit_offset = 0;
                if self.done < self.comm.count || !self.children.is_empty() {
                    if self.children.is_empty() {
                        let remaining = self.comm.count - self.done;
                        self.tile_size = remaining.min(self.credits);
                        self.reset_tile();
                    } else if self.done < self.comm.count {
                        self.crediting = true;
                        self.credit_idx = 0;
                    }
                }
            }
            return Status::Active;
        }
        // 3. Fold phase: own stream + children contributions.
        let mut acted = false;
        if fifos.can_pop(self.w.from_ckr) {
            let pkt = fifos.pop(self.w.from_ckr);
            if pkt.header.op == PacketOp::Credit {
                self.upstream_credits += pkt.control_arg() as u64;
            } else {
                self.fold_network_packet(pkt, sz);
            }
            acted = true;
        } else if self.progress[0] < self.tile_size {
            if self.own.is_empty() && fifos.can_pop(self.w.app_in) {
                self.own.refill(fifos.pop(self.w.app_in));
            }
            let mut buf = [0u8; 8];
            let mut folded = 0;
            while self.progress[0] < self.tile_size
                && folded < self.comm.dtype.elems_per_packet()
                && self.own.pop_bytes(&mut buf[..sz])
            {
                let at = self.progress[0] as usize;
                self.op.fold_bytes(
                    self.comm.dtype,
                    &mut self.tile[at * sz..(at + 1) * sz],
                    &buf[..sz],
                );
                self.progress[0] += 1;
                folded += 1;
            }
            acted = folded > 0;
        }
        if self.progress.iter().all(|&p| p >= self.tile_size) {
            self.emitting = true;
            self.emit_offset = 0;
            return Status::Active;
        }
        if acted {
            Status::Active
        } else {
            Status::Idle
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}

impl TreeReduceSupport {
    fn fold_network_packet(&mut self, pkt: NetworkPacket, sz: usize) {
        assert_eq!(pkt.header.op, PacketOp::Reduce, "expected Reduce data");
        let idx = self
            .child_index(pkt.header.src as usize)
            .expect("contribution from a tree child");
        let k = pkt.header.count as u64;
        let at = self.progress[idx];
        assert!(at + k <= self.tile_size, "child violated credit window");
        let lo = at as usize * sz;
        let hi = (at + k) as usize * sz;
        self.op.fold_bytes(
            self.comm.dtype,
            &mut self.tile[lo..hi],
            &pkt.payload[..k as usize * sz],
        );
        self.progress[idx] += k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_relations() {
        // n = 8, root at vrank 0: children 1,2,4; v=1 -> 3,5; v=3 -> 7.
        assert_eq!(tree_children(0, 8), vec![1, 2, 4]);
        assert_eq!(tree_children(1, 8), vec![3, 5]);
        assert_eq!(tree_children(2, 8), vec![6]);
        assert_eq!(tree_children(3, 8), vec![7]);
        assert_eq!(tree_children(4, 8), Vec::<usize>::new());
        assert_eq!(tree_parent(0), None);
        assert_eq!(tree_parent(1), Some(0));
        assert_eq!(tree_parent(5), Some(1));
        assert_eq!(tree_parent(6), Some(2));
        assert_eq!(tree_parent(7), Some(3));
    }

    #[test]
    fn every_nonroot_has_consistent_parent() {
        for n in 2..40 {
            for v in 1..n {
                let p = tree_parent(v).unwrap();
                assert!(p < v);
                assert!(
                    tree_children(p, n).contains(&v),
                    "v={v} not a child of its parent {p} (n={n})"
                );
            }
        }
    }

    #[test]
    fn vrank_rotation() {
        let comm = CollectiveComm {
            ranks: vec![0, 1, 2, 3],
            root: 2,
            port: 0,
            dtype: smi_wire::Datatype::Float,
            count: 1,
        };
        assert_eq!(vrank(&comm, 2), 0);
        assert_eq!(vrank(&comm, 3), 1);
        assert_eq!(vrank(&comm, 0), 2);
        assert_eq!(vrank(&comm, 1), 3);
        assert_eq!(rank_of_vrank(&comm, 0), 2);
        assert_eq!(rank_of_vrank(&comm, 3), 1);
    }
}
