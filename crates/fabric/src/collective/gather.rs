//! The Gather support kernel (linear scheme).
//!
//! "For Gather, the root rank has to receive the data from the ranks in the
//! correct order, which is coordinated by the support kernel" (§4.4): the
//! root walks the communicator in order; for its own slot it forwards the
//! local application's contribution, for every other rank it first sends the
//! `Sync` go-ahead ("the root rank must communicate to each source rank when
//! it is ready to receive") and then forwards that rank's `count` elements to
//! the application.
//!
//! Contributions keep their original framing (a partial tail packet mid-
//! stream is fine — element counts travel in the headers), so the root
//! forwards packets without re-framing.

use smi_wire::PacketOp;

use crate::builder::SupportWiring;
use crate::collective::CollectiveComm;
use crate::engine::{Component, Status};
use crate::fifo::FifoPool;

enum RootPhase {
    /// Send the go-ahead to the rank at the current communicator index.
    Grant,
    /// Forward `count` elements from the current source.
    Collect { elems: u64 },
}

struct RootState {
    cur: usize,
    phase: RootPhase,
}

enum LeafState {
    WaitGrant,
    Stream { elems: u64 },
    Done,
}

enum Role {
    Root(RootState),
    Leaf(LeafState),
    Finished,
}

/// Gather support kernel of one rank.
pub struct GatherSupport {
    name: String,
    comm: CollectiveComm,
    my_rank: usize,
    w: SupportWiring,
    role: Role,
}

impl GatherSupport {
    /// Create the support kernel (role decided at runtime from `comm.root`).
    pub fn new(
        name: impl Into<String>,
        comm: CollectiveComm,
        my_rank: usize,
        wiring: SupportWiring,
    ) -> Self {
        let role = if comm.count == 0 {
            Role::Finished
        } else if my_rank == comm.root {
            Role::Root(RootState {
                cur: 0,
                phase: RootPhase::Grant,
            })
        } else {
            Role::Leaf(LeafState::WaitGrant)
        };
        GatherSupport {
            name: name.into(),
            comm,
            my_rank,
            w: wiring,
            role,
        }
    }
}

impl Component for GatherSupport {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64, fifos: &mut FifoPool) -> Status {
        match &mut self.role {
            Role::Finished => Status::Done,
            Role::Root(st) => {
                if st.cur == self.comm.size() {
                    return Status::Done;
                }
                let src_rank = self.comm.ranks[st.cur];
                match &mut st.phase {
                    RootPhase::Grant => {
                        if src_rank == self.my_rank {
                            st.phase = RootPhase::Collect { elems: 0 };
                            return Status::Active;
                        }
                        if fifos.can_push(self.w.to_cks) {
                            let sync = self.comm.control(self.my_rank, src_rank, PacketOp::Sync, 0);
                            fifos.push(self.w.to_cks, sync);
                            st.phase = RootPhase::Collect { elems: 0 };
                            Status::Active
                        } else {
                            Status::Idle
                        }
                    }
                    RootPhase::Collect { elems } => {
                        let input = if src_rank == self.my_rank {
                            self.w.app_in
                        } else {
                            self.w.from_ckr
                        };
                        if fifos.can_pop(input) && fifos.can_push(self.w.app_out) {
                            let pkt = fifos.pop(input);
                            if src_rank != self.my_rank {
                                assert_eq!(
                                    pkt.header.op,
                                    PacketOp::Gather,
                                    "gather root expects data"
                                );
                                assert_eq!(
                                    pkt.header.src as usize, src_rank,
                                    "gather order violated"
                                );
                            }
                            *elems += pkt.header.count as u64;
                            fifos.push(self.w.app_out, pkt);
                            if *elems >= self.comm.count {
                                st.cur += 1;
                                st.phase = RootPhase::Grant;
                            }
                            Status::Active
                        } else {
                            Status::Idle
                        }
                    }
                }
            }
            Role::Leaf(state) => match state {
                LeafState::WaitGrant => {
                    if fifos.can_pop(self.w.from_ckr) {
                        let pkt = fifos.pop(self.w.from_ckr);
                        assert_eq!(pkt.header.op, PacketOp::Sync, "gather leaf expects Sync");
                        *state = LeafState::Stream { elems: 0 };
                        Status::Active
                    } else {
                        Status::Idle
                    }
                }
                LeafState::Stream { elems } => {
                    if fifos.can_pop(self.w.app_in) && fifos.can_push(self.w.to_cks) {
                        let mut pkt = fifos.pop(self.w.app_in);
                        pkt.header.src = self.my_rank as u8;
                        pkt.header.dst = self.comm.root as u8;
                        pkt.header.port = self.comm.port;
                        pkt.header.op = PacketOp::Gather;
                        *elems += pkt.header.count as u64;
                        fifos.push(self.w.to_cks, pkt);
                        if *elems >= self.comm.count {
                            *state = LeafState::Done;
                        }
                        Status::Active
                    } else {
                        Status::Idle
                    }
                }
                LeafState::Done => Status::Done,
            },
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}
