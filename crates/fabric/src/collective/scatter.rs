//! The Scatter support kernel (linear scheme).
//!
//! The root holds `count × N` elements (in communicator order) and sends
//! rank *i* its `count`-element slice, serving ranks in order, each only
//! after its `Sync` arrived (§3.3: "each rank will send/receive count
//! elements in sequence, only when allowed by the matching rank"). Slices
//! can split mid-packet, so the root re-frames: it deframes the application
//! stream and re-packs elements per destination.

use smi_wire::{Deframer, Framer, NetworkPacket, PacketOp};

use crate::builder::SupportWiring;
use crate::collective::CollectiveComm;
use crate::engine::{Component, Status};
use crate::fifo::{FifoId, FifoPool};

struct RootState {
    /// Readiness per communicator index (Syncs can arrive in any order).
    ready: Vec<bool>,
    /// Communicator index currently being served.
    cur: usize,
    /// Elements still to deliver to the current destination.
    remaining: u64,
    deframer: Deframer,
    framer: Framer,
    /// An emitted packet waiting for FIFO space: (target, packet).
    pending: Option<(FifoId, NetworkPacket)>,
}

enum LeafState {
    SendSync,
    Recv { elems: u64 },
    Done,
}

enum Role {
    Root(RootState),
    Leaf(LeafState),
    Finished,
}

/// Scatter support kernel of one rank.
pub struct ScatterSupport {
    name: String,
    comm: CollectiveComm,
    my_rank: usize,
    w: SupportWiring,
    role: Role,
}

impl ScatterSupport {
    /// Create the support kernel (role decided at runtime from `comm.root`).
    pub fn new(
        name: impl Into<String>,
        comm: CollectiveComm,
        my_rank: usize,
        wiring: SupportWiring,
    ) -> Self {
        let role = if comm.count == 0 {
            Role::Finished
        } else if my_rank == comm.root {
            let mut ready = vec![false; comm.size()];
            ready[comm.root_index()] = true; // own slice needs no sync
            let dtype = comm.dtype;
            let count = comm.count;
            Role::Root(RootState {
                ready,
                cur: 0,
                remaining: count,
                deframer: Deframer::new(dtype),
                framer: Framer::new(dtype, my_rank as u8, 0, comm.port, PacketOp::Scatter),
                pending: None,
            })
        } else {
            Role::Leaf(LeafState::SendSync)
        };
        ScatterSupport {
            name: name.into(),
            comm,
            my_rank,
            w: wiring,
            role,
        }
    }
}

impl Component for ScatterSupport {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64, fifos: &mut FifoPool) -> Status {
        match &mut self.role {
            Role::Finished => Status::Done,
            Role::Root(st) => {
                // 1. Flush a stalled output packet.
                if let Some((target, pkt)) = st.pending.take() {
                    if fifos.can_push(target) {
                        fifos.push(target, pkt);
                        return Status::Active;
                    }
                    st.pending = Some((target, pkt));
                    return Status::Idle;
                }
                if st.cur == self.comm.size() {
                    return Status::Done;
                }
                // 2. Absorb Syncs whenever the current destination is not
                //    ready yet.
                if !st.ready[st.cur] {
                    if fifos.can_pop(self.w.from_ckr) {
                        let pkt = fifos.pop(self.w.from_ckr);
                        assert_eq!(pkt.header.op, PacketOp::Sync, "scatter root expects Sync");
                        let idx = self
                            .comm
                            .index_of(pkt.header.src as usize)
                            .expect("sync from communicator member");
                        st.ready[idx] = true;
                        return Status::Active;
                    }
                    return Status::Idle;
                }
                // 3. Move elements of the current slice: deframe the app
                //    stream, re-frame toward the destination. At most one
                //    emitted packet per cycle.
                let cur = st.cur;
                let (target, dst_rank) = {
                    let rank = self.comm.ranks[cur];
                    if rank == self.my_rank {
                        (self.w.app_out, self.my_rank as u8)
                    } else {
                        (self.w.to_cks, rank as u8)
                    }
                };
                let sz = self.comm.dtype.size_bytes();
                let mut buf = [0u8; 8];
                let mut emitted = None;
                while st.remaining > 0 && emitted.is_none() {
                    if st.deframer.is_empty() {
                        if fifos.can_pop(self.w.app_in) {
                            let pkt = fifos.pop(self.w.app_in);
                            st.deframer.refill(pkt);
                        } else {
                            break;
                        }
                    }
                    while st.remaining > 0 {
                        if !st.deframer.pop_bytes(&mut buf[..sz]) {
                            break;
                        }
                        st.remaining -= 1;
                        if let Some(mut pkt) = st.framer.push_bytes(&buf[..sz]) {
                            pkt.header.dst = dst_rank;
                            emitted = Some(pkt);
                            break;
                        }
                    }
                }
                if st.remaining == 0 && emitted.is_none() {
                    if let Some(mut pkt) = st.framer.flush() {
                        pkt.header.dst = dst_rank;
                        emitted = Some(pkt);
                    }
                }
                let advanced = if st.remaining == 0 && st.framer.pending() == 0 {
                    st.cur += 1;
                    st.remaining = self.comm.count;
                    true
                } else {
                    false
                };
                match emitted {
                    Some(pkt) => {
                        if fifos.can_push(target) {
                            fifos.push(target, pkt);
                        } else {
                            st.pending = Some((target, pkt));
                        }
                        Status::Active
                    }
                    None if advanced => Status::Active,
                    None => Status::Idle,
                }
            }
            Role::Leaf(state) => match state {
                LeafState::SendSync => {
                    if fifos.can_push(self.w.to_cks) {
                        let sync =
                            self.comm
                                .control(self.my_rank, self.comm.root, PacketOp::Sync, 0);
                        fifos.push(self.w.to_cks, sync);
                        *state = LeafState::Recv { elems: 0 };
                        Status::Active
                    } else {
                        Status::Idle
                    }
                }
                LeafState::Recv { elems } => {
                    if fifos.can_pop(self.w.from_ckr) && fifos.can_push(self.w.app_out) {
                        let pkt = fifos.pop(self.w.from_ckr);
                        assert_eq!(
                            pkt.header.op,
                            PacketOp::Scatter,
                            "scatter leaf expects data"
                        );
                        *elems += pkt.header.count as u64;
                        fifos.push(self.w.app_out, pkt);
                        if *elems >= self.comm.count {
                            *state = LeafState::Done;
                        }
                        Status::Active
                    } else {
                        Status::Idle
                    }
                }
                LeafState::Done => Status::Done,
            },
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}
