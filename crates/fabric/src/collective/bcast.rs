//! The Bcast support kernel (linear scheme).
//!
//! Root: collect one `Sync` from every non-root rank ("ranks must communicate
//! to the root when they are ready to receive before the root starts
//! streaming data across the network", §3.3), then stream the message,
//! replicating every data packet to each non-root rank (one packet per
//! cycle — the linear fan-out that makes Bcast time grow with the
//! communicator size).
//!
//! Non-root: send the `Sync`, then forward arriving `Bcast` data packets to
//! the application.

use smi_wire::{NetworkPacket, PacketOp};

use crate::builder::SupportWiring;
use crate::collective::CollectiveComm;
use crate::engine::{Component, Status};
use crate::fifo::FifoPool;

enum RootState {
    CollectSyncs {
        got: u64,
    },
    Stream {
        elems_sent: u64,
        pkt: Option<NetworkPacket>,
        fanout_idx: usize,
    },
    Done,
}

enum LeafState {
    SendSync,
    Recv { elems: u64 },
    Done,
}

enum Role {
    Root(RootState),
    Leaf(LeafState),
}

/// Bcast support kernel of one rank.
pub struct BcastSupport {
    name: String,
    comm: CollectiveComm,
    my_rank: usize,
    w: SupportWiring,
    role: Role,
}

impl BcastSupport {
    /// Create the support kernel; the role (root/leaf) is chosen at runtime
    /// from `comm.root`, exactly as in the paper.
    pub fn new(
        name: impl Into<String>,
        comm: CollectiveComm,
        my_rank: usize,
        wiring: SupportWiring,
    ) -> Self {
        let role = if my_rank == comm.root {
            if comm.size() == 1 || comm.count == 0 {
                Role::Root(RootState::Done)
            } else {
                Role::Root(RootState::CollectSyncs { got: 0 })
            }
        } else if comm.count == 0 {
            Role::Leaf(LeafState::Done)
        } else {
            Role::Leaf(LeafState::SendSync)
        };
        BcastSupport {
            name: name.into(),
            comm,
            my_rank,
            w: wiring,
            role,
        }
    }
}

impl Component for BcastSupport {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64, fifos: &mut FifoPool) -> Status {
        match &mut self.role {
            Role::Root(state) => match state {
                RootState::CollectSyncs { got } => {
                    if fifos.can_pop(self.w.from_ckr) {
                        let pkt = fifos.pop(self.w.from_ckr);
                        assert_eq!(pkt.header.op, PacketOp::Sync, "bcast root expects Sync");
                        *got += 1;
                        if *got as usize == self.comm.size() - 1 {
                            *state = RootState::Stream {
                                elems_sent: 0,
                                pkt: None,
                                fanout_idx: 0,
                            };
                        }
                        Status::Active
                    } else {
                        Status::Idle
                    }
                }
                RootState::Stream {
                    elems_sent,
                    pkt,
                    fanout_idx,
                } => {
                    if pkt.is_none() {
                        if !fifos.can_pop(self.w.app_in) {
                            return Status::Idle;
                        }
                        *pkt = Some(fifos.pop(self.w.app_in));
                        *fanout_idx = 0;
                    }
                    let data = pkt.expect("loaded above");
                    // Replicate to the next non-root rank (one per cycle).
                    let dsts: Vec<usize> = self.comm.non_roots().collect();
                    let dst = dsts[*fanout_idx];
                    if !fifos.can_push(self.w.to_cks) {
                        return Status::Idle;
                    }
                    let mut copy = data;
                    copy.header.src = self.my_rank as u8;
                    copy.header.dst = dst as u8;
                    copy.header.port = self.comm.port;
                    copy.header.op = PacketOp::Bcast;
                    fifos.push(self.w.to_cks, copy);
                    *fanout_idx += 1;
                    if *fanout_idx == dsts.len() {
                        *elems_sent += data.header.count as u64;
                        *pkt = None;
                        if *elems_sent >= self.comm.count {
                            *state = RootState::Done;
                        }
                    }
                    Status::Active
                }
                RootState::Done => Status::Done,
            },
            Role::Leaf(state) => match state {
                LeafState::SendSync => {
                    if fifos.can_push(self.w.to_cks) {
                        let sync =
                            self.comm
                                .control(self.my_rank, self.comm.root, PacketOp::Sync, 0);
                        fifos.push(self.w.to_cks, sync);
                        *state = LeafState::Recv { elems: 0 };
                        Status::Active
                    } else {
                        Status::Idle
                    }
                }
                LeafState::Recv { elems } => {
                    if fifos.can_pop(self.w.from_ckr) && fifos.can_push(self.w.app_out) {
                        let pkt = fifos.pop(self.w.from_ckr);
                        assert_eq!(pkt.header.op, PacketOp::Bcast, "bcast leaf expects data");
                        *elems += pkt.header.count as u64;
                        fifos.push(self.w.app_out, pkt);
                        if *elems >= self.comm.count {
                            *state = LeafState::Done;
                        }
                        Status::Active
                    } else {
                        Status::Idle
                    }
                }
                LeafState::Done => Status::Done,
            },
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}
