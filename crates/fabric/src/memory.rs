//! DRAM bank bandwidth models.
//!
//! The memory-bound applications (GESUMMV, stencil) are paced by how many
//! elements per cycle their FPGA's DDR4 banks can stream. A [`DramPool`] is
//! a bandwidth arbiter shared by all reader/writer pipelines of one rank:
//! each pipeline registers as a consumer, a [`DramPoolComponent`] refills the
//! per-consumer buckets each cycle, and pipelines consume tokens as they
//! stream. The arbiter is fair (equal shares under saturation) but
//! work-conserving (unused share spills over to whoever wants it), so the
//! contention between the two GEMV kernels of single-FPGA GESUMMV — the
//! effect behind the paper's 2× distributed speedup — emerges naturally.

use std::cell::RefCell;
use std::rc::Rc;

use crate::engine::{Component, Status};
use crate::fifo::FifoPool;

/// A registered consumer of a [`DramPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsumerId(usize);

/// Fair, work-conserving bandwidth arbiter for one rank's memory system
/// (rate in elements per kernel cycle).
#[derive(Debug)]
pub struct DramPool {
    rate: f64,
    buckets: Vec<f64>,
    spill: f64,
}

/// Shared handle to a [`DramPool`].
pub type DramPoolHandle = Rc<RefCell<DramPool>>;

impl DramPool {
    /// Create a pool streaming `rate` elements/cycle in total.
    pub fn new_handle(rate: f64) -> DramPoolHandle {
        assert!(rate > 0.0, "memory rate must be positive");
        Rc::new(RefCell::new(DramPool {
            rate,
            buckets: Vec::new(),
            spill: 0.0,
        }))
    }

    /// Register a consumer pipeline. All registrations must happen before the
    /// simulation starts ticking.
    pub fn register(&mut self) -> ConsumerId {
        self.buckets.push(0.0);
        ConsumerId(self.buckets.len() - 1)
    }

    /// Try to consume up to `want` element tokens for consumer `id`; returns
    /// the granted amount. Draws first from the consumer's fair-share bucket,
    /// then from the spill pool.
    pub fn try_consume(&mut self, id: ConsumerId, want: f64) -> f64 {
        let own = want.min(self.buckets[id.0]);
        self.buckets[id.0] -= own;
        let extra = (want - own).min(self.spill);
        self.spill -= extra;
        own + extra
    }

    /// Consume exactly `want` tokens if available for `id`, else nothing.
    pub fn try_consume_exact(&mut self, id: ConsumerId, want: f64) -> bool {
        if self.buckets[id.0] + self.spill >= want {
            let from_own = want.min(self.buckets[id.0]);
            self.buckets[id.0] -= from_own;
            self.spill -= want - from_own;
            true
        } else {
            false
        }
    }

    fn refill(&mut self) {
        let n = self.buckets.len();
        if n == 0 {
            return;
        }
        let share = self.rate / n as f64;
        // A bucket holds at most 2 cycles of fair share; anything beyond
        // spills to the common pool (work conservation). The spill pool holds
        // at most 2 cycles of the full rate.
        let bucket_cap = share * 2.0;
        for b in &mut self.buckets {
            *b += share;
            if *b > bucket_cap {
                self.spill += *b - bucket_cap;
                *b = bucket_cap;
            }
        }
        self.spill = self.spill.min(self.rate * 2.0);
    }

    /// The configured total rate in elements/cycle.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

/// Engine component that refills a pool every cycle. Add it *before* the
/// application components so bandwidth becomes available in the same cycle.
pub struct DramPoolComponent {
    name: String,
    pool: DramPoolHandle,
}

impl DramPoolComponent {
    /// Wrap a pool handle for the engine.
    pub fn new(name: impl Into<String>, pool: DramPoolHandle) -> Self {
        DramPoolComponent {
            name: name.into(),
            pool,
        }
    }
}

impl Component for DramPoolComponent {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64, _fifos: &mut FifoPool) -> Status {
        self.pool.borrow_mut().refill();
        // Refilling is not "work": report Idle so quiescence detection works.
        Status::Idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_consumer_gets_full_rate() {
        let pool = DramPool::new_handle(16.0);
        let id = pool.borrow_mut().register();
        let mut total = 0.0;
        for _ in 0..1000 {
            pool.borrow_mut().refill();
            total += pool.borrow_mut().try_consume(id, 16.0);
        }
        assert!((total - 16_000.0).abs() / total < 0.01, "total {total}");
    }

    #[test]
    fn saturated_consumers_split_evenly() {
        let pool = DramPool::new_handle(20.0);
        let a = pool.borrow_mut().register();
        let b = pool.borrow_mut().register();
        let (mut ta, mut tb) = (0.0, 0.0);
        for _ in 0..1000 {
            pool.borrow_mut().refill();
            ta += pool.borrow_mut().try_consume(a, 20.0);
            tb += pool.borrow_mut().try_consume(b, 20.0);
        }
        assert!((ta - 10_000.0).abs() / ta < 0.05, "a got {ta}");
        assert!((tb - 10_000.0).abs() / tb < 0.05, "b got {tb}");
    }

    #[test]
    fn idle_share_spills_to_active_consumer() {
        let pool = DramPool::new_handle(16.0);
        let a = pool.borrow_mut().register();
        let _b = pool.borrow_mut().register(); // never consumes
        let mut total = 0.0;
        for _ in 0..1000 {
            pool.borrow_mut().refill();
            total += pool.borrow_mut().try_consume(a, 16.0);
        }
        // a should recover nearly the full rate via the spill pool.
        assert!(total > 15_000.0, "work conservation failed: {total}");
    }

    #[test]
    fn exact_consumption() {
        let pool = DramPool::new_handle(10.0);
        let id = pool.borrow_mut().register();
        pool.borrow_mut().refill();
        assert!(pool.borrow_mut().try_consume_exact(id, 10.0));
        assert!(!pool.borrow_mut().try_consume_exact(id, 0.5));
    }
}
