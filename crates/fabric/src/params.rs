//! Calibration constants of the simulated platform.
//!
//! Every number here models a property of the paper's experimental setup
//! (Noctua cluster, Nallatech 520N boards — §5.1) and is documented with its
//! calibration source. Changing them rescales absolute results; the *shapes*
//! of the reproduced figures derive from the mechanics, not these constants.

/// Platform parameters of the simulated multi-FPGA system.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricParams {
    /// Kernel clock in MHz. 300 MHz is a typical placed-and-routed clock for
    /// Stratix 10 OpenCL designs, and makes a 16-element float vector read
    /// equal one DDR4-2400 bank's bandwidth (16 × 4 B × 300 MHz = 19.2 GB/s),
    /// matching the paper's stencil configuration ("reading 16 elements per
    /// cycle from a single DDR bank").
    pub kernel_mhz: f64,
    /// QSFP line rate in Gbit/s (the boards expose 4 × 40 Gbit/s ports).
    pub link_gbit_s: f64,
    /// Link pipeline latency in kernel cycles (SerDes + cable + BSP).
    /// Calibrated to Table 3: measured SMI latency grows ≈ 0.72 µs per hop
    /// (0.801 µs @ 1 hop → 5.103 µs @ 7 hops); 205 cycles @ 300 MHz ≈ 0.68 µs
    /// plus per-hop CK processing lands on the paper's slope.
    pub link_latency_cycles: u64,
    /// CKS/CKR polling persistence `R` (§4.3): how many packets a CK keeps
    /// reading from one input while data is available before polling the
    /// next. The paper's microbenchmarks use R = 8.
    pub poll_persistence: u32,
    /// Depth (in packets) of the FIFOs between CK modules and of the link
    /// interface buffers.
    pub ck_fifo_depth: usize,
    /// Reduce flow-control credits `C`, in elements: the root buffers one
    /// tile of `C` accumulation slots and re-credits senders per tile (§4.4).
    pub reduce_credits: usize,
    /// Circuit-switching emulation (§4.2 ablation): when > 0, a CKS holds
    /// its granted input through up to this many empty polls and never
    /// rotates while data flows — the "circuit switching" alternative the
    /// paper describes and rejects. 0 = reference packet switching.
    pub circuit_hold_cycles: u32,
    /// Effective DRAM bandwidth of one memory bank, in 4-byte elements per
    /// kernel cycle (16 ≙ 19.2 GB/s @ 300 MHz — one DDR4-2400 bank).
    pub bank_elems_per_cycle: f64,
    /// Efficiency factor applied when a kernel stripes reads across all four
    /// banks. Calibrated to Fig. 15: the paper measures 3.5× (not 4×) going
    /// from 1 to 4 banks, i.e. ≈ 0.875 interleaving efficiency.
    pub multi_bank_efficiency: f64,
}

impl Default for FabricParams {
    fn default() -> Self {
        FabricParams {
            kernel_mhz: 300.0,
            link_gbit_s: 40.0,
            link_latency_cycles: 205,
            poll_persistence: 8,
            ck_fifo_depth: 16,
            reduce_credits: 512,
            circuit_hold_cycles: 0,
            bank_elems_per_cycle: 16.0,
            multi_bank_efficiency: 0.875,
        }
    }
}

impl FabricParams {
    /// Packets the link can accept per kernel cycle (< 1: the link is slower
    /// than the kernel clock). 40 Gbit/s ÷ 256 bit = 156.25 M packets/s;
    /// at 300 MHz that is ≈ 0.5208 packets/cycle.
    #[inline]
    pub fn link_packets_per_cycle(&self) -> f64 {
        (self.link_gbit_s * 1e9 / 8.0 / smi_wire::PACKET_BYTES as f64) / (self.kernel_mhz * 1e6)
    }

    /// Convert a cycle count to microseconds.
    #[inline]
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.kernel_mhz
    }

    /// Convert microseconds to cycles (rounded up).
    #[inline]
    pub fn us_to_cycles(&self, us: f64) -> u64 {
        (us * self.kernel_mhz).ceil() as u64
    }

    /// Payload bandwidth in Gbit/s implied by moving `bytes` payload bytes in
    /// `cycles` kernel cycles.
    #[inline]
    pub fn payload_gbit_s(&self, bytes: usize, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        (bytes as f64 * 8.0) / (self.cycles_to_us(cycles) * 1e3)
    }

    /// Peak payload bandwidth of one link: line rate × 28/32 header overhead
    /// (the paper's "35 Gbit/s when taking the 4 B header of each network
    /// packet into account").
    #[inline]
    pub fn peak_payload_gbit_s(&self) -> f64 {
        self.link_gbit_s * (smi_wire::PAYLOAD_BYTES as f64 / smi_wire::PACKET_BYTES as f64)
    }

    /// Effective streaming bandwidth (elements/cycle) of `banks` memory
    /// banks, including the multi-bank interleaving efficiency.
    #[inline]
    pub fn banks_elems_per_cycle(&self, banks: usize) -> f64 {
        let raw = self.bank_elems_per_cycle * banks as f64;
        if banks > 1 {
            raw * self.multi_bank_efficiency
        } else {
            raw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_rate_matches_paper() {
        let p = FabricParams::default();
        let r = p.link_packets_per_cycle();
        assert!((r - 0.52083).abs() < 1e-3, "got {r}");
        assert!((p.peak_payload_gbit_s() - 35.0).abs() < 1e-9);
    }

    #[test]
    fn time_conversions() {
        let p = FabricParams::default();
        assert!((p.cycles_to_us(300) - 1.0).abs() < 1e-12);
        assert_eq!(p.us_to_cycles(1.0), 300);
        // 28 payload bytes per cycle at 300 MHz = 67.2 Gbit/s; scaled by the
        // link rate ratio it lands on 35 Gbit/s.
        let gbps = p.payload_gbit_s(28, 1);
        assert!((gbps - 67.2).abs() < 1e-9, "got {gbps}");
    }

    #[test]
    fn bank_bandwidth() {
        let p = FabricParams::default();
        assert!((p.banks_elems_per_cycle(1) - 16.0).abs() < 1e-12);
        assert!((p.banks_elems_per_cycle(4) - 56.0).abs() < 1e-12);
    }
}
