//! The receive-side communication kernel (CKR).
//!
//! "…and receive communication kernels (CKR), if they receive data from the
//! network. […] At a receiver module (CKR), if the destination rank is not
//! the local rank, it is forwarded to the associated CKS module. […]
//! Otherwise, the CKR will use the port of the packet as an index into its
//! routing table. The table instructs it to either send the packet directly
//! to a connected application, or to forward the packet to the CKR that is
//! directly connected to the destination port." (§4.3)

use crate::cks::Arbiter;
use crate::engine::{Component, Status};
use crate::fifo::{FifoId, FifoPool};
use crate::stats::StatsHandle;

/// Routing decision of a CKR for one local port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkrTarget {
    /// This CKR owns the port: deliver into the endpoint's FIFO.
    App(FifoId),
    /// Another CK pair owns the port: forward to that CKR.
    OtherCkr(usize),
}

/// One receive communication kernel.
pub struct CkrKernel {
    name: String,
    local_rank: usize,
    inputs: Vec<FifoId>,
    /// Port-indexed delivery table.
    table: Vec<Option<CkrTarget>>,
    to_paired_cks: FifoId,
    /// Output FIFOs to the other CKR modules, indexed by CK-pair.
    to_other_ckr: Vec<Option<FifoId>>,
    arb: Arbiter,
    stats: StatsHandle,
}

impl CkrKernel {
    /// Construct a CKR.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        local_rank: usize,
        inputs: Vec<FifoId>,
        table: Vec<Option<CkrTarget>>,
        to_paired_cks: FifoId,
        to_other_ckr: Vec<Option<FifoId>>,
        persistence: u32,
        stats: StatsHandle,
    ) -> Self {
        CkrKernel {
            name: name.into(),
            local_rank,
            inputs,
            table,
            to_paired_cks,
            to_other_ckr,
            arb: Arbiter::new(persistence),
            stats,
        }
    }

    fn target_fifo(&self, dst: usize, port: usize) -> Option<FifoId> {
        if dst != self.local_rank {
            // In transit through this rank: bounce to the paired CKS, which
            // routes it onward.
            return Some(self.to_paired_cks);
        }
        match self.table.get(port).copied().flatten() {
            Some(CkrTarget::App(fifo)) => Some(fifo),
            Some(CkrTarget::OtherCkr(pair)) => {
                Some(self.to_other_ckr[pair].expect("other-CKR fifo wired"))
            }
            None => None,
        }
    }
}

impl Component for CkrKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64, fifos: &mut FifoPool) -> Status {
        if self.inputs.is_empty() {
            return Status::Idle;
        }
        let input = self.inputs[self.arb.current()];
        if !fifos.can_pop(input) {
            self.arb.advance(self.inputs.len());
            return Status::Idle;
        }
        let header = fifos.peek(input).expect("non-empty").header;
        match self.target_fifo(header.dst as usize, header.port as usize) {
            Some(target) if fifos.can_push(target) => {
                let pkt = fifos.pop(input);
                fifos.push(target, pkt);
                self.stats.borrow_mut().ckr_forwards += 1;
                self.arb.hit(self.inputs.len());
                Status::Active
            }
            Some(_) => Status::Idle, // head-of-line stall, preserve order
            None => {
                fifos.pop(input);
                self.stats.borrow_mut().ckr_unroutable += 1;
                self.arb.hit(self.inputs.len());
                Status::Active
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::stats::new_stats;
    use smi_wire::{NetworkPacket, PacketOp};

    /// Single CKR: packets for local port 0 go to the app FIFO; packets for
    /// other ranks bounce to the paired CKS FIFO; unknown ports are dropped.
    #[test]
    fn ckr_delivery_rules() {
        let mut e = Engine::new();
        let net_in = e.fifos_mut().add("net", 16);
        let app = e.fifos_mut().add("app", 16);
        let to_cks = e.fifos_mut().add("to_cks", 16);
        let stats = new_stats(0);
        let ckr = CkrKernel::new(
            "ckr",
            /*local_rank=*/ 2,
            vec![net_in],
            vec![Some(CkrTarget::App(app))],
            to_cks,
            vec![],
            8,
            stats.clone(),
        );
        e.add(ckr);

        // Prime the input FIFO directly.
        let mk = |dst: u8, port: u8| {
            let mut p = NetworkPacket::new(0, dst, port, PacketOp::Send);
            p.header.count = 1;
            p
        };
        e.fifos_mut().push(net_in, mk(2, 0)); // local, port 0 -> app
        e.fifos_mut().push(net_in, mk(5, 0)); // transit -> to_cks
        e.fifos_mut().push(net_in, mk(2, 9)); // unknown port -> dropped
                                              // Step a handful of cycles manually (no terminal components, so
                                              // run()'s completion logic does not apply).
        for _ in 0..10 {
            e.step();
        }
        assert_eq!(e.fifos().occupancy(app), 1);
        assert_eq!(e.fifos().occupancy(to_cks), 1);
        assert_eq!(stats.borrow().ckr_unroutable, 1);
        assert_eq!(stats.borrow().ckr_forwards, 2);
    }
}
