//! The QSFP serial link model.
//!
//! One [`QsfpLink`] is a *directed* channel (each physical cable contributes
//! two). It models what the paper's BSP guarantees (§5.1): lossless delivery
//! with "error correction, flow control, and backpressure", a fixed line rate
//! (40 Gbit/s → one 32-byte packet per 6.4 ns), and a pipeline latency
//! covering SerDes, cable and BSP logic.
//!
//! Rate limiting uses a fractional credit accumulator so that any ratio of
//! link rate to kernel clock is supported. In-flight packets travel through a
//! delay line and are delivered into the receiver-side FIFO, honouring its
//! backpressure (delivery stalls, as the BSP's flow control would).

use std::collections::VecDeque;

use smi_wire::NetworkPacket;

use crate::engine::{Component, Status};
use crate::fifo::{FifoId, FifoPool};
use crate::stats::StatsHandle;

/// A directed QSFP link between a sender-side FIFO (fed by a CKS) and a
/// receiver-side FIFO (drained by a CKR).
pub struct QsfpLink {
    name: String,
    /// Stats index of this directed link.
    link_id: usize,
    input: FifoId,
    output: FifoId,
    /// Packets the line accepts per kernel cycle (may be < 1).
    rate: f64,
    /// Pipeline latency in cycles.
    latency: u64,
    /// Fractional transmission credit.
    credit: f64,
    /// In-flight packets: (delivery-ready cycle, packet).
    in_flight: VecDeque<(u64, NetworkPacket)>,
    stats: StatsHandle,
}

impl QsfpLink {
    /// Create a link; `rate` = packets per kernel cycle, `latency` = pipeline
    /// delay in cycles.
    pub fn new(
        name: impl Into<String>,
        link_id: usize,
        input: FifoId,
        output: FifoId,
        rate: f64,
        latency: u64,
        stats: StatsHandle,
    ) -> Self {
        assert!(rate > 0.0, "link rate must be positive");
        QsfpLink {
            name: name.into(),
            link_id,
            input,
            output,
            rate,
            latency,
            credit: 0.0,
            in_flight: VecDeque::new(),
            stats,
        }
    }
}

impl Component for QsfpLink {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64, fifos: &mut FifoPool) -> Status {
        // Accumulate line-rate credit (capped: an idle line cannot "save up"
        // more than one packet's worth of serialization slots beyond burst 2,
        // keeping the model close to a real serializer).
        self.credit = (self.credit + self.rate).min(2.0);

        let mut acted = false;

        // Deliver the head in-flight packet when it has traversed the
        // pipeline and the receiver FIFO has room (BSP backpressure).
        if let Some(&(ready, _)) = self.in_flight.front() {
            if ready <= cycle && fifos.can_push(self.output) {
                let (_, pkt) = self.in_flight.pop_front().expect("head exists");
                fifos.push(self.output, pkt);
                self.stats.borrow_mut().link_packets[self.link_id] += 1;
                acted = true;
            }
        }

        // Accept a new packet from the sender when the line has credit.
        if self.credit >= 1.0 && fifos.can_pop(self.input) {
            let pkt = fifos.pop(self.input);
            self.credit -= 1.0;
            self.in_flight.push_back((cycle + self.latency, pkt));
            acted = true;
        }

        if !self.in_flight.is_empty() {
            self.stats.borrow_mut().link_busy_cycles[self.link_id] += 1;
            return Status::Active;
        }
        if acted {
            Status::Active
        } else {
            Status::Idle
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::stats::new_stats;
    use smi_wire::PacketOp;

    fn pkt(tag: u8) -> NetworkPacket {
        let mut p = NetworkPacket::new(tag, 1, 0, PacketOp::Send);
        p.header.count = 1;
        p
    }

    /// Pushes `n` packets as fast as the FIFO allows, then Done.
    struct Feeder {
        out: FifoId,
        n: u8,
        sent: u8,
    }
    impl Component for Feeder {
        fn name(&self) -> &str {
            "feeder"
        }
        fn tick(&mut self, _c: u64, fifos: &mut FifoPool) -> Status {
            if self.sent == self.n {
                return Status::Done;
            }
            if fifos.can_push(self.out) {
                fifos.push(self.out, pkt(self.sent));
                self.sent += 1;
            }
            if self.sent == self.n {
                Status::Done
            } else {
                Status::Active
            }
        }
        fn is_terminal(&self) -> bool {
            true
        }
    }

    /// Records the arrival cycle of each packet.
    struct Recorder {
        input: FifoId,
        expected: u8,
        arrivals: std::rc::Rc<std::cell::RefCell<Vec<(u64, u8)>>>,
    }
    impl Component for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }
        fn tick(&mut self, cycle: u64, fifos: &mut FifoPool) -> Status {
            while fifos.can_pop(self.input) {
                let p = fifos.pop(self.input);
                self.arrivals.borrow_mut().push((cycle, p.header.src));
            }
            if self.arrivals.borrow().len() as u8 == self.expected {
                Status::Done
            } else {
                Status::Idle
            }
        }
        fn is_terminal(&self) -> bool {
            true
        }
    }

    fn run_link(rate: f64, latency: u64, n: u8) -> Vec<(u64, u8)> {
        let mut e = Engine::new();
        let fin = e.fifos_mut().add("in", 64);
        let fout = e.fifos_mut().add("out", 64);
        let stats = new_stats(1);
        e.add(Feeder {
            out: fin,
            n,
            sent: 0,
        });
        e.add(QsfpLink::new(
            "link",
            0,
            fin,
            fout,
            rate,
            latency,
            stats.clone(),
        ));
        let arrivals = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        e.add(Recorder {
            input: fout,
            expected: n,
            arrivals: arrivals.clone(),
        });
        e.run(100_000).unwrap();
        assert_eq!(stats.borrow().link_packets[0], n as u64);
        let v = arrivals.borrow().clone();
        v
    }

    #[test]
    fn delivery_preserves_order() {
        let arrivals = run_link(1.0, 10, 20);
        let tags: Vec<u8> = arrivals.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..20).collect::<Vec<u8>>());
    }

    #[test]
    fn latency_is_modeled() {
        let arrivals = run_link(1.0, 50, 1);
        // Packet pushed at cycle 0 (visible cycle 1), link picks it up at
        // cycle 1, readies at 51, recorder pops at >= 52.
        assert!(arrivals[0].0 >= 51, "arrival at {}", arrivals[0].0);
        assert!(arrivals[0].0 <= 55, "arrival at {}", arrivals[0].0);
    }

    #[test]
    fn rate_limiting_throttles_throughput() {
        // rate 0.5: 40 packets need ~80 cycles on the wire.
        let arrivals = run_link(0.5, 5, 40);
        let first = arrivals.first().unwrap().0;
        let last = arrivals.last().unwrap().0;
        let span = last - first;
        assert!((76..=84).contains(&span), "span = {span}");
    }

    #[test]
    fn full_rate_streams_back_to_back() {
        let arrivals = run_link(1.0, 5, 40);
        let first = arrivals.first().unwrap().0;
        let last = arrivals.last().unwrap().0;
        assert_eq!(last - first, 39, "one packet per cycle");
    }
}
