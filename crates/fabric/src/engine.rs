//! The cycle-driven simulation engine.
//!
//! All components are ticked once per kernel clock cycle in deterministic
//! (insertion) order; FIFO pushes from cycle *t* become visible in *t + 1*.
//! The engine terminates when every *terminal* component (applications,
//! support kernels with a finite job) reports [`Status::Done`]; it reports a
//! deadlock when nothing in the fabric can make progress while terminal work
//! remains.

use crate::fifo::FifoPool;

/// What a component did (or could do) this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Did work, or holds internal state that will cause work without any
    /// external event (e.g. an in-flight packet in a link pipeline).
    Active,
    /// Waiting for FIFO data/space; will only progress if others act.
    Idle,
    /// Finished for good. Terminal components must all reach this state.
    Done,
}

/// A clocked hardware entity.
pub trait Component {
    /// Diagnostic name (used in deadlock reports).
    fn name(&self) -> &str;

    /// Advance one kernel clock cycle.
    fn tick(&mut self, cycle: u64, fifos: &mut FifoPool) -> Status;

    /// Terminal components carry the workload: the simulation succeeds when
    /// all of them are `Done`. Infrastructure (CKs, links, memory) returns
    /// `false` and is allowed to idle forever.
    fn is_terminal(&self) -> bool {
        false
    }
}

/// Why a simulation stopped unsuccessfully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No component made progress while terminal work remained: the fabric
    /// is deadlocked (or an application protocol hung).
    Deadlock {
        /// Cycle at which quiescence was declared.
        cycle: u64,
        /// Names of unfinished terminal components.
        stuck: Vec<String>,
        /// Non-empty FIFOs at the time (name, occupancy).
        fifo_report: Vec<(String, usize)>,
    },
    /// The cycle budget ran out before completion.
    MaxCyclesExceeded {
        /// The exhausted budget.
        max_cycles: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock {
                cycle,
                stuck,
                fifo_report,
            } => {
                write!(
                    f,
                    "deadlock at cycle {cycle}: stuck components {stuck:?}; non-empty FIFOs {fifo_report:?}"
                )
            }
            SimError::MaxCyclesExceeded { max_cycles } => {
                write!(f, "simulation exceeded {max_cycles} cycles")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a completed simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Cycle count at which the last terminal component finished.
    pub cycles: u64,
}

/// The simulation engine: a FIFO arena plus an ordered list of components.
pub struct Engine {
    fifos: FifoPool,
    components: Vec<Box<dyn Component>>,
    cycle: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An empty engine.
    pub fn new() -> Engine {
        Engine {
            fifos: FifoPool::new(),
            components: Vec::new(),
            cycle: 0,
        }
    }

    /// Access the FIFO arena (wiring phase).
    pub fn fifos_mut(&mut self) -> &mut FifoPool {
        &mut self.fifos
    }

    /// Access the FIFO arena read-only (stats extraction after a run).
    pub fn fifos(&self) -> &FifoPool {
        &self.fifos
    }

    /// Append a component; tick order is insertion order.
    pub fn add(&mut self, c: impl Component + 'static) {
        self.components.push(Box::new(c));
    }

    /// Append a boxed component.
    pub fn add_boxed(&mut self, c: Box<dyn Component>) {
        self.components.push(c);
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// The current cycle counter.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advance exactly one cycle (tick every component, commit FIFOs).
    /// Useful for fine-grained tests; `run` is the normal driver.
    pub fn step(&mut self) {
        for c in &mut self.components {
            let _ = c.tick(self.cycle, &mut self.fifos);
        }
        self.fifos.commit();
        self.cycle += 1;
    }

    /// Run until all terminal components are done, a deadlock is detected, or
    /// `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: u64) -> Result<SimReport, SimError> {
        // Number of consecutive fully-idle cycles before declaring deadlock.
        // Must exceed the longest polling rotation of any CK kernel (which
        // reports Idle on empty polls while still rotating its arbiter) with
        // a comfortable margin.
        const QUIESCENT_LIMIT: u32 = 256;
        let mut quiescent_cycles = 0u32;
        while self.cycle < max_cycles {
            let mut all_terminal_done = true;
            let mut any_active = false;
            for c in &mut self.components {
                match c.tick(self.cycle, &mut self.fifos) {
                    Status::Active => any_active = true,
                    Status::Idle => {
                        if c.is_terminal() {
                            all_terminal_done = false;
                        }
                    }
                    Status::Done => {}
                }
            }
            // Re-scan terminal status including active ones.
            if any_active {
                all_terminal_done = false;
            }
            let fifo_activity = self.fifos.commit();
            self.cycle += 1;
            if all_terminal_done && !fifo_activity {
                return Ok(SimReport { cycles: self.cycle });
            }
            if !any_active && !fifo_activity {
                quiescent_cycles += 1;
                if quiescent_cycles >= QUIESCENT_LIMIT {
                    let stuck: Vec<String> = {
                        let fifos = &mut self.fifos;
                        self.components
                            .iter_mut()
                            .filter(|c| c.is_terminal())
                            .filter_map(|c| {
                                let cyc = self.cycle;
                                match c.tick(cyc, fifos) {
                                    Status::Done => None,
                                    _ => Some(c.name().to_string()),
                                }
                            })
                            .collect()
                    };
                    if stuck.is_empty() {
                        return Ok(SimReport { cycles: self.cycle });
                    }
                    return Err(SimError::Deadlock {
                        cycle: self.cycle,
                        stuck,
                        fifo_report: self.fifos.nonempty_report(),
                    });
                }
            } else {
                quiescent_cycles = 0;
            }
        }
        Err(SimError::MaxCyclesExceeded { max_cycles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::FifoId;
    use smi_wire::{NetworkPacket, PacketOp};

    /// Produces `n` packets, one per cycle.
    struct Producer {
        out: FifoId,
        remaining: u32,
    }

    impl Component for Producer {
        fn name(&self) -> &str {
            "producer"
        }
        fn tick(&mut self, _cycle: u64, fifos: &mut FifoPool) -> Status {
            if self.remaining == 0 {
                return Status::Done;
            }
            if fifos.can_push(self.out) {
                let mut p = NetworkPacket::new(0, 1, 0, PacketOp::Send);
                p.header.count = 1;
                fifos.push(self.out, p);
                self.remaining -= 1;
                if self.remaining == 0 {
                    Status::Done
                } else {
                    Status::Active
                }
            } else {
                Status::Idle
            }
        }
        fn is_terminal(&self) -> bool {
            true
        }
    }

    /// Consumes `n` packets.
    struct Consumer {
        input: FifoId,
        expected: u32,
        got: u32,
        enabled: bool,
    }

    impl Component for Consumer {
        fn name(&self) -> &str {
            "consumer"
        }
        fn tick(&mut self, _cycle: u64, fifos: &mut FifoPool) -> Status {
            if self.got == self.expected {
                return Status::Done;
            }
            if self.enabled && fifos.can_pop(self.input) {
                fifos.pop(self.input);
                self.got += 1;
                if self.got == self.expected {
                    return Status::Done;
                }
                Status::Active
            } else {
                Status::Idle
            }
        }
        fn is_terminal(&self) -> bool {
            true
        }
    }

    #[test]
    fn producer_consumer_completes() {
        let mut e = Engine::new();
        let f = e.fifos_mut().add("pc", 4);
        e.add(Producer {
            out: f,
            remaining: 100,
        });
        e.add(Consumer {
            input: f,
            expected: 100,
            got: 0,
            enabled: true,
        });
        let report = e.run(10_000).unwrap();
        // 100 packets, 1/cycle, pipelined: ~102 cycles.
        assert!(
            report.cycles >= 100 && report.cycles < 120,
            "cycles = {}",
            report.cycles
        );
    }

    #[test]
    fn backpressure_throttles_but_completes() {
        // Tiny FIFO: producer must stall; still completes.
        let mut e = Engine::new();
        let f = e.fifos_mut().add("pc", 1);
        e.add(Producer {
            out: f,
            remaining: 50,
        });
        e.add(Consumer {
            input: f,
            expected: 50,
            got: 0,
            enabled: true,
        });
        let report = e.run(10_000).unwrap();
        assert!(report.cycles >= 50);
    }

    #[test]
    fn deadlock_detected() {
        let mut e = Engine::new();
        let f = e.fifos_mut().add("pc", 2);
        e.add(Producer {
            out: f,
            remaining: 10,
        });
        e.add(Consumer {
            input: f,
            expected: 10,
            got: 0,
            enabled: false,
        });
        match e.run(10_000) {
            Err(SimError::Deadlock {
                stuck, fifo_report, ..
            }) => {
                assert!(stuck.contains(&"producer".to_string()));
                assert!(stuck.contains(&"consumer".to_string()));
                assert_eq!(fifo_report.len(), 1);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn max_cycles_enforced() {
        struct Spinner;
        impl Component for Spinner {
            fn name(&self) -> &str {
                "spinner"
            }
            fn tick(&mut self, _c: u64, _f: &mut FifoPool) -> Status {
                Status::Active
            }
            fn is_terminal(&self) -> bool {
                true
            }
        }
        let mut e = Engine::new();
        e.add(Spinner);
        assert_eq!(
            e.run(100),
            Err(SimError::MaxCyclesExceeded { max_cycles: 100 })
        );
    }

    #[test]
    fn empty_engine_finishes_immediately() {
        let mut e = Engine::new();
        let report = e.run(10).unwrap();
        assert!(report.cycles <= 1);
    }
}
