//! Streaming source and sink kernels — the bandwidth microbenchmark apps.
//!
//! A [`StreamSource`] is the pipelined send loop of Lst. 1: it opens a send
//! channel (header template) and pushes elements cycle by cycle; the internal
//! framer emits one network packet per `elems_per_packet` pushes. A
//! [`StreamSink`] is the matching receive loop, verifying the element
//! sequence as it pops.

use std::cell::RefCell;
use std::rc::Rc;

use smi_wire::{Datatype, Deframer, Framer, NetworkPacket, PacketOp};

use crate::apps::data;
use crate::engine::{Component, Status};
use crate::fifo::{FifoId, FifoPool};

/// Measurement probe shared between an app component and the harness.
#[derive(Debug, Default, Clone)]
pub struct Probe {
    /// Cycle at which the first element/packet was handled.
    pub first_cycle: Option<u64>,
    /// Cycle at which the last element/packet was handled.
    pub last_cycle: Option<u64>,
    /// Elements processed.
    pub elements: u64,
    /// Sequence mismatches observed (must stay 0).
    pub errors: u64,
}

/// Shared handle to a [`Probe`].
pub type ProbeHandle = Rc<RefCell<Probe>>;

/// Fresh probe handle.
pub fn new_probe() -> ProbeHandle {
    Rc::new(RefCell::new(Probe::default()))
}

impl Probe {
    fn touch(&mut self, cycle: u64, elems: u64) {
        if self.first_cycle.is_none() {
            self.first_cycle = Some(cycle);
        }
        self.last_cycle = Some(cycle);
        self.elements += elems;
    }
}

/// Pipelined sending application.
pub struct StreamSource {
    name: String,
    out: FifoId,
    dtype: Datatype,
    framer: Framer,
    total: u64,
    generated: u64,
    /// Elements pushed per cycle (the loop's vector width). Capped at one
    /// packet per cycle: at most `dtype.elems_per_packet()`.
    elems_per_cycle: u32,
    /// When true every element is flushed as its own packet (1-element
    /// messages, as in the injection-rate microbenchmark).
    packet_per_element: bool,
    /// The source idles this many cycles before producing (staggered-start
    /// experiments).
    start_delay: u64,
    pending: Option<NetworkPacket>,
    probe: ProbeHandle,
}

impl StreamSource {
    /// A source at `src_rank` streaming `total` elements of `dtype` to
    /// `dst_rank`:`dst_port`, `elems_per_cycle` wide.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        out: FifoId,
        dtype: Datatype,
        src_rank: u8,
        dst_rank: u8,
        dst_port: u8,
        total: u64,
        elems_per_cycle: u32,
        probe: ProbeHandle,
    ) -> Self {
        let epp = dtype.elems_per_packet() as u32;
        assert!(
            elems_per_cycle >= 1 && elems_per_cycle <= epp,
            "elems_per_cycle must be in 1..={epp}"
        );
        StreamSource {
            name: name.into(),
            out,
            dtype,
            framer: Framer::new(dtype, src_rank, dst_rank, dst_port, PacketOp::Send),
            total,
            generated: 0,
            elems_per_cycle,
            packet_per_element: false,
            start_delay: 0,
            pending: None,
            probe,
        }
    }

    /// Flush every element as its own single-element packet.
    pub fn packet_per_element(mut self) -> Self {
        self.packet_per_element = true;
        self
    }

    /// Idle for `cycles` before the first element (staggered starts).
    pub fn with_start_delay(mut self, cycles: u64) -> Self {
        self.start_delay = cycles;
        self
    }
}

impl Component for StreamSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64, fifos: &mut FifoPool) -> Status {
        if cycle < self.start_delay {
            return Status::Active; // armed, waiting for its start cycle
        }
        // Drain a stalled packet first (backpressure from the CKS FIFO).
        // The pipeline stays stalled for the rest of the cycle: at most one
        // packet leaves the source per cycle.
        if let Some(pkt) = self.pending.take() {
            if fifos.can_push(self.out) {
                fifos.push(self.out, pkt);
                return Status::Active;
            }
            self.pending = Some(pkt);
            return Status::Idle;
        }
        if self.generated == self.total {
            return Status::Done;
        }
        // Pipelined loop body: up to `elems_per_cycle` pushes this cycle.
        let mut buf = [0u8; 8];
        let sz = self.dtype.size_bytes();
        let mut produced = 0u64;
        for _ in 0..self.elems_per_cycle {
            if self.generated == self.total {
                break;
            }
            data::write_element(self.dtype, self.generated, &mut buf[..sz]);
            self.generated += 1;
            produced += 1;
            if let Some(pkt) = self.framer.push_bytes(&buf[..sz]) {
                debug_assert!(self.pending.is_none(), "one packet per cycle");
                self.pending = Some(pkt);
                break; // a full packet ends the cycle's work
            }
            if self.packet_per_element {
                self.pending = self.framer.flush();
                break;
            }
        }
        if self.generated == self.total {
            if let Some(pkt) = self.framer.flush() {
                assert!(
                    self.pending.is_none(),
                    "tail flush collides with full packet"
                );
                self.pending = Some(pkt);
            }
        }
        if produced > 0 {
            self.probe.borrow_mut().touch(cycle, produced);
        }
        // Try to emit the packet in the same cycle (store-and-forward at the
        // FIFO boundary still applies its one-cycle visibility).
        if let Some(pkt) = self.pending.take() {
            if fifos.can_push(self.out) {
                fifos.push(self.out, pkt);
            } else {
                self.pending = Some(pkt);
            }
        }
        if self.generated == self.total && self.pending.is_none() {
            Status::Done
        } else {
            Status::Active
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}

/// Pipelined receiving application.
pub struct StreamSink {
    name: String,
    input: FifoId,
    dtype: Datatype,
    deframer: Deframer,
    expected: u64,
    received: u64,
    /// Maximum packets accepted per cycle (1 models a single Pop-per-cycle
    /// pipeline; the deframer then delivers its elements "within" the cycle,
    /// i.e. the loop is vectorized to the packet width).
    packets_per_cycle: u32,
    probe: ProbeHandle,
}

impl StreamSink {
    /// A sink expecting `expected` elements of `dtype`.
    pub fn new(
        name: impl Into<String>,
        input: FifoId,
        dtype: Datatype,
        expected: u64,
        probe: ProbeHandle,
    ) -> Self {
        StreamSink {
            name: name.into(),
            input,
            dtype,
            deframer: Deframer::new(dtype),
            expected,
            received: 0,
            packets_per_cycle: 1,
            probe,
        }
    }

    fn drain_deframer(&mut self, cycle: u64) {
        let sz = self.dtype.size_bytes();
        let mut buf = [0u8; 8];
        while self.deframer.pop_bytes(&mut buf[..sz]) {
            if !data::check_element(self.dtype, self.received, &buf[..sz]) {
                self.probe.borrow_mut().errors += 1;
            }
            self.received += 1;
            self.probe.borrow_mut().touch(cycle, 1);
        }
    }
}

impl Component for StreamSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64, fifos: &mut FifoPool) -> Status {
        if self.received == self.expected {
            return Status::Done;
        }
        let mut acted = false;
        for _ in 0..self.packets_per_cycle {
            if !self.deframer.is_empty() {
                break;
            }
            if fifos.can_pop(self.input) {
                let pkt = fifos.pop(self.input);
                self.deframer.refill(pkt);
                self.drain_deframer(cycle);
                acted = true;
            }
        }
        if self.received == self.expected {
            Status::Done
        } else if acted {
            Status::Active
        } else {
            Status::Idle
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn source_to_sink_direct() {
        // Source and sink joined by a bare FIFO (no network): verifies
        // framing, pacing, and data integrity.
        let mut e = Engine::new();
        let f = e.fifos_mut().add("direct", 8);
        let sp = new_probe();
        let rp = new_probe();
        e.add(StreamSource::new(
            "src",
            f,
            Datatype::Float,
            0,
            1,
            0,
            100,
            7,
            sp.clone(),
        ));
        e.add(StreamSink::new("snk", f, Datatype::Float, 100, rp.clone()));
        e.run(10_000).unwrap();
        assert_eq!(rp.borrow().elements, 100);
        assert_eq!(rp.borrow().errors, 0);
        assert_eq!(sp.borrow().elements, 100);
    }

    #[test]
    fn full_width_source_saturates_fifo() {
        // 7 elems/cycle = 1 packet/cycle: 700 elements need ~100 cycles + pipeline.
        let mut e = Engine::new();
        let f = e.fifos_mut().add("direct", 8);
        let rp = new_probe();
        e.add(StreamSource::new(
            "src",
            f,
            Datatype::Float,
            0,
            1,
            0,
            700,
            7,
            new_probe(),
        ));
        e.add(StreamSink::new("snk", f, Datatype::Float, 700, rp.clone()));
        let report = e.run(10_000).unwrap();
        assert!(report.cycles < 130, "cycles = {}", report.cycles);
        assert_eq!(rp.borrow().errors, 0);
    }

    #[test]
    fn narrow_source_paces_output() {
        // 1 elem/cycle: 70 elements -> 10 packets over ~70 cycles.
        let mut e = Engine::new();
        let f = e.fifos_mut().add("direct", 8);
        let rp = new_probe();
        e.add(StreamSource::new(
            "src",
            f,
            Datatype::Float,
            0,
            1,
            0,
            70,
            1,
            new_probe(),
        ));
        e.add(StreamSink::new("snk", f, Datatype::Float, 70, rp.clone()));
        let report = e.run(10_000).unwrap();
        assert!(report.cycles >= 70, "cycles = {}", report.cycles);
        assert_eq!(rp.borrow().errors, 0);
    }

    #[test]
    fn packet_per_element_mode() {
        let mut e = Engine::new();
        let f = e.fifos_mut().add("direct", 64);
        let rp = new_probe();
        e.add(
            StreamSource::new("src", f, Datatype::Int, 0, 1, 0, 10, 7, new_probe())
                .packet_per_element(),
        );
        e.add(StreamSink::new("snk", f, Datatype::Int, 10, rp.clone()));
        e.run(10_000).unwrap();
        // 10 packets pushed in total.
        assert_eq!(e.fifos().pushes(f), 10);
        assert_eq!(rp.borrow().errors, 0);
    }

    #[test]
    fn partial_tail_packet() {
        let mut e = Engine::new();
        let f = e.fifos_mut().add("direct", 8);
        let rp = new_probe();
        e.add(StreamSource::new(
            "src",
            f,
            Datatype::Double,
            0,
            1,
            0,
            7,
            3,
            new_probe(),
        ));
        e.add(StreamSink::new("snk", f, Datatype::Double, 7, rp.clone()));
        e.run(10_000).unwrap();
        // 7 doubles = 2 full packets (3+3) + tail (1).
        assert_eq!(e.fifos().pushes(f), 3);
        assert_eq!(rp.borrow().elements, 7);
        assert_eq!(rp.borrow().errors, 0);
    }
}
