//! Application-side components: pipelined kernels that exercise the SMI
//! transport with verifiable data streams (microbenchmark sources/sinks,
//! ping-pong, and the collective producer/consumer apps).

pub mod collective_apps;
pub mod data;
pub mod pingpong;
pub mod stream;

pub use collective_apps::{CollectiveConsumer, CollectiveProducer};
pub use pingpong::{PingPongInitiator, PingPongResponder};
pub use stream::{Probe, ProbeHandle, StreamSink, StreamSource};
