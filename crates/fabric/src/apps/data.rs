//! Deterministic element streams for end-to-end integrity checking.
//!
//! Sources generate the value at stream index `i` with [`write_element`];
//! sinks verify with [`check_element`]. Every microbenchmark therefore
//! validates the complete transport path (framing, routing, arbitration,
//! links) while it measures it.

use smi_wire::Datatype;

/// Serialize the canonical element at stream index `idx` into `dst`
/// (`dst.len()` must equal the element size).
pub fn write_element(dtype: Datatype, idx: u64, dst: &mut [u8]) {
    match dtype {
        Datatype::Char => dst.copy_from_slice(&[(idx & 0xff) as u8]),
        Datatype::Short => dst.copy_from_slice(&((idx & 0x7fff) as i16).to_le_bytes()),
        Datatype::Int => dst.copy_from_slice(&(idx as i32).to_le_bytes()),
        // Keep float payloads exactly representable so equality is exact.
        Datatype::Float => dst.copy_from_slice(&((idx % (1 << 24)) as f32).to_le_bytes()),
        Datatype::Double => dst.copy_from_slice(&(idx as f64).to_le_bytes()),
    }
}

/// Check that `src` holds the canonical element for index `idx`.
pub fn check_element(dtype: Datatype, idx: u64, src: &[u8]) -> bool {
    let mut expect = [0u8; 8];
    let sz = dtype.size_bytes();
    write_element(dtype, idx, &mut expect[..sz]);
    src == &expect[..sz]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        for &dt in &Datatype::ALL {
            let sz = dt.size_bytes();
            for idx in [0u64, 1, 255, 256, 65535, 1 << 20] {
                let mut buf = vec![0u8; sz];
                write_element(dt, idx, &mut buf);
                assert!(check_element(dt, idx, &buf), "{dt:?} idx {idx}");
            }
        }
    }

    #[test]
    fn mismatch_detected() {
        let mut buf = [0u8; 4];
        write_element(Datatype::Int, 7, &mut buf);
        assert!(!check_element(Datatype::Int, 8, &buf));
    }
}
