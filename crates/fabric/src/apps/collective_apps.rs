//! Producer/consumer applications for the collective benchmarks.
//!
//! A [`CollectiveProducer`] is the application loop feeding a support kernel
//! (`SMI_Bcast`/`SMI_Reduce`/… called once per element at the root or
//! contributing side); a [`CollectiveConsumer`] pops and verifies results.
//! Element values are supplied/checked through closures so each collective
//! can express its expected data (sequence, slice offsets, reduced folds).

use smi_wire::{Datatype, Deframer, Framer, NetworkPacket, PacketOp};

use crate::apps::stream::ProbeHandle;
use crate::engine::{Component, Status};
use crate::fifo::{FifoId, FifoPool};

/// Element generator closure: fills the byte slice with element `i`.
pub type ValueFn = Box<dyn FnMut(u64, &mut [u8])>;
/// Element checker closure: validates the byte slice of element `i`.
pub type ExpectFn = Box<dyn FnMut(u64, &[u8]) -> bool>;

/// Generates elements `value_fn(0..total)` into a support kernel's `app_in`.
pub struct CollectiveProducer {
    name: String,
    out: FifoId,
    dtype: Datatype,
    framer: Framer,
    total: u64,
    generated: u64,
    elems_per_cycle: u32,
    pending: Option<NetworkPacket>,
    value_fn: ValueFn,
}

impl CollectiveProducer {
    /// New producer pushing `total` elements at `elems_per_cycle` per cycle.
    pub fn new(
        name: impl Into<String>,
        out: FifoId,
        dtype: Datatype,
        total: u64,
        elems_per_cycle: u32,
        value_fn: impl FnMut(u64, &mut [u8]) + 'static,
    ) -> Self {
        let epp = dtype.elems_per_packet() as u32;
        assert!(elems_per_cycle >= 1 && elems_per_cycle <= epp);
        CollectiveProducer {
            name: name.into(),
            out,
            dtype,
            framer: Framer::new(dtype, 0, 0, 0, PacketOp::Send),
            total,
            generated: 0,
            elems_per_cycle,
            pending: None,
            value_fn: Box::new(value_fn),
        }
    }
}

impl Component for CollectiveProducer {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64, fifos: &mut FifoPool) -> Status {
        if let Some(pkt) = self.pending.take() {
            if fifos.can_push(self.out) {
                fifos.push(self.out, pkt);
                return Status::Active;
            }
            self.pending = Some(pkt);
            return Status::Idle;
        }
        if self.generated == self.total {
            return Status::Done;
        }
        let sz = self.dtype.size_bytes();
        let mut buf = [0u8; 8];
        for _ in 0..self.elems_per_cycle {
            if self.generated == self.total {
                break;
            }
            (self.value_fn)(self.generated, &mut buf[..sz]);
            self.generated += 1;
            if let Some(pkt) = self.framer.push_bytes(&buf[..sz]) {
                self.pending = Some(pkt);
                break;
            }
        }
        if self.generated == self.total && self.pending.is_none() {
            self.pending = self.framer.flush();
        }
        if let Some(pkt) = self.pending.take() {
            if fifos.can_push(self.out) {
                fifos.push(self.out, pkt);
            } else {
                self.pending = Some(pkt);
            }
        }
        if self.generated == self.total && self.pending.is_none() {
            Status::Done
        } else {
            Status::Active
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}

/// Pops `total` elements from a support kernel's `app_out` and verifies each
/// against `expect_fn`.
pub struct CollectiveConsumer {
    name: String,
    input: FifoId,
    dtype: Datatype,
    deframer: Deframer,
    total: u64,
    received: u64,
    probe: ProbeHandle,
    expect_fn: ExpectFn,
}

impl CollectiveConsumer {
    /// New consumer expecting `total` elements.
    pub fn new(
        name: impl Into<String>,
        input: FifoId,
        dtype: Datatype,
        total: u64,
        probe: ProbeHandle,
        expect_fn: impl FnMut(u64, &[u8]) -> bool + 'static,
    ) -> Self {
        CollectiveConsumer {
            name: name.into(),
            input,
            dtype,
            deframer: Deframer::new(dtype),
            total,
            received: 0,
            probe,
            expect_fn: Box::new(expect_fn),
        }
    }
}

impl Component for CollectiveConsumer {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64, fifos: &mut FifoPool) -> Status {
        if self.received == self.total {
            return Status::Done;
        }
        if self.deframer.is_empty() {
            if !fifos.can_pop(self.input) {
                return Status::Idle;
            }
            self.deframer.refill(fifos.pop(self.input));
        }
        let sz = self.dtype.size_bytes();
        let mut buf = [0u8; 8];
        while self.deframer.pop_bytes(&mut buf[..sz]) {
            if !(self.expect_fn)(self.received, &buf[..sz]) {
                self.probe.borrow_mut().errors += 1;
            }
            self.received += 1;
            let mut p = self.probe.borrow_mut();
            if p.first_cycle.is_none() {
                p.first_cycle = Some(cycle);
            }
            p.last_cycle = Some(cycle);
            p.elements += 1;
        }
        if self.received == self.total {
            Status::Done
        } else {
            Status::Active
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}
