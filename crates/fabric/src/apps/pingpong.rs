//! The latency microbenchmark: "a ping-pong benchmark of a small message
//! between two ranks … the latency is half the execution time of a single
//! round-trip" (§5.3.2).

use smi_wire::{Datatype, Framer, NetworkPacket, PacketOp};

use crate::engine::{Component, Status};
use crate::fifo::{FifoId, FifoPool};

fn one_elem_packet(dtype: Datatype, src: u8, dst: u8, port: u8, value: u64) -> NetworkPacket {
    let mut framer = Framer::new(dtype, src, dst, port, PacketOp::Send);
    let mut buf = [0u8; 8];
    crate::apps::data::write_element(dtype, value, &mut buf[..dtype.size_bytes()]);
    framer.push_bytes(&buf[..dtype.size_bytes()]);
    framer.flush().expect("one element framed")
}

/// The rank that starts each round: sends a 1-element ping, waits for the
/// 1-element pong, `iters` times.
pub struct PingPongInitiator {
    name: String,
    out: FifoId,
    input: FifoId,
    dtype: Datatype,
    my_rank: u8,
    peer_rank: u8,
    peer_port: u8,
    iters: u32,
    round: u32,
    waiting: bool,
}

impl PingPongInitiator {
    /// Build the initiator side.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        out: FifoId,
        input: FifoId,
        dtype: Datatype,
        my_rank: u8,
        peer_rank: u8,
        peer_port: u8,
        iters: u32,
    ) -> Self {
        assert!(iters >= 1);
        PingPongInitiator {
            name: name.into(),
            out,
            input,
            dtype,
            my_rank,
            peer_rank,
            peer_port,
            iters,
            round: 0,
            waiting: false,
        }
    }
}

impl Component for PingPongInitiator {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64, fifos: &mut FifoPool) -> Status {
        if self.round == self.iters {
            return Status::Done;
        }
        if self.waiting {
            if fifos.can_pop(self.input) {
                fifos.pop(self.input);
                self.waiting = false;
                self.round += 1;
                if self.round == self.iters {
                    return Status::Done;
                }
                return Status::Active;
            }
            return Status::Idle;
        }
        if fifos.can_push(self.out) {
            let pkt = one_elem_packet(
                self.dtype,
                self.my_rank,
                self.peer_rank,
                self.peer_port,
                self.round as u64,
            );
            fifos.push(self.out, pkt);
            self.waiting = true;
            Status::Active
        } else {
            Status::Idle
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}

/// The echoing rank: pops a ping, sends a pong, `iters` times.
pub struct PingPongResponder {
    name: String,
    out: FifoId,
    input: FifoId,
    dtype: Datatype,
    my_rank: u8,
    peer_rank: u8,
    peer_port: u8,
    iters: u32,
    round: u32,
    replying: bool,
}

impl PingPongResponder {
    /// Build the responder side.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        out: FifoId,
        input: FifoId,
        dtype: Datatype,
        my_rank: u8,
        peer_rank: u8,
        peer_port: u8,
        iters: u32,
    ) -> Self {
        PingPongResponder {
            name: name.into(),
            out,
            input,
            dtype,
            my_rank,
            peer_rank,
            peer_port,
            iters,
            round: 0,
            replying: false,
        }
    }
}

impl Component for PingPongResponder {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64, fifos: &mut FifoPool) -> Status {
        if self.round == self.iters {
            return Status::Done;
        }
        if self.replying {
            if fifos.can_push(self.out) {
                let pkt = one_elem_packet(
                    self.dtype,
                    self.my_rank,
                    self.peer_rank,
                    self.peer_port,
                    self.round as u64,
                );
                fifos.push(self.out, pkt);
                self.replying = false;
                self.round += 1;
                if self.round == self.iters {
                    return Status::Done;
                }
                return Status::Active;
            }
            return Status::Idle;
        }
        if fifos.can_pop(self.input) {
            fifos.pop(self.input);
            self.replying = true;
            Status::Active
        } else {
            Status::Idle
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn pingpong_over_bare_fifos() {
        // Two FIFOs back-to-back (no network): RTT = a few cycles per round.
        let mut e = Engine::new();
        let ab = e.fifos_mut().add("a->b", 4);
        let ba = e.fifos_mut().add("b->a", 4);
        let iters = 50;
        e.add(PingPongInitiator::new(
            "init",
            ab,
            ba,
            Datatype::Int,
            0,
            1,
            0,
            iters,
        ));
        e.add(PingPongResponder::new(
            "resp",
            ba,
            ab,
            Datatype::Int,
            1,
            0,
            0,
            iters,
        ));
        let report = e.run(100_000).unwrap();
        // Each round: push (1 cycle visibility) + pop + push + pop ≈ 4 cycles.
        let per_round = report.cycles as f64 / iters as f64;
        assert!((3.0..6.0).contains(&per_round), "per round {per_round}");
    }
}
