//! One-call experiment runners for the paper's microbenchmarks (§5.3).
//!
//! Each runner executes the full production workflow: derive the
//! communication design from op metadata (`smi-codegen`), compute
//! deadlock-free routes (`smi-topology`), wire the fabric, run it cycle by
//! cycle, and report both the timing and the end-to-end data-integrity
//! counters.

use smi_codegen::{ClusterDesign, OpKind, OpSpec, ProgramMeta};
use smi_topology::{RoutingPlan, Topology};
use smi_wire::{Datatype, ReduceOp};

use crate::apps::collective_apps::{CollectiveConsumer, CollectiveProducer};
use crate::apps::data;
use crate::apps::pingpong::{PingPongInitiator, PingPongResponder};
use crate::apps::stream::{new_probe, StreamSink, StreamSource};
use crate::builder::FabricBuilder;
use crate::collective::tree::{TreeBcastSupport, TreeReduceSupport};
use crate::collective::{
    BcastSupport, CollectiveComm, GatherSupport, ReduceSupport, ScatterSupport,
};
use crate::engine::SimError;
use crate::params::FabricParams;

/// Result of a point-to-point streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct P2pResult {
    /// Total cycles from start to the sink's last element.
    pub cycles: u64,
    /// Wall time in µs at the configured kernel clock.
    pub time_us: f64,
    /// Achieved payload bandwidth in Gbit/s.
    pub payload_gbit_s: f64,
    /// Network hops the route takes.
    pub hops: usize,
    /// Sequence mismatches observed by the sink (must be 0).
    pub errors: u64,
}

/// Stream `count` elements of `dtype` from `src` to `dst` and measure
/// bandwidth (the Fig. 9 microbenchmark).
pub fn p2p_stream(
    topo: &Topology,
    src: usize,
    dst: usize,
    count: u64,
    dtype: Datatype,
    params: &FabricParams,
) -> Result<P2pResult, SimError> {
    assert_ne!(src, dst, "use injection_rate for local loopback");
    let plan = RoutingPlan::compute(topo).expect("routable topology");
    let hops = plan.hops(src, dst);
    let metas: Vec<ProgramMeta> = (0..topo.num_ranks())
        .map(|r| {
            let mut m = ProgramMeta::new();
            if r == src {
                m = m.with(OpSpec::send(0, dtype));
            }
            if r == dst {
                m = m.with(OpSpec::recv(0, dtype));
            }
            m
        })
        .collect();
    let design = ClusterDesign::mpmd(&metas, topo).expect("valid design");
    let mut b = FabricBuilder::new(topo.clone(), plan, design, params.clone());
    let out = b.register_send(src, 0);
    let input = b.register_recv(dst, 0);
    let send_probe = new_probe();
    let recv_probe = new_probe();
    let width = dtype.elems_per_packet() as u32;
    b.add_component(StreamSource::new(
        "source", out, dtype, src as u8, dst as u8, 0, count, width, send_probe,
    ));
    b.add_component(StreamSink::new(
        "sink",
        input,
        dtype,
        count,
        recv_probe.clone(),
    ));
    let mut fabric = b.finalize();
    let budget = 10_000 + (count / dtype.elems_per_packet() as u64) * 4 + 4_000 * hops as u64;
    let report = fabric.run(budget.max(1_000_000))?;
    let bytes = dtype.bytes_for(count as usize);
    let errors = recv_probe.borrow().errors;
    Ok(P2pResult {
        cycles: report.cycles,
        time_us: params.cycles_to_us(report.cycles),
        payload_gbit_s: params.payload_gbit_s(bytes, report.cycles),
        hops,
        errors,
    })
}

/// Result of an aggregate multi-flow streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct PairsResult {
    /// Total cycles until the last sink finished.
    pub cycles: u64,
    /// Wall time in µs at the configured kernel clock.
    pub time_us: f64,
    /// Aggregate payload bandwidth over all flows in Gbit/s.
    pub aggregate_gbit_s: f64,
    /// Number of concurrent flows.
    pub pairs: usize,
    /// Sequence mismatches observed across all sinks (must be 0).
    pub errors: u64,
}

/// Stream `count` elements on every disjoint neighbour pair (rank `2i` →
/// `2i+1`) concurrently — the timing-plane reference for the functional
/// plane's `bench_scaling` sweep. Requires an even rank count.
pub fn p2p_pairs(
    topo: &Topology,
    count: u64,
    dtype: Datatype,
    params: &FabricParams,
) -> Result<PairsResult, SimError> {
    let n = topo.num_ranks();
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "disjoint pairs need an even rank count"
    );
    let pairs = n / 2;
    let plan = RoutingPlan::compute(topo).expect("routable topology");
    let metas: Vec<ProgramMeta> = (0..n)
        .map(|r| {
            if r % 2 == 0 {
                ProgramMeta::new().with(OpSpec::send(0, dtype))
            } else {
                ProgramMeta::new().with(OpSpec::recv(0, dtype))
            }
        })
        .collect();
    let design = ClusterDesign::mpmd(&metas, topo).expect("valid design");
    let mut b = FabricBuilder::new(topo.clone(), plan, design, params.clone());
    let width = dtype.elems_per_packet() as u32;
    let probe = new_probe();
    for p in 0..pairs {
        let (src, dst) = (2 * p, 2 * p + 1);
        let out = b.register_send(src, 0);
        let input = b.register_recv(dst, 0);
        b.add_component(StreamSource::new(
            format!("source.{p}"),
            out,
            dtype,
            src as u8,
            dst as u8,
            0,
            count,
            width,
            new_probe(),
        ));
        b.add_component(StreamSink::new(
            format!("sink.{p}"),
            input,
            dtype,
            count,
            probe.clone(),
        ));
    }
    let mut fabric = b.finalize();
    let budget = 10_000 + (count / dtype.elems_per_packet() as u64) * 8;
    let report = fabric.run(budget.max(1_000_000))?;
    let bytes = dtype.bytes_for(count as usize) * pairs;
    let errors = probe.borrow().errors;
    Ok(PairsResult {
        cycles: report.cycles,
        time_us: params.cycles_to_us(report.cycles),
        aggregate_gbit_s: params.payload_gbit_s(bytes, report.cycles),
        pairs,
        errors,
    })
}

/// Result of a ping-pong latency run.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyResult {
    /// Total cycles for all iterations.
    pub cycles: u64,
    /// Half round-trip time in µs (the paper's latency metric).
    pub half_rtt_us: f64,
    /// Network hops between the two ranks.
    pub hops: usize,
}

/// Ping-pong a 1-element message between `a` and `b` (the Tab. 3
/// microbenchmark): latency = half the round-trip time.
pub fn pingpong(
    topo: &Topology,
    a: usize,
    b_rank: usize,
    iters: u32,
    params: &FabricParams,
) -> Result<LatencyResult, SimError> {
    let plan = RoutingPlan::compute(topo).expect("routable topology");
    let hops = plan.hops(a, b_rank);
    let dtype = Datatype::Int;
    let metas: Vec<ProgramMeta> = (0..topo.num_ranks())
        .map(|r| {
            let mut m = ProgramMeta::new();
            if r == a {
                m = m.with(OpSpec::send(0, dtype)).with(OpSpec::recv(1, dtype));
            }
            if r == b_rank {
                m = m.with(OpSpec::recv(0, dtype)).with(OpSpec::send(1, dtype));
            }
            m
        })
        .collect();
    let design = ClusterDesign::mpmd(&metas, topo).expect("valid design");
    let mut builder = FabricBuilder::new(topo.clone(), plan, design, params.clone());
    let a_out = builder.register_send(a, 0);
    let b_in = builder.register_recv(b_rank, 0);
    let b_out = builder.register_send(b_rank, 1);
    let a_in = builder.register_recv(a, 1);
    builder.add_component(PingPongInitiator::new(
        "initiator",
        a_out,
        a_in,
        dtype,
        a as u8,
        b_rank as u8,
        0,
        iters,
    ));
    builder.add_component(PingPongResponder::new(
        "responder",
        b_out,
        b_in,
        dtype,
        b_rank as u8,
        a as u8,
        1,
        iters,
    ));
    let mut fabric = builder.finalize();
    let budget = (iters as u64) * (params.link_latency_cycles + 100) * (2 * hops as u64 + 2);
    let report = fabric.run(budget.max(1_000_000))?;
    let rtt_cycles = report.cycles as f64 / iters as f64;
    Ok(LatencyResult {
        cycles: report.cycles,
        half_rtt_us: params.cycles_to_us(1) * rtt_cycles / 2.0,
        hops,
    })
}

/// Result of the injection-rate microbenchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionResult {
    /// Average cycles between accepted packets from the same endpoint
    /// (the paper's Tab. 4 metric).
    pub cycles_per_packet: f64,
    /// Total cycles.
    pub cycles: u64,
}

/// Measure the CKS injection latency (Tab. 4): one application sends
/// 1-element messages every loop iteration through a CKS serving 4 network
/// ports, with polling persistence `R` taken from `params`.
///
/// The destination is the local rank (loopback through the paired CKR), so
/// the measurement isolates the arbitration period rather than the link
/// line rate.
pub fn injection_rate(params: &FabricParams, count: u64) -> Result<InjectionResult, SimError> {
    let topo = Topology::torus2d(2, 4); // every rank has 4 CK pairs
    let plan = RoutingPlan::compute(&topo).expect("routable");
    let dtype = Datatype::Int;
    let metas: Vec<ProgramMeta> = (0..topo.num_ranks())
        .map(|r| {
            if r == 0 {
                ProgramMeta::new()
                    .with(OpSpec::send(0, dtype))
                    .with(OpSpec::recv(0, dtype))
            } else {
                ProgramMeta::new()
            }
        })
        .collect();
    let design = ClusterDesign::mpmd(&metas, &topo).expect("valid design");
    let mut b = FabricBuilder::new(topo, plan, design, params.clone());
    let out = b.register_send(0, 0);
    let input = b.register_recv(0, 0);
    let probe = new_probe();
    b.add_component(
        StreamSource::new("injector", out, dtype, 0, 0, 0, count, 1, new_probe())
            .packet_per_element(),
    );
    b.add_component(StreamSink::new("sink", input, dtype, count, probe.clone()));
    let mut fabric = b.finalize();
    let report = fabric.run(count * 40 + 100_000)?;
    // Steady-state period: total cycles divided by packets (ramp-in/out is
    // amortized by a large count).
    Ok(InjectionResult {
        cycles_per_packet: report.cycles as f64 / count as f64,
        cycles: report.cycles,
    })
}

/// Which collective to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// One-to-all broadcast.
    Bcast,
    /// One-to-all personalized (scatter).
    Scatter,
    /// All-to-one concatenation (gather).
    Gather,
    /// All-to-one reduction.
    Reduce,
}

/// Collective algorithm variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveScheme {
    /// The paper's linear scheme (§4.4).
    Linear,
    /// Binomial-tree extension (Bcast/Reduce only).
    Tree,
}

/// Result of a collective run.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveResult {
    /// Total cycles until every participant finished.
    pub cycles: u64,
    /// Wall time in µs.
    pub time_us: f64,
    /// Verification mismatches (must be 0).
    pub errors: u64,
}

/// Run a collective over all ranks of `topo` with the given root and
/// per-rank element `count` (the Fig. 10/11 microbenchmarks).
#[allow(clippy::too_many_arguments)]
pub fn collective(
    topo: &Topology,
    kind: CollectiveKind,
    scheme: CollectiveScheme,
    root: usize,
    count: u64,
    dtype: Datatype,
    reduce_op: ReduceOp,
    params: &FabricParams,
) -> Result<CollectiveResult, SimError> {
    let n = topo.num_ranks();
    let plan = RoutingPlan::compute(topo).expect("routable topology");
    let op_spec = match kind {
        CollectiveKind::Bcast => OpSpec::bcast(0, dtype),
        CollectiveKind::Scatter => OpSpec::scatter(0, dtype),
        CollectiveKind::Gather => OpSpec::gather(0, dtype),
        CollectiveKind::Reduce => OpSpec::reduce(0, dtype, reduce_op),
    };
    let meta = ProgramMeta::new().with(op_spec);
    let design = ClusterDesign::spmd(&meta, topo).expect("valid design");
    let mut b = FabricBuilder::new(topo.clone(), plan, design, params.clone());
    let comm = CollectiveComm {
        ranks: (0..n).collect(),
        root,
        port: 0,
        dtype,
        count,
    };
    let width = dtype.elems_per_packet() as u32;
    let probe = new_probe();
    let sz = dtype.size_bytes();
    for rank in 0..n {
        let w = b.register_collective(rank, 0, op_kind_of(kind));
        match (kind, scheme) {
            (CollectiveKind::Bcast, CollectiveScheme::Linear) => b.add_component(
                BcastSupport::new(format!("bcast.r{rank}"), comm.clone(), rank, w),
            ),
            (CollectiveKind::Bcast, CollectiveScheme::Tree) => b.add_component(
                TreeBcastSupport::new(format!("tbcast.r{rank}"), comm.clone(), rank, w),
            ),
            (CollectiveKind::Scatter, _) => b.add_component(ScatterSupport::new(
                format!("scatter.r{rank}"),
                comm.clone(),
                rank,
                w,
            )),
            (CollectiveKind::Gather, _) => b.add_component(GatherSupport::new(
                format!("gather.r{rank}"),
                comm.clone(),
                rank,
                w,
            )),
            (CollectiveKind::Reduce, CollectiveScheme::Linear) => {
                b.add_component(ReduceSupport::new(
                    format!("reduce.r{rank}"),
                    comm.clone(),
                    reduce_op,
                    params.reduce_credits as u64,
                    rank,
                    w,
                ))
            }
            (CollectiveKind::Reduce, CollectiveScheme::Tree) => {
                b.add_component(TreeReduceSupport::new(
                    format!("treduce.r{rank}"),
                    comm.clone(),
                    reduce_op,
                    params.reduce_credits as u64,
                    rank,
                    w,
                ))
            }
        }
        // Producers and consumers per collective semantics.
        match kind {
            CollectiveKind::Bcast => {
                if rank == root {
                    b.add_component(CollectiveProducer::new(
                        format!("prod.r{rank}"),
                        w.app_in,
                        dtype,
                        count,
                        width,
                        move |i, out| data::write_element(dtype, i, out),
                    ));
                } else {
                    b.add_component(CollectiveConsumer::new(
                        format!("cons.r{rank}"),
                        w.app_out,
                        dtype,
                        count,
                        probe.clone(),
                        move |i, got| data::check_element(dtype, i, got),
                    ));
                }
            }
            CollectiveKind::Scatter => {
                if rank == root {
                    b.add_component(CollectiveProducer::new(
                        format!("prod.r{rank}"),
                        w.app_in,
                        dtype,
                        count * n as u64,
                        width,
                        move |i, out| data::write_element(dtype, i, out),
                    ));
                }
                let offset = comm.index_of(rank).expect("member") as u64 * count;
                b.add_component(CollectiveConsumer::new(
                    format!("cons.r{rank}"),
                    w.app_out,
                    dtype,
                    count,
                    probe.clone(),
                    move |i, got| data::check_element(dtype, offset + i, got),
                ));
            }
            CollectiveKind::Gather => {
                let offset = comm.index_of(rank).expect("member") as u64 * count;
                b.add_component(CollectiveProducer::new(
                    format!("prod.r{rank}"),
                    w.app_in,
                    dtype,
                    count,
                    width,
                    move |i, out| data::write_element(dtype, offset + i, out),
                ));
                if rank == root {
                    b.add_component(CollectiveConsumer::new(
                        format!("cons.r{rank}"),
                        w.app_out,
                        dtype,
                        count * n as u64,
                        probe.clone(),
                        move |i, got| data::check_element(dtype, i, got),
                    ));
                }
            }
            CollectiveKind::Reduce => {
                b.add_component(CollectiveProducer::new(
                    format!("prod.r{rank}"),
                    w.app_in,
                    dtype,
                    count,
                    width,
                    move |i, out| data::write_element(dtype, i, out),
                ));
                if rank == root {
                    let mut ident = vec![0u8; sz];
                    b.add_component(CollectiveConsumer::new(
                        format!("cons.r{rank}"),
                        w.app_out,
                        dtype,
                        count,
                        probe.clone(),
                        move |i, got| {
                            // Expected: the op folded over n identical
                            // canonical contributions.
                            reduce_op.identity_bytes(dtype, &mut ident);
                            let mut contrib = [0u8; 8];
                            data::write_element(dtype, i, &mut contrib[..sz]);
                            for _ in 0..n {
                                reduce_op.fold_bytes(dtype, &mut ident, &contrib[..sz]);
                            }
                            ident.as_slice() == got
                        },
                    ));
                }
            }
        }
    }
    let mut fabric = b.finalize();
    let packets = dtype.packets_for(count as usize) as u64 + 1;
    let budget = 1_000_000
        + packets * (n as u64 + 2) * 8
        + (count / params.reduce_credits as u64 + 2) * 8_000;
    let report = fabric.run(budget)?;
    let errors = probe.borrow().errors;
    Ok(CollectiveResult {
        cycles: report.cycles,
        time_us: params.cycles_to_us(report.cycles),
        errors,
    })
}

/// Result of the switching-mode interference experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceResult {
    /// Cycle at which the short flow's last element arrived.
    pub short_completion_cycles: u64,
    /// Cycle at which everything (incl. the long flow) finished.
    pub total_cycles: u64,
}

/// The §4.2 packet-vs-circuit switching ablation: one rank sends a long
/// stream (port 0) and a short message (port 1) through the *same* CKS.
/// Under the reference packet switching the flows interleave and the short
/// message finishes almost immediately; under circuit switching
/// (`params.circuit_hold_cycles > 0`) the long transmission monopolizes the
/// kernel — the "temporary stalls due to the transmission of long messages"
/// that motivated the paper's choice.
pub fn two_flow_interference(
    params: &FabricParams,
    long_elems: u64,
    short_elems: u64,
) -> Result<InterferenceResult, SimError> {
    let topo = Topology::bus(2);
    let plan = RoutingPlan::compute(&topo).expect("plan");
    let dtype = Datatype::Float;
    let metas = vec![
        ProgramMeta::new()
            .with(OpSpec::send(0, dtype))
            .with(OpSpec::send(1, dtype)),
        ProgramMeta::new()
            .with(OpSpec::recv(0, dtype))
            .with(OpSpec::recv(1, dtype)),
    ];
    let design = ClusterDesign::mpmd(&metas, &topo).expect("design");
    let mut b = FabricBuilder::new(topo, plan, design, params.clone());
    let long_out = b.register_send(0, 0);
    let short_out = b.register_send(0, 1);
    let long_in = b.register_recv(1, 0);
    let short_in = b.register_recv(1, 1);
    let short_probe = new_probe();
    let width = dtype.elems_per_packet() as u32;
    b.add_component(StreamSource::new(
        "long",
        long_out,
        dtype,
        0,
        1,
        0,
        long_elems,
        width,
        new_probe(),
    ));
    // The short message starts after the long stream is established, so a
    // circuit-switched CKS has already granted the long flow.
    b.add_component(
        StreamSource::new(
            "short",
            short_out,
            dtype,
            0,
            1,
            1,
            short_elems,
            width,
            new_probe(),
        )
        .with_start_delay(100),
    );
    b.add_component(StreamSink::new(
        "long_sink",
        long_in,
        dtype,
        long_elems,
        new_probe(),
    ));
    b.add_component(StreamSink::new(
        "short_sink",
        short_in,
        dtype,
        short_elems,
        short_probe.clone(),
    ));
    let mut fabric = b.finalize();
    let budget = (long_elems + short_elems) * 8 + 1_000_000;
    let report = fabric.run(budget)?;
    let short_done = short_probe
        .borrow()
        .last_cycle
        .expect("short flow finished");
    Ok(InterferenceResult {
        short_completion_cycles: short_done,
        total_cycles: report.cycles,
    })
}

/// Run a collective over an arbitrary subset of ranks (sub-communicator
/// semantics on the fabric): `members` are global ranks in communicator
/// order; non-members idle. Only Bcast is exercised here — enough to test
/// that communicators smaller than the world behave on the timing plane.
pub fn bcast_subset(
    topo: &Topology,
    members: Vec<usize>,
    root: usize,
    count: u64,
    params: &FabricParams,
) -> Result<CollectiveResult, SimError> {
    assert!(members.contains(&root), "root must be a member");
    let dtype = Datatype::Float;
    let plan = RoutingPlan::compute(topo).expect("plan");
    let metas: Vec<ProgramMeta> = (0..topo.num_ranks())
        .map(|r| {
            if members.contains(&r) {
                ProgramMeta::new().with(OpSpec::bcast(0, dtype))
            } else {
                ProgramMeta::new()
            }
        })
        .collect();
    let design = ClusterDesign::mpmd(&metas, topo).expect("design");
    let mut b = FabricBuilder::new(topo.clone(), plan, design, params.clone());
    let comm = CollectiveComm {
        ranks: members.clone(),
        root,
        port: 0,
        dtype,
        count,
    };
    let probe = new_probe();
    let width = dtype.elems_per_packet() as u32;
    for &rank in &members {
        let w = b.register_collective(rank, 0, OpKind::Bcast);
        b.add_component(BcastSupport::new(
            format!("bcast.r{rank}"),
            comm.clone(),
            rank,
            w,
        ));
        if rank == root {
            b.add_component(CollectiveProducer::new(
                format!("prod.r{rank}"),
                w.app_in,
                dtype,
                count,
                width,
                move |i, out| data::write_element(dtype, i, out),
            ));
        } else {
            b.add_component(CollectiveConsumer::new(
                format!("cons.r{rank}"),
                w.app_out,
                dtype,
                count,
                probe.clone(),
                move |i, got| data::check_element(dtype, i, got),
            ));
        }
    }
    let mut fabric = b.finalize();
    let report = fabric.run(1_000_000 + count * members.len() as u64 * 8)?;
    let errors = probe.borrow().errors;
    Ok(CollectiveResult {
        cycles: report.cycles,
        time_us: params.cycles_to_us(report.cycles),
        errors,
    })
}

fn op_kind_of(kind: CollectiveKind) -> OpKind {
    match kind {
        CollectiveKind::Bcast => OpKind::Bcast,
        CollectiveKind::Scatter => OpKind::Scatter,
        CollectiveKind::Gather => OpKind::Gather,
        CollectiveKind::Reduce => OpKind::Reduce,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> FabricParams {
        FabricParams::default()
    }

    #[test]
    fn p2p_adjacent_ranks() {
        let topo = Topology::bus(4);
        let r = p2p_stream(&topo, 0, 1, 10_000, Datatype::Float, &params()).unwrap();
        assert_eq!(r.errors, 0);
        assert_eq!(r.hops, 1);
        // 10k floats = 1429 packets at <= 0.52 packets/cycle.
        assert!(r.payload_gbit_s > 20.0, "bw {}", r.payload_gbit_s);
        assert!(r.payload_gbit_s <= 35.0 + 1e-9);
    }

    #[test]
    fn p2p_multihop_same_bandwidth() {
        // Large enough that the per-hop pipeline ramp (~1.5k cycles over 7
        // hops) is amortized, as in the paper's Fig. 9 at large sizes.
        let topo = Topology::bus(8);
        let near = p2p_stream(&topo, 0, 1, 400_000, Datatype::Float, &params()).unwrap();
        let far = p2p_stream(&topo, 0, 7, 400_000, Datatype::Float, &params()).unwrap();
        assert_eq!(far.hops, 7);
        assert_eq!(near.errors + far.errors, 0);
        // Streaming hides distance: bandwidths within 5%.
        let ratio = far.payload_gbit_s / near.payload_gbit_s;
        assert!((0.95..=1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn disjoint_pairs_aggregate_bandwidth() {
        let topo = Topology::bus(8);
        let r = p2p_pairs(&topo, 50_000, Datatype::Float, &params()).unwrap();
        assert_eq!(r.errors, 0);
        assert_eq!(r.pairs, 4);
        // Four non-overlapping 1-hop flows: aggregate far exceeds a single
        // flow's ~33 Gbit/s payload line rate.
        assert!(r.aggregate_gbit_s > 40.0, "agg {}", r.aggregate_gbit_s);
    }

    #[test]
    fn pingpong_latency_grows_with_hops() {
        let topo = Topology::bus(8);
        let l1 = pingpong(&topo, 0, 1, 20, &params()).unwrap();
        let l4 = pingpong(&topo, 0, 4, 20, &params()).unwrap();
        let l7 = pingpong(&topo, 0, 7, 20, &params()).unwrap();
        assert!(l1.half_rtt_us < l4.half_rtt_us);
        assert!(l4.half_rtt_us < l7.half_rtt_us);
        // Roughly linear: the 7-hop latency is 5.5-8.5x the 1-hop latency.
        let ratio = l7.half_rtt_us / l1.half_rtt_us;
        assert!((5.0..9.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn injection_rate_matches_polling_model() {
        // R=1 with 5 CKS inputs: one accept every 5 cycles.
        let mut p = params();
        p.poll_persistence = 1;
        let r = injection_rate(&p, 5_000).unwrap();
        assert!(
            (4.8..5.4).contains(&r.cycles_per_packet),
            "got {}",
            r.cycles_per_packet
        );
        // R=8: (8 + 4) / 8 = 1.5 cycles.
        p.poll_persistence = 8;
        let r = injection_rate(&p, 5_000).unwrap();
        assert!(
            (1.4..1.8).contains(&r.cycles_per_packet),
            "got {}",
            r.cycles_per_packet
        );
    }

    #[test]
    fn bcast_linear_small() {
        let topo = Topology::torus2d(2, 2);
        let r = collective(
            &topo,
            CollectiveKind::Bcast,
            CollectiveScheme::Linear,
            0,
            100,
            Datatype::Float,
            ReduceOp::Add,
            &params(),
        )
        .unwrap();
        assert_eq!(r.errors, 0);
    }

    #[test]
    fn bcast_tree_small() {
        let topo = Topology::torus2d(2, 4);
        let r = collective(
            &topo,
            CollectiveKind::Bcast,
            CollectiveScheme::Tree,
            2,
            500,
            Datatype::Float,
            ReduceOp::Add,
            &params(),
        )
        .unwrap();
        assert_eq!(r.errors, 0);
    }

    #[test]
    fn scatter_gather_small() {
        let topo = Topology::torus2d(2, 2);
        for kind in [CollectiveKind::Scatter, CollectiveKind::Gather] {
            let r = collective(
                &topo,
                kind,
                CollectiveScheme::Linear,
                1,
                50,
                Datatype::Int,
                ReduceOp::Add,
                &params(),
            )
            .unwrap();
            assert_eq!(r.errors, 0, "{kind:?}");
        }
    }

    #[test]
    fn reduce_linear_small() {
        let topo = Topology::torus2d(2, 2);
        let mut p = params();
        p.reduce_credits = 32; // exercise multiple tiles
        let r = collective(
            &topo,
            CollectiveKind::Reduce,
            CollectiveScheme::Linear,
            0,
            100,
            Datatype::Float,
            ReduceOp::Add,
            &p,
        )
        .unwrap();
        assert_eq!(r.errors, 0);
    }

    #[test]
    fn packet_switching_interleaves_flows() {
        let p = params();
        let r = two_flow_interference(&p, 50_000, 70).unwrap();
        // The short message (10 packets) finishes within a few hundred
        // cycles of its start despite the concurrent 50k-element stream.
        assert!(
            r.short_completion_cycles < 2_500,
            "short flow at {} cycles",
            r.short_completion_cycles
        );
    }

    #[test]
    fn circuit_switching_starves_short_flow() {
        let mut p = params();
        p.circuit_hold_cycles = 16;
        let r = two_flow_interference(&p, 50_000, 70).unwrap();
        // The long stream monopolizes the CKS: the short message waits for
        // a large fraction of the long transmission.
        assert!(
            r.short_completion_cycles > 10_000,
            "short flow at {} cycles should be starved",
            r.short_completion_cycles
        );
    }

    #[test]
    fn bcast_on_sub_communicator() {
        let topo = Topology::torus2d(2, 4);
        let r = bcast_subset(&topo, vec![1, 3, 5, 7], 3, 500, &params()).unwrap();
        assert_eq!(r.errors, 0);
    }

    #[test]
    fn reduce_tree_small() {
        let topo = Topology::torus2d(2, 4);
        let mut p = params();
        p.reduce_credits = 16;
        let r = collective(
            &topo,
            CollectiveKind::Reduce,
            CollectiveScheme::Tree,
            0,
            64,
            Datatype::Float,
            ReduceOp::Add,
            &p,
        )
        .unwrap();
        assert_eq!(r.errors, 0);
    }
}
