//! Shared run statistics, collected by components during simulation.

use std::cell::RefCell;
use std::rc::Rc;

/// Statistics accumulated across a fabric run. Components hold an
/// `Rc<RefCell<FabricStats>>` (the simulation is single-threaded and
/// deterministic) and update their counters as they tick.
#[derive(Debug, Default, Clone)]
pub struct FabricStats {
    /// Packets delivered per directed link, indexed by link id.
    pub link_packets: Vec<u64>,
    /// Cycles each directed link spent with a packet in flight.
    pub link_busy_cycles: Vec<u64>,
    /// Packets forwarded by CKS modules (any direction).
    pub cks_forwards: u64,
    /// Packets forwarded by CKR modules (any direction).
    pub ckr_forwards: u64,
    /// Packets that arrived at a CKR for a port with no local binding —
    /// always a wiring bug; tests assert this stays zero.
    pub ckr_unroutable: u64,
    /// Packets that arrived at a CKS for a destination rank outside the
    /// routing table — always a wiring bug; tests assert this stays zero.
    pub cks_unroutable: u64,
    /// Elements folded by Reduce support kernels.
    pub reduce_folds: u64,
}

/// Shared handle to run statistics.
pub type StatsHandle = Rc<RefCell<FabricStats>>;

/// Create a fresh stats handle with `num_links` directed-link slots.
pub fn new_stats(num_links: usize) -> StatsHandle {
    Rc::new(RefCell::new(FabricStats {
        link_packets: vec![0; num_links],
        link_busy_cycles: vec![0; num_links],
        ..FabricStats::default()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = new_stats(3);
        stats.borrow_mut().link_packets[1] += 5;
        stats.borrow_mut().cks_forwards += 2;
        assert_eq!(stats.borrow().link_packets, vec![0, 5, 0]);
        assert_eq!(stats.borrow().cks_forwards, 2);
    }
}
