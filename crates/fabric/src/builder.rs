//! Wiring a complete multi-FPGA fabric.
//!
//! The builder consumes exactly what the real system consumes (Fig. 8): the
//! cluster [`Topology`], the [`RoutingPlan`] produced by the route generator,
//! and the [`ClusterDesign`] produced by the code generator. It instantiates,
//! per rank, one CKS/CKR pair per connected QSFP port with the full §4.3
//! interconnect (app FIFOs, paired CKS↔CKR FIFOs, all-to-all CKS→CKS and
//! CKR→CKR FIFOs), and one directed [`QsfpLink`] per cable direction.
//!
//! Application and support-kernel components are registered against ports
//! before [`FabricBuilder::finalize`]; the builder hands back the FIFO ids
//! they need.

use std::collections::HashMap;

use smi_codegen::{ClusterDesign, OpKind};
use smi_topology::{NextHop, RoutingPlan, Topology};

use crate::ckr::{CkrKernel, CkrTarget};
use crate::cks::{CksKernel, CksTarget};
use crate::engine::{Component, Engine, SimError, SimReport};
use crate::fifo::FifoId;
use crate::link::QsfpLink;
use crate::memory::{DramPool, DramPoolComponent, DramPoolHandle};
use crate::params::FabricParams;
use crate::stats::{new_stats, StatsHandle};

/// FIFO endpoints handed to a collective support kernel.
#[derive(Debug, Clone, Copy)]
pub struct SupportWiring {
    /// Support kernel → CKS (packets leaving this rank).
    pub to_cks: FifoId,
    /// CKR → support kernel (packets arriving on this port).
    pub from_ckr: FifoId,
    /// Application → support kernel (local element stream, framed).
    pub app_in: FifoId,
    /// Support kernel → application (local element stream, framed).
    pub app_out: FifoId,
}

/// Per-rank wiring state during construction.
struct RankWiring {
    /// pair index -> qsfp id.
    ck_qsfps: Vec<usize>,
    /// qsfp id -> pair index.
    pair_of_qsfp: Vec<Option<usize>>,
    /// Per pair: FIFOs from app/support endpoints into the CKS.
    cks_app_inputs: Vec<Vec<FifoId>>,
    /// Per pair: CKS -> paired CKR (local delivery).
    cks_to_ckr: Vec<FifoId>,
    /// Per pair: CKR -> paired CKS (transit forwarding).
    ckr_to_cks: Vec<FifoId>,
    /// [from pair][to pair] CKS -> CKS.
    cks_to_cks: Vec<Vec<Option<FifoId>>>,
    /// [from pair][to pair] CKR -> CKR.
    ckr_to_ckr: Vec<Vec<Option<FifoId>>>,
    /// Per pair: CKS -> link input.
    net_out: Vec<FifoId>,
    /// Per pair: link output -> CKR.
    net_in: Vec<FifoId>,
    /// port -> (owning pair, delivery FIFO into the app/support endpoint).
    port_delivery: HashMap<usize, (usize, FifoId)>,
}

/// Builder for a simulated SMI cluster.
pub struct FabricBuilder {
    topo: Topology,
    plan: RoutingPlan,
    design: ClusterDesign,
    params: FabricParams,
    engine: Engine,
    stats: StatsHandle,
    ranks: Vec<RankWiring>,
    /// Directed links: (link id, name, input fifo, output fifo).
    links: Vec<(usize, String, FifoId, FifoId)>,
    /// Components added by the user (apps, support kernels), in order.
    user_components: Vec<Box<dyn Component>>,
    dram_pools: Vec<(String, DramPoolHandle)>,
}

impl FabricBuilder {
    /// Start building a fabric. Panics if any rank of a multi-rank topology
    /// has no cables (the topology constructor normally guarantees
    /// connectivity).
    pub fn new(
        topo: Topology,
        plan: RoutingPlan,
        design: ClusterDesign,
        params: FabricParams,
    ) -> FabricBuilder {
        assert_eq!(plan.num_ranks(), topo.num_ranks(), "plan/topology mismatch");
        assert_eq!(
            design.per_rank.len(),
            topo.num_ranks(),
            "design/topology mismatch"
        );
        let mut engine = Engine::new();
        let n = topo.num_ranks();
        let depth = params.ck_fifo_depth;
        let mut ranks = Vec::with_capacity(n);
        for r in 0..n {
            let ck_qsfps: Vec<usize> = topo.neighbors(r).map(|(q, _)| q).collect();
            assert!(
                !ck_qsfps.is_empty() || n == 1,
                "rank {r} has no network ports"
            );
            assert_eq!(
                ck_qsfps,
                design.rank(r).ck_qsfps,
                "design CK pairs must match topology at rank {r}"
            );
            let pairs = ck_qsfps.len();
            let mut pair_of_qsfp = vec![None; topo.ports_per_rank()];
            for (i, &q) in ck_qsfps.iter().enumerate() {
                pair_of_qsfp[q] = Some(i);
            }
            let fifos = engine.fifos_mut();
            let cks_to_ckr = (0..pairs)
                .map(|p| fifos.add(format!("r{r}.cks{p}->ckr{p}"), depth))
                .collect();
            let ckr_to_cks = (0..pairs)
                .map(|p| fifos.add(format!("r{r}.ckr{p}->cks{p}"), depth))
                .collect();
            let mut cks_to_cks = vec![vec![None; pairs]; pairs];
            let mut ckr_to_ckr = vec![vec![None; pairs]; pairs];
            for i in 0..pairs {
                for j in 0..pairs {
                    if i != j {
                        cks_to_cks[i][j] = Some(fifos.add(format!("r{r}.cks{i}->cks{j}"), depth));
                        ckr_to_ckr[i][j] = Some(fifos.add(format!("r{r}.ckr{i}->ckr{j}"), depth));
                    }
                }
            }
            let net_out = (0..pairs)
                .map(|p| fifos.add(format!("r{r}.cks{p}->net"), depth))
                .collect();
            let net_in = (0..pairs)
                .map(|p| fifos.add(format!("r{r}.net->ckr{p}"), depth))
                .collect();
            ranks.push(RankWiring {
                ck_qsfps,
                pair_of_qsfp,
                cks_app_inputs: vec![Vec::new(); pairs],
                cks_to_ckr,
                ckr_to_cks,
                cks_to_cks,
                ckr_to_ckr,
                net_out,
                net_in,
                port_delivery: HashMap::new(),
            });
        }
        // Directed links, two per cable.
        let mut links = Vec::new();
        for c in topo.connections() {
            for (from, to) in [(c.a, c.b), (c.b, c.a)] {
                let id = links.len();
                let in_fifo =
                    ranks[from.rank].net_out[ranks[from.rank].pair_of_qsfp[from.qsfp].unwrap()];
                let out_fifo = ranks[to.rank].net_in[ranks[to.rank].pair_of_qsfp[to.qsfp].unwrap()];
                links.push((id, format!("link.{from}->{to}"), in_fifo, out_fifo));
            }
        }
        let stats = new_stats(links.len());
        FabricBuilder {
            topo,
            plan,
            design,
            params,
            engine,
            stats,
            ranks,
            links,
            user_components: Vec::new(),
            dram_pools: Vec::new(),
        }
    }

    /// The platform parameters.
    pub fn params(&self) -> &FabricParams {
        &self.params
    }

    /// Shared statistics handle (live during and after the run).
    pub fn stats(&self) -> StatsHandle {
        self.stats.clone()
    }

    /// Register a point-to-point *send* endpoint: returns the FIFO the
    /// application pushes framed packets into (drained by the bound CKS).
    pub fn register_send(&mut self, rank: usize, port: usize) -> FifoId {
        let binding = *self
            .design
            .rank(rank)
            .binding(port, OpKind::Send)
            .unwrap_or_else(|| panic!("no Send binding for rank {rank} port {port}"));
        let fifo = self
            .engine
            .fifos_mut()
            .add(format!("r{rank}.app_p{port}->cks"), binding.op.buffer_depth);
        self.ranks[rank].cks_app_inputs[binding.ck_pair].push(fifo);
        fifo
    }

    /// Register a point-to-point *receive* endpoint: returns the FIFO the
    /// bound CKR delivers port-`port` packets into.
    pub fn register_recv(&mut self, rank: usize, port: usize) -> FifoId {
        let binding = *self
            .design
            .rank(rank)
            .binding(port, OpKind::Recv)
            .unwrap_or_else(|| panic!("no Recv binding for rank {rank} port {port}"));
        let fifo = self
            .engine
            .fifos_mut()
            .add(format!("r{rank}.ckr->app_p{port}"), binding.op.buffer_depth);
        let prev = self.ranks[rank]
            .port_delivery
            .insert(port, (binding.ck_pair, fifo));
        assert!(
            prev.is_none(),
            "port {port} already delivers at rank {rank}"
        );
        fifo
    }

    /// Register a collective endpoint on `port`: allocates the four FIFOs a
    /// support kernel needs and wires its network side into the bound CK
    /// pair.
    pub fn register_collective(&mut self, rank: usize, port: usize, kind: OpKind) -> SupportWiring {
        assert!(
            kind.is_collective(),
            "use register_send/register_recv for p2p"
        );
        let binding = *self
            .design
            .rank(rank)
            .binding(port, kind)
            .unwrap_or_else(|| panic!("no {kind:?} binding for rank {rank} port {port}"));
        let depth = binding.op.buffer_depth;
        let fifos = self.engine.fifos_mut();
        let to_cks = fifos.add(format!("r{rank}.sup_p{port}->cks"), depth);
        let from_ckr = fifos.add(format!("r{rank}.ckr->sup_p{port}"), depth);
        let app_in = fifos.add(format!("r{rank}.app->sup_p{port}"), depth);
        let app_out = fifos.add(format!("r{rank}.sup_p{port}->app"), depth);
        self.ranks[rank].cks_app_inputs[binding.ck_pair].push(to_cks);
        let prev = self.ranks[rank]
            .port_delivery
            .insert(port, (binding.ck_pair, from_ckr));
        assert!(
            prev.is_none(),
            "port {port} already delivers at rank {rank}"
        );
        SupportWiring {
            to_cks,
            from_ckr,
            app_in,
            app_out,
        }
    }

    /// Create a DRAM bandwidth pool for a rank's memory system.
    pub fn add_dram_pool(
        &mut self,
        name: impl Into<String>,
        elems_per_cycle: f64,
    ) -> DramPoolHandle {
        let handle = DramPool::new_handle(elems_per_cycle);
        self.dram_pools.push((name.into(), handle.clone()));
        handle
    }

    /// Add an application or support-kernel component.
    pub fn add_component(&mut self, c: impl Component + 'static) {
        self.user_components.push(Box::new(c));
    }

    /// Allocate a bare FIFO (for custom app-to-app plumbing inside a rank,
    /// e.g. the GEMV→AXPY stream of GESUMMV).
    pub fn add_local_fifo(&mut self, name: impl Into<String>, depth: usize) -> FifoId {
        self.engine.fifos_mut().add(name, depth)
    }

    /// Instantiate all CK kernels and links and seal the fabric.
    pub fn finalize(mut self) -> Fabric {
        let n = self.topo.num_ranks();
        // DRAM pools refill first, then user components, then CKs, then links.
        for (name, pool) in std::mem::take(&mut self.dram_pools) {
            self.engine.add(DramPoolComponent::new(name, pool));
        }
        for c in std::mem::take(&mut self.user_components) {
            self.engine.add_boxed(c);
        }
        for r in 0..n {
            let w = &self.ranks[r];
            let pairs = w.ck_qsfps.len();
            let max_port = w.port_delivery.keys().copied().max();
            for p in 0..pairs {
                // --- CKS ---
                let mut inputs = w.cks_app_inputs[p].clone();
                inputs.push(w.ckr_to_cks[p]);
                for other in 0..pairs {
                    if other != p {
                        inputs.push(w.cks_to_cks[other][p].expect("inter-CKS fifo"));
                    }
                }
                let table: Vec<CksTarget> = (0..n)
                    .map(|dst| match self.plan.next_hop(r, dst) {
                        NextHop::Local => CksTarget::PairedCkr,
                        NextHop::Via(q) => {
                            let target_pair = w.pair_of_qsfp[q].expect("route uses connected port");
                            if target_pair == p {
                                CksTarget::Net
                            } else {
                                CksTarget::OtherCks(target_pair)
                            }
                        }
                    })
                    .collect();
                let to_other_cks: Vec<Option<FifoId>> = (0..pairs)
                    .map(|t| if t == p { None } else { w.cks_to_cks[p][t] })
                    .collect();
                self.engine.add(
                    CksKernel::new(
                        format!("r{r}.cks{p}"),
                        inputs,
                        table,
                        w.net_out[p],
                        w.cks_to_ckr[p],
                        to_other_cks,
                        self.params.poll_persistence,
                        self.stats.clone(),
                    )
                    .with_circuit_switching(self.params.circuit_hold_cycles),
                );
                // --- CKR ---
                let mut inputs = vec![w.net_in[p], w.cks_to_ckr[p]];
                for other in 0..pairs {
                    if other != p {
                        inputs.push(w.ckr_to_ckr[other][p].expect("inter-CKR fifo"));
                    }
                }
                let table: Vec<Option<CkrTarget>> = match max_port {
                    None => Vec::new(),
                    Some(mp) => (0..=mp)
                        .map(|port| {
                            w.port_delivery.get(&port).map(|&(owner, fifo)| {
                                if owner == p {
                                    CkrTarget::App(fifo)
                                } else {
                                    CkrTarget::OtherCkr(owner)
                                }
                            })
                        })
                        .collect(),
                };
                let to_other_ckr: Vec<Option<FifoId>> = (0..pairs)
                    .map(|t| if t == p { None } else { w.ckr_to_ckr[p][t] })
                    .collect();
                self.engine.add(CkrKernel::new(
                    format!("r{r}.ckr{p}"),
                    r,
                    inputs,
                    table,
                    w.ckr_to_cks[p],
                    to_other_ckr,
                    self.params.poll_persistence,
                    self.stats.clone(),
                ));
            }
        }
        let rate = self.params.link_packets_per_cycle();
        let latency = self.params.link_latency_cycles;
        for (id, name, input, output) in std::mem::take(&mut self.links) {
            self.engine.add(QsfpLink::new(
                name,
                id,
                input,
                output,
                rate,
                latency,
                self.stats.clone(),
            ));
        }
        Fabric {
            engine: self.engine,
            stats: self.stats,
            params: self.params,
        }
    }
}

/// A sealed, runnable fabric.
pub struct Fabric {
    engine: Engine,
    stats: StatsHandle,
    params: FabricParams,
}

impl Fabric {
    /// Run to completion (all terminal components done).
    pub fn run(&mut self, max_cycles: u64) -> Result<SimReport, SimError> {
        self.engine.run(max_cycles)
    }

    /// The shared statistics handle.
    pub fn stats(&self) -> StatsHandle {
        self.stats.clone()
    }

    /// The platform parameters.
    pub fn params(&self) -> &FabricParams {
        &self.params
    }

    /// Engine access for inspection.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smi_codegen::{ClusterDesign, OpSpec, ProgramMeta};
    use smi_topology::{RoutingPlan, Topology};
    use smi_wire::Datatype;

    /// CKS table derivation sanity on a bus: rank 1's CKS for port to rank 3
    /// must point at the eastern link.
    #[test]
    fn builder_wires_bus_without_panic() {
        let topo = Topology::bus(4);
        let plan = RoutingPlan::compute(&topo).unwrap();
        let meta = ProgramMeta::new()
            .with(OpSpec::send(0, Datatype::Int))
            .with(OpSpec::recv(1, Datatype::Int));
        let design = ClusterDesign::spmd(&meta, &topo).unwrap();
        let mut b = FabricBuilder::new(topo, plan, design, FabricParams::default());
        let _s = b.register_send(0, 0);
        let _r = b.register_recv(3, 1);
        let fabric = b.finalize();
        // 4 ranks: ranks 0,3 have 1 pair; ranks 1,2 have 2 pairs => 6 CKS +
        // 6 CKR + 6 directed links = 18 components.
        assert_eq!(fabric.engine().num_components(), 18);
    }

    #[test]
    #[should_panic(expected = "no Send binding")]
    fn unregistered_port_panics() {
        let topo = Topology::bus(2);
        let plan = RoutingPlan::compute(&topo).unwrap();
        let design = ClusterDesign::spmd(&ProgramMeta::new(), &topo).unwrap();
        let mut b = FabricBuilder::new(topo, plan, design, FabricParams::default());
        b.register_send(0, 0);
    }

    #[test]
    #[should_panic(expected = "already delivers")]
    fn duplicate_recv_port_panics() {
        let topo = Topology::bus(2);
        let plan = RoutingPlan::compute(&topo).unwrap();
        let meta = ProgramMeta::new()
            .with(OpSpec::recv(0, Datatype::Int))
            .with(OpSpec::send(0, Datatype::Int));
        let design = ClusterDesign::spmd(&meta, &topo).unwrap();
        let mut b = FabricBuilder::new(topo, plan, design, FabricParams::default());
        b.register_recv(0, 0);
        b.register_recv(0, 0);
    }
}
