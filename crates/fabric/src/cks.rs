//! The send-side communication kernel (CKS).
//!
//! "We refer to these entities as send communication kernels (CKS), if they
//! send data to the network […] After the kernel receives a packet, it
//! consults an internal routing table to determine where to forward the
//! packet." (§4.2–4.3)
//!
//! A CKS serves one QSFP port. Its inputs are the FIFOs from local
//! application/support endpoints assigned to it, from its paired CKR
//! (packets in transit through this rank), and from the other local CKS
//! modules. Its routing table is indexed by destination rank: local → paired
//! CKR; remote via its own QSFP → the network; remote via another QSFP → that
//! port's CKS.

use crate::engine::{Component, Status};
use crate::fifo::{FifoId, FifoPool};
use crate::stats::StatsHandle;

/// The configurable polling scheme shared by CKS and CKR (§4.3): keep
/// reading from the same input for up to `R` packets while data is
/// available, then move on; an empty poll costs the cycle.
#[derive(Debug, Clone)]
pub struct Arbiter {
    current: usize,
    streak: u32,
    persistence: u32,
}

impl Arbiter {
    /// New arbiter with polling persistence `R >= 1`.
    pub fn new(persistence: u32) -> Arbiter {
        assert!(persistence >= 1, "polling persistence must be >= 1");
        Arbiter {
            current: 0,
            streak: 0,
            persistence,
        }
    }

    /// The input to examine this cycle.
    #[inline]
    pub fn current(&self) -> usize {
        self.current
    }

    /// Record a successfully forwarded packet; rotates to the next input
    /// after `R` consecutive reads.
    #[inline]
    pub fn hit(&mut self, num_inputs: usize) {
        self.streak += 1;
        if self.streak >= self.persistence {
            self.advance(num_inputs);
        }
    }

    /// Move to the next input (empty poll or persistence exhausted).
    #[inline]
    pub fn advance(&mut self, num_inputs: usize) {
        self.streak = 0;
        if num_inputs > 0 {
            self.current = (self.current + 1) % num_inputs;
        }
    }
}

/// Routing decision of a CKS for one destination rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CksTarget {
    /// Destination is the local rank: hand to the paired CKR.
    PairedCkr,
    /// Destination is reached through this CKS's own QSFP port.
    Net,
    /// Destination is reached through another QSFP port: hand to that CKS
    /// (index into the rank's CK-pair list).
    OtherCks(usize),
}

/// One send communication kernel.
pub struct CksKernel {
    name: String,
    inputs: Vec<FifoId>,
    /// Routing table indexed by destination rank.
    table: Vec<CksTarget>,
    to_net: FifoId,
    to_paired_ckr: FifoId,
    /// Output FIFOs to the other CKS modules, indexed by CK-pair.
    to_other_cks: Vec<Option<FifoId>>,
    arb: Arbiter,
    /// Circuit-switching emulation (§4.2 ablation): after forwarding from an
    /// input, an empty poll *holds* the circuit for up to this many cycles
    /// instead of rotating — "it will continue to accept data only from that
    /// application until all the content of the message has been
    /// transferred". 0 = the reference packet-switching behaviour.
    hold_on_empty: u32,
    holding: u32,
    locked: bool,
    stats: StatsHandle,
}

impl CksKernel {
    /// Construct a CKS.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<FifoId>,
        table: Vec<CksTarget>,
        to_net: FifoId,
        to_paired_ckr: FifoId,
        to_other_cks: Vec<Option<FifoId>>,
        persistence: u32,
        stats: StatsHandle,
    ) -> Self {
        CksKernel {
            name: name.into(),
            inputs,
            table,
            to_net,
            to_paired_ckr,
            to_other_cks,
            arb: Arbiter::new(persistence),
            hold_on_empty: 0,
            holding: 0,
            locked: false,
            stats,
        }
    }

    /// Switch this CKS to circuit-switching emulation: hold the granted
    /// input through up to `hold_cycles` empty polls (see the field docs).
    pub fn with_circuit_switching(mut self, hold_cycles: u32) -> Self {
        self.hold_on_empty = hold_cycles;
        self
    }

    fn target_fifo(&self, dst: usize) -> Option<FifoId> {
        match self.table.get(dst) {
            Some(CksTarget::PairedCkr) => Some(self.to_paired_ckr),
            Some(CksTarget::Net) => Some(self.to_net),
            Some(CksTarget::OtherCks(pair)) => {
                Some(self.to_other_cks[*pair].expect("other-CKS fifo wired"))
            }
            None => None,
        }
    }
}

impl Component for CksKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64, fifos: &mut FifoPool) -> Status {
        if self.inputs.is_empty() {
            return Status::Idle;
        }
        let input = self.inputs[self.arb.current()];
        if !fifos.can_pop(input) {
            // Circuit emulation: hold the grant through message bubbles.
            if self.locked && self.holding < self.hold_on_empty {
                self.holding += 1;
                return Status::Idle;
            }
            // Empty poll: costs this cycle, move on (R=1 behaviour of the
            // paper: "polls a different connection every cycle").
            self.locked = false;
            self.holding = 0;
            self.arb.advance(self.inputs.len());
            return Status::Idle;
        }
        let dst = fifos.peek(input).expect("non-empty").header.dst as usize;
        match self.target_fifo(dst) {
            Some(target) if fifos.can_push(target) => {
                let pkt = fifos.pop(input);
                fifos.push(target, pkt);
                self.stats.borrow_mut().cks_forwards += 1;
                if self.hold_on_empty > 0 {
                    // Circuit mode: the grant persists while data flows.
                    self.locked = true;
                    self.holding = 0;
                } else {
                    self.arb.hit(self.inputs.len());
                }
                Status::Active
            }
            Some(_) => {
                // Head-of-line stall: target full. Stay on this input to
                // preserve per-flow FIFO order.
                Status::Idle
            }
            None => {
                // Destination outside the routing table: count and drop.
                fifos.pop(input);
                self.stats.borrow_mut().cks_unroutable += 1;
                self.arb.hit(self.inputs.len());
                Status::Active
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arbiter_rotates_on_empty_poll() {
        let mut a = Arbiter::new(8);
        assert_eq!(a.current(), 0);
        a.advance(3);
        assert_eq!(a.current(), 1);
        a.advance(3);
        a.advance(3);
        assert_eq!(a.current(), 0);
    }

    #[test]
    fn arbiter_persistence() {
        let mut a = Arbiter::new(2);
        a.hit(4); // streak 1: stays
        assert_eq!(a.current(), 0);
        a.hit(4); // streak 2 == R: rotate
        assert_eq!(a.current(), 1);
    }

    #[test]
    fn arbiter_r1_rotates_every_hit() {
        let mut a = Arbiter::new(1);
        a.hit(4);
        assert_eq!(a.current(), 1);
        a.hit(4);
        assert_eq!(a.current(), 2);
    }

    #[test]
    #[should_panic(expected = "persistence")]
    fn arbiter_rejects_zero_r() {
        Arbiter::new(0);
    }
}
