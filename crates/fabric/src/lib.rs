//! # smi-fabric — a cycle-level simulator of multi-FPGA SMI systems
//!
//! This crate is the hardware substitute for the paper's experimental
//! platform (8× Stratix 10 boards with 4×40 Gbit/s QSFP links): a
//! deterministic, cycle-driven simulation of the SMI reference
//! implementation's data path, faithful to the mechanics the paper's
//! performance results derive from:
//!
//! * **Clocked components & FIFOs** — every hardware entity (application
//!   pipeline, CKS/CKR communication kernel, collective support kernel, QSFP
//!   link, DRAM bank) is a [`Component`] ticked once per kernel clock cycle;
//!   components exchange 32-byte [`NetworkPacket`]s through backpressured
//!   [`fifo::HwFifo`]s (1 push + 1 pop per cycle, 1-cycle visibility, finite
//!   capacity = the paper's compile-time buffer-size parameter).
//! * **CKS/CKR kernels** (§4.2–4.3) — one pair per connected QSFP port, with
//!   the exact table-driven forwarding logic of the paper and its
//!   configurable polling scheme (read up to `R` packets from one input
//!   before moving on).
//! * **QSFP links** — rate-limited (40 Gbit/s line rate at 32 B/packet) and
//!   pipeline-delayed (SerDes + cable ≈ 0.7 µs), lossless and backpressured,
//!   as guaranteed by the board's BSP.
//! * **Collective support kernels** (§4.4) — linear-scheme Bcast/Scatter/
//!   Gather with ready-synchronization, Reduce with credit-based flow
//!   control (`C` credits), plus the tree-based variants the paper proposes
//!   as an extension.
//! * **DRAM banks** — token-bucket bandwidth models (19.2 GB/s per bank)
//!   for the memory-bound applications.
//!
//! The [`builder::FabricBuilder`] wires a whole cluster from the same inputs
//! the real system uses: a [`smi_topology::Topology`], a deadlock-free
//! [`smi_topology::RoutingPlan`], and the generated
//! [`smi_codegen::ClusterDesign`]. [`bench_api`] offers one-call experiment
//! runners used by the figure/table reproduction binaries:
//!
//! ```
//! use smi_fabric::bench_api::p2p_stream;
//! use smi_fabric::params::FabricParams;
//! use smi_topology::Topology;
//! use smi_wire::Datatype;
//!
//! // Stream 10k floats across 7 hops of the Fig. 9 bus and measure.
//! let topo = Topology::bus(8);
//! let r = p2p_stream(&topo, 0, 7, 10_000, Datatype::Float, &FabricParams::default()).unwrap();
//! assert_eq!(r.errors, 0);          // payload verified end to end
//! assert_eq!(r.hops, 7);
//! assert!(r.payload_gbit_s > 20.0); // approaching the 35 Gbit/s payload peak
//! ```

#![warn(missing_docs)]

pub mod apps;
pub mod bench_api;
pub mod builder;
pub mod ckr;
pub mod cks;
pub mod collective;
pub mod engine;
pub mod fifo;
pub mod link;
pub mod memory;
pub mod params;
pub mod stats;

pub use builder::FabricBuilder;
pub use engine::{Component, Engine, SimError, SimReport, Status};
pub use fifo::{FifoId, FifoPool};
pub use params::FabricParams;
pub use smi_wire::NetworkPacket;
pub use stats::FabricStats;
