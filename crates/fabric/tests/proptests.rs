//! Property tests of the cycle-level fabric: on random connected
//! topologies, any point-to-point stream must be delivered completely, in
//! order, bit-exact — regardless of FIFO depths, polling persistence, and
//! message size.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smi_fabric::bench_api::{collective, p2p_stream, CollectiveKind, CollectiveScheme};
use smi_fabric::params::FabricParams;
use smi_topology::Topology;
use smi_wire::{Datatype, ReduceOp};

fn random_topo(n: usize, extra: usize, seed: u64) -> Topology {
    let mut rng = SmallRng::seed_from_u64(seed);
    Topology::random_connected(n, 4, extra, &mut rng).expect("random topology")
}

fn arb_dtype() -> impl Strategy<Value = Datatype> {
    prop::sample::select(Datatype::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (src, dst) stream on any random topology arrives complete and
    /// uncorrupted, for every datatype and odd message sizes.
    #[test]
    fn p2p_delivers_on_random_topologies(
        n in 2usize..10,
        extra in 0usize..4,
        seed in any::<u64>(),
        src_pick in any::<u64>(),
        dst_pick in any::<u64>(),
        count in 1u64..3_000,
        dtype in arb_dtype(),
        depth in 2usize..32,
        r in 1u32..16,
    ) {
        let topo = random_topo(n, extra, seed);
        let src = (src_pick % n as u64) as usize;
        let dst = (dst_pick % n as u64) as usize;
        prop_assume!(src != dst);
        let params = FabricParams {
            ck_fifo_depth: depth,
            poll_persistence: r,
            ..Default::default()
        };
        let res = p2p_stream(&topo, src, dst, count, dtype, &params).unwrap();
        prop_assert_eq!(res.errors, 0, "corruption {}->{} on {:?}", src, dst, dtype);
    }

    /// Collectives verify on random torus shapes, roots and counts, for both
    /// schemes where applicable.
    #[test]
    fn collectives_verify_on_random_shapes(
        rx in 1usize..3,
        ry in 2usize..5,
        root_pick in any::<u64>(),
        count in 1u64..500,
        kind_pick in 0usize..4,
        credits in 4usize..64,
    ) {
        let topo = Topology::torus2d(rx, ry);
        let n = topo.num_ranks();
        prop_assume!(n >= 2);
        let root = (root_pick % n as u64) as usize;
        let params = FabricParams {
            reduce_credits: credits,
            ..Default::default()
        };
        let kind = [
            CollectiveKind::Bcast,
            CollectiveKind::Scatter,
            CollectiveKind::Gather,
            CollectiveKind::Reduce,
        ][kind_pick];
        let res = collective(
            &topo,
            kind,
            CollectiveScheme::Linear,
            root,
            count,
            Datatype::Float,
            ReduceOp::Add,
            &params,
        )
        .unwrap();
        prop_assert_eq!(res.errors, 0, "{:?} root {} count {}", kind, root, count);
    }

    /// Tree collectives agree with linear on correctness for random roots.
    #[test]
    fn tree_collectives_verify(
        root in 0usize..8,
        count in 1u64..400,
        credits in 8usize..64,
        reduce in any::<bool>(),
    ) {
        let topo = Topology::torus2d(2, 4);
        let params = FabricParams {
            reduce_credits: credits,
            ..Default::default()
        };
        let kind = if reduce { CollectiveKind::Reduce } else { CollectiveKind::Bcast };
        let res = collective(
            &topo,
            kind,
            CollectiveScheme::Tree,
            root,
            count,
            Datatype::Float,
            ReduceOp::Add,
            &params,
        )
        .unwrap();
        prop_assert_eq!(res.errors, 0, "{:?} tree root {}", kind, root);
    }
}
