//! Criterion benchmarks of the thread-based SMI runtime: end-to-end message
//! throughput including transport threads, routing and framing.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use smi::env::SmiCtx;
use smi::prelude::*;

fn p2p_run(topo: &Topology, n: u64, protocol: Protocol) -> u64 {
    let metas = vec![
        ProgramMeta::new().with(OpSpec::send(0, Datatype::Int)),
        ProgramMeta::new().with(OpSpec::recv(0, Datatype::Int)),
    ];
    type Prog = Box<dyn FnOnce(SmiCtx) -> u64 + Send>;
    let programs: Vec<Prog> = vec![
        Box::new(move |ctx| {
            let mut ch = ctx
                .open_send_channel_with::<i32>(n, 1, 0, protocol)
                .unwrap();
            for i in 0..n as i32 {
                ch.push(&i).unwrap();
            }
            0
        }),
        Box::new(move |ctx| {
            let mut ch = ctx
                .open_recv_channel_with::<i32>(n, 0, 0, protocol)
                .unwrap();
            let mut acc = 0u64;
            for _ in 0..n {
                acc = acc.wrapping_add(ch.pop().unwrap() as u64);
            }
            acc
        }),
    ];
    run_mpmd(topo, metas, programs, RuntimeParams::default())
        .unwrap()
        .results[1]
}

fn bench_runtime_p2p(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_p2p");
    g.sample_size(10);
    let topo = Topology::bus(2);
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("eager_100k_i32", |b| {
        b.iter(|| black_box(p2p_run(&topo, N, Protocol::Eager)))
    });
    g.bench_function("credit_100k_i32_w256", |b| {
        b.iter(|| black_box(p2p_run(&topo, N, Protocol::Credit { window: 256 })))
    });
    g.finish();
}

criterion_group!(benches, bench_runtime_p2p);
criterion_main!(benches);
