//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! polling persistence `R`, endpoint buffer depth (asynchronicity degree),
//! linear vs tree collectives, eager vs credit point-to-point.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use smi_fabric::bench_api::{
    collective, injection_rate, p2p_stream, two_flow_interference, CollectiveKind, CollectiveScheme,
};
use smi_fabric::params::FabricParams;
use smi_topology::Topology;
use smi_wire::{Datatype, ReduceOp};

/// The Tab. 4 ablation as a bench: simulated injection period vs R.
fn ablate_polling_r(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_polling_r");
    g.sample_size(10);
    for r in [1u32, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            let params = FabricParams {
                poll_persistence: r,
                ..Default::default()
            };
            b.iter(|| black_box(injection_rate(&params, 2_000).unwrap()))
        });
    }
    g.finish();
}

/// Buffer-depth ablation: simulated transfer time of a fixed stream vs the
/// CK FIFO depth (the compile-time buffer-size optimization parameter of
/// §4.2).
fn ablate_buffer_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_buffer_depth");
    g.sample_size(10);
    let topo = Topology::bus(4);
    for depth in [2usize, 8, 32, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let params = FabricParams {
                ck_fifo_depth: depth,
                ..Default::default()
            };
            b.iter(|| {
                let r = p2p_stream(&topo, 0, 3, 20_000, Datatype::Float, &params).unwrap();
                black_box(r.cycles)
            })
        });
    }
    g.finish();
}

/// Linear vs binomial-tree collective schemes (the paper's named extension).
fn ablate_tree_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_tree_collectives");
    g.sample_size(10);
    let params = FabricParams::default();
    let topo = Topology::torus2d(2, 4);
    for (name, kind, scheme) in [
        (
            "bcast_linear",
            CollectiveKind::Bcast,
            CollectiveScheme::Linear,
        ),
        ("bcast_tree", CollectiveKind::Bcast, CollectiveScheme::Tree),
        (
            "reduce_linear",
            CollectiveKind::Reduce,
            CollectiveScheme::Linear,
        ),
        (
            "reduce_tree",
            CollectiveKind::Reduce,
            CollectiveScheme::Tree,
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = collective(
                    &topo,
                    kind,
                    scheme,
                    0,
                    8192,
                    Datatype::Float,
                    ReduceOp::Add,
                    &params,
                )
                .unwrap();
                assert_eq!(r.errors, 0);
                black_box(r.cycles)
            })
        });
    }
    g.finish();
}

/// Packet vs circuit switching (§4.2): simulated completion cycle of a short
/// message contending with a long stream on one CKS.
fn ablate_switching(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_switching");
    g.sample_size(10);
    for (name, hold) in [("packet", 0u32), ("circuit", 16)] {
        g.bench_function(name, |b| {
            let params = FabricParams {
                circuit_hold_cycles: hold,
                ..Default::default()
            };
            b.iter(|| {
                let r = two_flow_interference(&params, 20_000, 70).unwrap();
                black_box(r.short_completion_cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_polling_r,
    ablate_buffer_depth,
    ablate_tree_collectives,
    ablate_switching
);
criterion_main!(benches);
