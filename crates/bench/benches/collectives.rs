//! Criterion benchmarks of the fabric collective support kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use smi_fabric::bench_api::{collective, CollectiveKind, CollectiveScheme};
use smi_fabric::params::FabricParams;
use smi_topology::Topology;
use smi_wire::{Datatype, ReduceOp};

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric_collectives");
    g.sample_size(10);
    let params = FabricParams::default();
    let topo = Topology::torus2d(2, 4);
    for (name, kind) in [
        ("bcast", CollectiveKind::Bcast),
        ("scatter", CollectiveKind::Scatter),
        ("gather", CollectiveKind::Gather),
        ("reduce", CollectiveKind::Reduce),
    ] {
        g.bench_function(format!("{name}_4k_f32_8ranks"), |b| {
            b.iter(|| {
                let r = collective(
                    black_box(&topo),
                    kind,
                    CollectiveScheme::Linear,
                    0,
                    4096,
                    Datatype::Float,
                    ReduceOp::Add,
                    &params,
                )
                .unwrap();
                assert_eq!(r.errors, 0);
                black_box(r.cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
