//! Criterion benchmarks of the cycle-level simulator itself: how many
//! simulated kernel cycles per wall-clock second the engine sustains on the
//! bandwidth microbenchmark (the cost of every figure reproduction).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use smi_fabric::bench_api::{p2p_stream, pingpong};
use smi_fabric::params::FabricParams;
use smi_topology::Topology;
use smi_wire::Datatype;

fn bench_p2p_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric_sim");
    g.sample_size(10);
    let params = FabricParams::default();
    let topo = Topology::bus(8);
    // 10k floats ≈ 2.8k simulated cycles of streaming.
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("p2p_stream_10k_f32_1hop", |b| {
        b.iter(|| {
            let r = p2p_stream(black_box(&topo), 0, 1, 10_000, Datatype::Float, &params).unwrap();
            assert_eq!(r.errors, 0);
            black_box(r.cycles)
        })
    });
    g.bench_function("p2p_stream_10k_f32_7hops", |b| {
        b.iter(|| {
            let r = p2p_stream(black_box(&topo), 0, 7, 10_000, Datatype::Float, &params).unwrap();
            black_box(r.cycles)
        })
    });
    g.bench_function("pingpong_20iters_7hops", |b| {
        b.iter(|| {
            let r = pingpong(black_box(&topo), 0, 7, 20, &params).unwrap();
            black_box(r.cycles)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_p2p_sim);
criterion_main!(benches);
