//! Criterion microbenchmarks of the wire layer: header codec and message
//! framing throughput (the per-element cost inside SMI_Push/SMI_Pop).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use smi_wire::{Datatype, Deframer, Framer, Header, NetworkPacket, PacketOp};

fn bench_header(c: &mut Criterion) {
    let mut g = c.benchmark_group("header");
    g.throughput(Throughput::Elements(1));
    let h = Header::new(3, 250, 17, PacketOp::Send, 7).unwrap();
    g.bench_function("pack", |b| b.iter(|| black_box(h).pack()));
    let bytes = h.pack();
    g.bench_function("unpack", |b| {
        b.iter(|| Header::unpack(black_box(&bytes)).unwrap())
    });
    g.finish();
}

fn bench_packet(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet");
    let mut p = NetworkPacket::new(0, 1, 0, PacketOp::Send);
    for i in 0..7 {
        p.write_elem(i, &(i as f32));
    }
    p.header.count = 7;
    g.throughput(Throughput::Bytes(32));
    g.bench_function("pack32B", |b| b.iter(|| black_box(&p).pack()));
    let bytes = p.pack();
    g.bench_function("unpack32B", |b| {
        b.iter(|| NetworkPacket::unpack(black_box(&bytes)).unwrap())
    });
    g.finish();
}

fn bench_framing(c: &mut Criterion) {
    let mut g = c.benchmark_group("framing");
    const N: usize = 7 * 1024;
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("frame_f32_stream", |b| {
        b.iter(|| {
            let mut fr = Framer::new(Datatype::Float, 0, 1, 0, PacketOp::Send);
            let mut packets = 0u32;
            for i in 0..N {
                if fr.push(&(i as f32)).is_some() {
                    packets += 1;
                }
            }
            black_box(packets)
        })
    });
    // Pre-frame for the deframe benchmark.
    let mut fr = Framer::new(Datatype::Float, 0, 1, 0, PacketOp::Send);
    let mut pkts = Vec::new();
    for i in 0..N {
        if let Some(p) = fr.push(&(i as f32)) {
            pkts.push(p);
        }
    }
    g.bench_function("deframe_f32_stream", |b| {
        b.iter(|| {
            let mut df = Deframer::new(Datatype::Float);
            let mut sum = 0.0f32;
            for p in &pkts {
                df.refill(*p);
                while let Some(v) = df.pop::<f32>() {
                    sum += v;
                }
            }
            black_box(sum)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_header, bench_packet, bench_framing);
criterion_main!(benches);
