//! Criterion benchmarks of route generation — the offline cost the paper's
//! route generator pays when the cluster topology changes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smi_topology::deadlock::is_deadlock_free;
use smi_topology::{RoutingPlan, Topology};

fn bench_route_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("routegen");
    for (name, topo) in [
        ("bus8", Topology::bus(8)),
        ("torus2x4", Topology::torus2d(2, 4)),
        ("torus8x8", Topology::torus2d(8, 8)),
        ("random64", {
            let mut rng = SmallRng::seed_from_u64(1);
            Topology::random_connected(64, 4, 32, &mut rng).unwrap()
        }),
    ] {
        g.bench_function(format!("updown/{name}"), |b| {
            b.iter(|| RoutingPlan::compute(black_box(&topo)).unwrap())
        });
        let plan = RoutingPlan::compute(&topo).unwrap();
        g.bench_function(format!("deadlock_check/{name}"), |b| {
            b.iter(|| is_deadlock_free(black_box(&topo), black_box(&plan)))
        });
    }
    g.finish();
}

fn bench_json(c: &mut Criterion) {
    let topo = Topology::torus2d(8, 8);
    let json = topo.to_json();
    c.bench_function("topology/json_roundtrip", |b| {
        b.iter(|| Topology::from_json(black_box(&json)).unwrap())
    });
}

criterion_group!(benches, bench_route_generation, bench_json);
criterion_main!(benches);
