//! Criterion benchmarks of the application reproductions (simulation cost,
//! small problem sizes).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use smi::prelude::RuntimeParams;
use smi_apps::gesummv::timed::{run_distributed_timed, GesummvTimedParams};
use smi_apps::gesummv::{functional, GesummvProblem};
use smi_apps::stencil::timed::{run_timed, StencilTimedConfig};
use smi_apps::stencil::RankGrid;
use smi_fabric::params::FabricParams;

fn bench_gesummv(c: &mut Criterion) {
    let mut g = c.benchmark_group("gesummv");
    g.sample_size(10);
    g.bench_function("timed_dist_512", |b| {
        let params = GesummvTimedParams::default();
        b.iter(|| black_box(run_distributed_timed(512, 512, &params).unwrap()))
    });
    g.bench_function("functional_dist_96", |b| {
        let p = GesummvProblem::random(96, 96, 1);
        b.iter(|| black_box(functional::run_distributed(&p, RuntimeParams::default()).unwrap()))
    });
    g.finish();
}

fn bench_stencil(c: &mut Criterion) {
    let mut g = c.benchmark_group("stencil");
    g.sample_size(10);
    g.bench_function("timed_512_4ranks_2iters", |b| {
        let cfg = StencilTimedConfig {
            fabric: FabricParams::default(),
            nx: 512,
            ny: 512,
            iters: 2,
            grid: RankGrid { rx: 2, ry: 2 },
            banks: 4,
            iter_overhead_cycles: 0,
        };
        b.iter(|| black_box(run_timed(&cfg).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_gesummv, bench_stencil);
criterion_main!(benches);
