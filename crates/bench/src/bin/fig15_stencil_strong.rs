//! Reproduction of **Fig. 15** — stencil strong scaling on a 4096² grid,
//! 32 timesteps: 1 bank/1 FPGA, 4 banks/1 FPGA, 1 bank/4 FPGAs,
//! 4 banks/4 FPGAs, 4 banks/8 FPGAs.

use smi_apps::stencil::timed::{run_timed, StencilTimedConfig};
use smi_apps::stencil::RankGrid;
use smi_bench::{banner, Effort};
use smi_fabric::params::FabricParams;

fn main() {
    banner(
        "Fig. 15: stencil strong scaling (4096² grid)",
        "§5.4.2, Fig. 15",
    );
    let effort = Effort::from_args();
    let iters = match effort {
        Effort::Quick => 4,
        Effort::Normal => 8,
        Effort::Full => 32, // the paper's 32 timesteps
    };
    let configs = [
        ("1 bank/1 FPGA", RankGrid { rx: 1, ry: 1 }, 1usize, 1.0f64),
        ("4 banks/1 FPGA", RankGrid { rx: 1, ry: 1 }, 4, 3.5),
        ("1 bank/4 FPGAs", RankGrid { rx: 2, ry: 2 }, 1, 3.5),
        ("4 banks/4 FPGAs", RankGrid { rx: 2, ry: 2 }, 4, 12.3),
        ("4 banks/8 FPGAs", RankGrid { rx: 2, ry: 4 }, 4, 23.1),
    ];
    println!("grid 4096 x 4096, {iters} timesteps (paper: 32)");
    println!(
        "{:<18}{:>12}{:>12}{:>12}{:>14}",
        "config", "time(ms)", "speedup", "paper", "paper time"
    );
    let mut base_cycles = None;
    let paper_times = ["254 ms", "72 ms", "72 ms", "20 ms", "11 ms"];
    for ((name, grid, banks, paper_speedup), paper_time) in configs.into_iter().zip(paper_times) {
        let cfg = StencilTimedConfig {
            fabric: FabricParams::default(),
            nx: 4096,
            ny: 4096,
            iters,
            grid,
            banks,
            iter_overhead_cycles: StencilTimedConfig::DEFAULT_ITER_OVERHEAD,
        };
        let r = run_timed(&cfg).expect("stencil run");
        let base = *base_cycles.get_or_insert(r.cycles);
        let speedup = base as f64 / r.cycles as f64;
        println!(
            "{:<18}{:>12.1}{:>11.1}x{:>11.1}x{:>14}",
            name, r.time_ms, speedup, paper_speedup, paper_time
        );
    }
    println!();
    println!("(paper times are for 32 timesteps; scale measured times by 32/{iters}.)");
}
