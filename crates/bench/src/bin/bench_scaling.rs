//! Scaling benchmark of the functional message plane: p2p throughput vs.
//! rank count and executor worker count on the work-stealing runtime,
//! emitted as `BENCH_scaling.json` so every CI run leaves a perf data point.
//!
//! Series:
//!
//! * `task_bulk` — disjoint neighbour pairs (`2i → 2i+1`) on a bus, rank
//!   programs as cooperative tasks (`run_mpmd_tasks`) using the bulk
//!   `try_push_slice`/`try_pop_slice` APIs, default executor settings.
//! * `task_bulk_sweep` / `task_bulk_static` — the same workload swept over
//!   executor worker counts (1 → available_parallelism, powers of two) at
//!   8/64/256 ranks, with work stealing on (`sweep`) and off (`static`,
//!   the old fixed round-robin sharding). The 1-worker pair is the
//!   no-regression bar: stealing bookkeeping must not tax the uncontended
//!   case.
//! * `skewed_steal` / `skewed_static` — a deliberately skewed cluster: one
//!   hot pair streams a large payload while every other pair sits gated
//!   (Pending) until the hot transfer completes, then moves a token
//!   payload. Static sharding polls the cold machines every sweep and
//!   strands whole queues behind the placement; the stealing executor
//!   evicts cold machines to the shared cold set and lets idle workers
//!   take the hot work, so it must win here.
//! * `threads_per_element` / `threads_bulk` — the paper-style blocking API
//!   on thread-per-rank execution at 8 ranks, isolating the batching win
//!   from the executor win.
//!
//! A timing-plane reference (`fabric_pairs`, cycle-accurate model) is
//! recorded for 8 ranks for cross-plane context.
//!
//! Usage: `bench_scaling [--quick|--smoke | --full] [--out PATH]`
//! (`--smoke` is an alias for `--quick`.)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use smi::env::SmiCtx;
use smi::prelude::*;
use smi_fabric::bench_api::p2p_pairs;
use smi_fabric::params::FabricParams;

/// One measured point.
struct Point {
    series: &'static str,
    ranks: usize,
    workers: usize,
    elems_per_pair: u64,
    seconds: f64,
    melem_per_s: f64,
    threads_spawned: usize,
    steals: u64,
    parks: u64,
}

struct BulkSend {
    ch: Option<SendChannel<i32>>,
    data: Vec<i32>,
    off: usize,
}

impl RankTask for BulkSend {
    fn poll(&mut self) -> Result<TaskStatus, SmiError> {
        let ch = self.ch.as_mut().expect("open while pending");
        let before = self.off;
        if self.off < self.data.len() {
            self.off += ch.try_push_slice(&self.data[self.off..])?;
        }
        if self.off == self.data.len() && ch.try_flush()? && ch.fully_sent() {
            self.ch = None; // close: return the endpoint resource
            return Ok(TaskStatus::Done);
        }
        Ok(if self.off > before {
            TaskStatus::Progress
        } else {
            TaskStatus::Pending
        })
    }
}

struct BulkRecv {
    ch: Option<RecvChannel<i32>>,
    buf: Vec<i32>,
    filled: usize,
}

impl RankTask for BulkRecv {
    fn poll(&mut self) -> Result<TaskStatus, SmiError> {
        let ch = self.ch.as_mut().expect("open while pending");
        let moved = ch.try_pop_slice(&mut self.buf[self.filled..])?;
        self.filled += moved;
        if self.filled == self.buf.len() {
            // Verify the stream before declaring success.
            for (i, &v) in self.buf.iter().enumerate() {
                if v != i as i32 {
                    return Err(SmiError::ProtocolViolation {
                        detail: format!("element {i} corrupted: {v}"),
                    });
                }
            }
            self.ch = None;
            return Ok(TaskStatus::Done);
        }
        Ok(if moved > 0 {
            TaskStatus::Progress
        } else {
            TaskStatus::Pending
        })
    }
}

/// Holds the inner task in `Pending` until the gate opens; used to model
/// ranks whose work only arrives late in the program.
struct GatedTask {
    inner: Box<dyn RankTask>,
    gate: Arc<AtomicBool>,
}

impl RankTask for GatedTask {
    fn poll(&mut self) -> Result<TaskStatus, SmiError> {
        if !self.gate.load(Ordering::Acquire) {
            return Ok(TaskStatus::Pending);
        }
        self.inner.poll()
    }
}

/// Opens the gate when the inner task completes.
struct GateOpener {
    inner: Box<dyn RankTask>,
    gate: Arc<AtomicBool>,
}

impl RankTask for GateOpener {
    fn poll(&mut self) -> Result<TaskStatus, SmiError> {
        let status = self.inner.poll()?;
        if status == TaskStatus::Done {
            self.gate.store(true, Ordering::Release);
        }
        Ok(status)
    }
}

fn pair_metas(ranks: usize) -> Vec<ProgramMeta> {
    (0..ranks)
        .map(|r| {
            if r % 2 == 0 {
                ProgramMeta::new().with(OpSpec::send(0, Datatype::Int))
            } else {
                ProgramMeta::new().with(OpSpec::recv(0, Datatype::Int))
            }
        })
        .collect()
}

fn send_factory(n: u64, dst: usize) -> TaskFactory {
    Box::new(move |ctx: SmiCtx| {
        let ch = ctx.open_send_channel::<i32>(n, dst, 0)?;
        Ok(Box::new(BulkSend {
            ch: Some(ch),
            data: (0..n as i32).collect(),
            off: 0,
        }) as Box<dyn RankTask>)
    })
}

fn recv_factory(n: u64, src: usize) -> TaskFactory {
    Box::new(move |ctx: SmiCtx| {
        let ch = ctx.open_recv_channel::<i32>(n, src, 0)?;
        Ok(Box::new(BulkRecv {
            ch: Some(ch),
            buf: vec![0; n as usize],
            filled: 0,
        }) as Box<dyn RankTask>)
    })
}

/// Aggregate executor counters out of a run report.
fn exec_counters(report: &RunReport<Result<(), SmiError>>) -> (u64, u64) {
    let steals = report.worker_stats.iter().map(|s| s.steals).sum();
    let parks = report.worker_stats.iter().map(|s| s.parks).sum();
    (steals, parks)
}

/// Cooperative-task bulk run over disjoint pairs with explicit executor
/// settings: returns (seconds, threads_spawned, steals, parks).
fn run_task_bulk(ranks: usize, n: u64, params: RuntimeParams) -> (f64, usize, u64, u64) {
    let topo = Topology::bus(ranks);
    let factories: Vec<TaskFactory> = (0..ranks)
        .map(|r| {
            if r % 2 == 0 {
                send_factory(n, r + 1)
            } else {
                recv_factory(n, r - 1)
            }
        })
        .collect();
    let t = Instant::now();
    let report = run_mpmd_tasks(&topo, pair_metas(ranks), factories, params).expect("launch");
    let dt = t.elapsed().as_secs_f64();
    for (r, res) in report.results.iter().enumerate() {
        if let Err(e) = res {
            panic!("rank {r} failed: {e}");
        }
    }
    assert_eq!(report.transport.2, 0, "unroutable packets");
    let (steals, parks) = exec_counters(&report);
    (dt, report.threads_spawned, steals, parks)
}

/// Skewed-cluster run: pair (0,1) streams `hot_n` elements; every other
/// pair is gated behind the hot transfer and then moves `cold_n` elements.
/// Returns (seconds, threads_spawned, steals, parks).
fn run_skewed(
    ranks: usize,
    hot_n: u64,
    cold_n: u64,
    params: RuntimeParams,
) -> (f64, usize, u64, u64) {
    assert!(ranks >= 4 && ranks.is_multiple_of(2));
    let topo = Topology::bus(ranks);
    let gate = Arc::new(AtomicBool::new(false));
    let factories: Vec<TaskFactory> = (0..ranks)
        .map(|r| {
            let gate = gate.clone();
            let f: TaskFactory = match r {
                0 => send_factory(hot_n, 1),
                1 => Box::new(move |ctx: SmiCtx| {
                    let inner = recv_factory(hot_n, 0)(ctx)?;
                    Ok(Box::new(GateOpener { inner, gate }) as Box<dyn RankTask>)
                }),
                _ => {
                    let inner_f = if r % 2 == 0 {
                        send_factory(cold_n, r + 1)
                    } else {
                        recv_factory(cold_n, r - 1)
                    };
                    Box::new(move |ctx: SmiCtx| {
                        let inner = inner_f(ctx)?;
                        Ok(Box::new(GatedTask { inner, gate }) as Box<dyn RankTask>)
                    })
                }
            };
            f
        })
        .collect();
    let t = Instant::now();
    let report = run_mpmd_tasks(&topo, pair_metas(ranks), factories, params).expect("launch");
    let dt = t.elapsed().as_secs_f64();
    for (r, res) in report.results.iter().enumerate() {
        if let Err(e) = res {
            panic!("rank {r} failed: {e}");
        }
    }
    let (steals, parks) = exec_counters(&report);
    (dt, report.threads_spawned, steals, parks)
}

/// Thread-per-rank run; `bulk` picks slice vs per-element channel calls.
fn run_threads(ranks: usize, n: u64, bulk: bool) -> (f64, usize) {
    let topo = Topology::bus(ranks);
    type Prog = Box<dyn FnOnce(SmiCtx) -> bool + Send>;
    let programs: Vec<Prog> = (0..ranks)
        .map(|r| {
            let b: Prog = if r % 2 == 0 {
                Box::new(move |ctx| {
                    let mut ch = ctx.open_send_channel::<i32>(n, r + 1, 0).unwrap();
                    if bulk {
                        let data: Vec<i32> = (0..n as i32).collect();
                        ch.push_slice(&data).unwrap();
                    } else {
                        for i in 0..n as i32 {
                            ch.push(&i).unwrap();
                        }
                    }
                    true
                })
            } else {
                Box::new(move |ctx| {
                    let mut ch = ctx.open_recv_channel::<i32>(n, r - 1, 0).unwrap();
                    if bulk {
                        let mut buf = vec![0i32; n as usize];
                        ch.pop_slice(&mut buf).unwrap();
                        buf.iter().enumerate().all(|(i, &v)| v == i as i32)
                    } else {
                        (0..n as i32).all(|i| ch.pop().unwrap() == i)
                    }
                })
            };
            b
        })
        .collect();
    let t = Instant::now();
    let report =
        run_mpmd(&topo, pair_metas(ranks), programs, RuntimeParams::default()).expect("launch");
    let dt = t.elapsed().as_secs_f64();
    assert!(report.results.iter().all(|&ok| ok), "data corrupted");
    (dt, report.threads_spawned)
}

/// Executor params for a sweep point.
fn sweep_params(workers: usize, stealing: bool) -> RuntimeParams {
    RuntimeParams {
        transport_workers: workers,
        work_stealing: stealing,
        ..Default::default()
    }
}

/// Best-of-N measurement: the first run of a large shape pays allocator
/// warmup and page-fault costs that have nothing to do with the scheduler
/// under test, so compared series (sweep, skewed) take the fastest of two
/// runs.
fn best_of<F: FnMut() -> (f64, usize, u64, u64)>(reps: usize, mut f: F) -> (f64, usize, u64, u64) {
    let mut best = f();
    for _ in 1..reps {
        let r = f();
        if r.0 < best.0 {
            best = r;
        }
    }
    best
}

fn print_point(p: &Point) {
    println!(
        "{:<18} {:>6} {:>7} {:>12} {:>10.3} {:>9.2} {:>8} {:>8} {:>7}",
        p.series,
        p.ranks,
        p.workers,
        p.elems_per_pair,
        p.seconds,
        p.melem_per_s,
        p.threads_spawned,
        p.steals,
        p.parks
    );
}

fn main() {
    let mut effort = smi_bench::Effort::from_args();
    let mut out_path = String::from("BENCH_scaling.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--smoke" => effort = smi_bench::Effort::Quick,
            _ => {}
        }
    }
    smi_bench::banner(
        "bench_scaling — functional-plane p2p throughput vs. ranks and workers",
        "runtime scaling (work-stealing executor + burst batching)",
    );

    let ap = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let (rank_sweep, total_elems): (Vec<usize>, u64) = match effort {
        smi_bench::Effort::Quick => (vec![2, 8, 32, 64], 512 << 10),
        smi_bench::Effort::Normal => (vec![2, 4, 8, 16, 32, 64], 8 << 20),
        smi_bench::Effort::Full => (vec![2, 4, 8, 16, 32, 64, 128], 32 << 20),
    };

    let mut points: Vec<Point> = Vec::new();
    println!(
        "{:<18} {:>6} {:>7} {:>12} {:>10} {:>9} {:>8} {:>8} {:>7}",
        "series",
        "ranks",
        "workers",
        "elems/pair",
        "seconds",
        "Melem/s",
        "threads",
        "steals",
        "parks"
    );

    // --- default-executor rank sweep (historical series) ---
    for &ranks in &rank_sweep {
        let pairs = (ranks / 2) as u64;
        let n = (total_elems / pairs).max(1024);
        let (dt, threads, steals, parks) = run_task_bulk(ranks, n, RuntimeParams::default());
        let p = Point {
            series: "task_bulk",
            ranks,
            workers: RuntimeParams::default().resolved_workers(),
            elems_per_pair: n,
            seconds: dt,
            melem_per_s: (n * pairs) as f64 / dt / 1e6,
            threads_spawned: threads,
            steals,
            parks,
        };
        print_point(&p);
        points.push(p);
    }

    // --- worker-count sweep at fixed rank counts, stealing on vs off ---
    // Worker counts: 1, powers of two up to available_parallelism, and
    // available_parallelism itself.
    let mut worker_sweep: Vec<usize> = vec![1];
    let mut w = 2;
    while w < ap {
        worker_sweep.push(w);
        w *= 2;
    }
    if ap > 1 {
        worker_sweep.push(ap);
    }
    let sweep_elems = match effort {
        smi_bench::Effort::Quick => 256u64 << 10,
        smi_bench::Effort::Normal => 4 << 20,
        smi_bench::Effort::Full => 16 << 20,
    };
    for &ranks in &[8usize, 64, 256] {
        let pairs = (ranks / 2) as u64;
        let n = (sweep_elems / pairs).max(1024);
        for &workers in &worker_sweep {
            for (series, stealing) in [("task_bulk_sweep", true), ("task_bulk_static", false)] {
                let (dt, threads, steals, parks) = best_of(2, || {
                    run_task_bulk(ranks, n, sweep_params(workers, stealing))
                });
                let p = Point {
                    series,
                    ranks,
                    workers,
                    elems_per_pair: n,
                    seconds: dt,
                    melem_per_s: (n * pairs) as f64 / dt / 1e6,
                    threads_spawned: threads,
                    steals,
                    parks,
                };
                print_point(&p);
                points.push(p);
            }
        }
    }

    // --- skewed cluster: one hot pair among many gated cold pairs ---
    // Static sharding keeps polling every gated machine in the hot
    // worker's shard; the stealing executor parks them in the cold set
    // (and with >1 worker migrates the hot pair to an idle worker).
    let skew_ranks = 64usize;
    let (hot_n, cold_n) = match effort {
        smi_bench::Effort::Quick => (256u64 << 10, 1024u64),
        smi_bench::Effort::Normal => (2 << 20, 4096),
        smi_bench::Effort::Full => (8 << 20, 4096),
    };
    let total = hot_n + (skew_ranks as u64 / 2 - 1) * cold_n;
    let mut skew_workers: Vec<usize> = vec![1];
    if ap > 1 {
        skew_workers.push(2.min(ap));
    }
    for &workers in &skew_workers {
        for (series, stealing) in [("skewed_steal", true), ("skewed_static", false)] {
            let (dt, threads, steals, parks) = best_of(2, || {
                run_skewed(skew_ranks, hot_n, cold_n, sweep_params(workers, stealing))
            });
            let p = Point {
                series,
                ranks: skew_ranks,
                workers,
                elems_per_pair: hot_n,
                seconds: dt,
                melem_per_s: total as f64 / dt / 1e6,
                threads_spawned: threads,
                steals,
                parks,
            };
            print_point(&p);
            points.push(p);
        }
    }

    // --- blocking-plane reference at 8 ranks ---
    for (series, bulk) in [("threads_per_element", false), ("threads_bulk", true)] {
        let ranks = 8usize;
        let n = (total_elems / 4).max(1024);
        let (dt, threads) = run_threads(ranks, n, bulk);
        let p = Point {
            series,
            ranks,
            workers: RuntimeParams::default().resolved_workers(),
            elems_per_pair: n,
            seconds: dt,
            melem_per_s: (n * 4) as f64 / dt / 1e6,
            threads_spawned: threads,
            steals: 0,
            parks: 0,
        };
        print_point(&p);
        points.push(p);
    }

    // Timing-plane reference at 8 ranks (cycle-accurate model, not wall
    // clock): aggregate Gbit/s over 4 disjoint flows.
    let fabric_n = match effort {
        smi_bench::Effort::Quick => 50_000u64,
        _ => 400_000,
    };
    let fr = p2p_pairs(
        &Topology::bus(8),
        fabric_n,
        Datatype::Int,
        &FabricParams::default(),
    )
    .expect("fabric pairs");
    assert_eq!(fr.errors, 0);
    println!(
        "fabric_pairs (model)    8 {fabric_n:>12} {:>10.1}us {:>6.1} Gbit/s aggregate",
        fr.time_us, fr.aggregate_gbit_s
    );

    // Hand-rolled JSON: flat, stable, diff-friendly.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"benchmark\": \"bench_scaling\",\n  \"effort\": \"{:?}\",\n  \"available_parallelism\": {ap},\n",
        effort
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"series\": \"{}\", \"ranks\": {}, \"workers\": {}, \"elems_per_pair\": {}, \"seconds\": {:.6}, \"melem_per_s\": {:.3}, \"threads_spawned\": {}, \"steals\": {}, \"parks\": {}}}{}\n",
            p.series,
            p.ranks,
            p.workers,
            p.elems_per_pair,
            p.seconds,
            p.melem_per_s,
            p.threads_spawned,
            p.steals,
            p.parks,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"fabric_pairs_8rank\": {{\"elems_per_pair\": {}, \"time_us\": {:.3}, \"aggregate_gbit_s\": {:.3}}}\n",
        fabric_n, fr.time_us, fr.aggregate_gbit_s
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write JSON");
    println!("\nwrote {out_path}");
}
