//! Scaling benchmark of the functional message plane: p2p throughput vs.
//! rank count on the sharded batched runtime, emitted as
//! `BENCH_scaling.json` so every CI run leaves a perf data point.
//!
//! Three series:
//!
//! * `task_bulk` — disjoint neighbour pairs (`2i → 2i+1`) on a bus, rank
//!   programs as cooperative tasks (`run_mpmd_tasks`) using the bulk
//!   `try_push_slice`/`try_pop_slice` APIs. This is the configuration that
//!   scales past the OS thread budget: the whole cluster runs on the
//!   executor's worker pool.
//! * `threads_per_element` — the paper-style per-element `push`/`pop` API on
//!   thread-per-rank execution at 8 ranks (the pre-batching hot path).
//! * `threads_bulk` — `push_slice`/`pop_slice` on thread-per-rank execution
//!   at 8 ranks, isolating the batching win from the executor win.
//!
//! A timing-plane reference (`fabric_pairs`, cycle-accurate model) is
//! recorded for 8 ranks for cross-plane context.
//!
//! Usage: `bench_scaling [--quick|--smoke | --full] [--out PATH]`
//! (`--smoke` is an alias for `--quick`.)

use std::time::Instant;

use smi::env::SmiCtx;
use smi::prelude::*;
use smi_fabric::bench_api::p2p_pairs;
use smi_fabric::params::FabricParams;

/// One measured point.
struct Point {
    series: &'static str,
    ranks: usize,
    elems_per_pair: u64,
    seconds: f64,
    melem_per_s: f64,
    threads_spawned: usize,
}

struct BulkSend {
    ch: Option<SendChannel<i32>>,
    data: Vec<i32>,
    off: usize,
}

impl RankTask for BulkSend {
    fn poll(&mut self) -> Result<TaskStatus, SmiError> {
        let ch = self.ch.as_mut().expect("open while pending");
        let before = self.off;
        if self.off < self.data.len() {
            self.off += ch.try_push_slice(&self.data[self.off..])?;
        }
        if self.off == self.data.len() && ch.try_flush()? && ch.fully_sent() {
            self.ch = None; // close: return the endpoint resource
            return Ok(TaskStatus::Done);
        }
        Ok(if self.off > before {
            TaskStatus::Progress
        } else {
            TaskStatus::Pending
        })
    }
}

struct BulkRecv {
    ch: Option<RecvChannel<i32>>,
    buf: Vec<i32>,
    filled: usize,
}

impl RankTask for BulkRecv {
    fn poll(&mut self) -> Result<TaskStatus, SmiError> {
        let ch = self.ch.as_mut().expect("open while pending");
        let moved = ch.try_pop_slice(&mut self.buf[self.filled..])?;
        self.filled += moved;
        if self.filled == self.buf.len() {
            // Verify the stream before declaring success.
            for (i, &v) in self.buf.iter().enumerate() {
                if v != i as i32 {
                    return Err(SmiError::ProtocolViolation {
                        detail: format!("element {i} corrupted: {v}"),
                    });
                }
            }
            self.ch = None;
            return Ok(TaskStatus::Done);
        }
        Ok(if moved > 0 {
            TaskStatus::Progress
        } else {
            TaskStatus::Pending
        })
    }
}

fn pair_metas(ranks: usize) -> Vec<ProgramMeta> {
    (0..ranks)
        .map(|r| {
            if r % 2 == 0 {
                ProgramMeta::new().with(OpSpec::send(0, Datatype::Int))
            } else {
                ProgramMeta::new().with(OpSpec::recv(0, Datatype::Int))
            }
        })
        .collect()
}

/// Cooperative-task bulk run: returns (seconds, threads_spawned).
fn run_task_bulk(ranks: usize, n: u64) -> (f64, usize) {
    let topo = Topology::bus(ranks);
    let factories: Vec<TaskFactory> = (0..ranks)
        .map(|r| {
            let f: TaskFactory = if r % 2 == 0 {
                Box::new(move |ctx: SmiCtx| {
                    let ch = ctx.open_send_channel::<i32>(n, r + 1, 0)?;
                    Ok(Box::new(BulkSend {
                        ch: Some(ch),
                        data: (0..n as i32).collect(),
                        off: 0,
                    }) as Box<dyn RankTask>)
                })
            } else {
                Box::new(move |ctx: SmiCtx| {
                    let ch = ctx.open_recv_channel::<i32>(n, r - 1, 0)?;
                    Ok(Box::new(BulkRecv {
                        ch: Some(ch),
                        buf: vec![0; n as usize],
                        filled: 0,
                    }) as Box<dyn RankTask>)
                })
            };
            f
        })
        .collect();
    let t = Instant::now();
    let report = run_mpmd_tasks(
        &topo,
        pair_metas(ranks),
        factories,
        RuntimeParams::default(),
    )
    .expect("launch");
    let dt = t.elapsed().as_secs_f64();
    for (r, res) in report.results.iter().enumerate() {
        if let Err(e) = res {
            panic!("rank {r} failed: {e}");
        }
    }
    assert_eq!(report.transport.2, 0, "unroutable packets");
    (dt, report.threads_spawned)
}

/// Thread-per-rank run; `bulk` picks slice vs per-element channel calls.
fn run_threads(ranks: usize, n: u64, bulk: bool) -> (f64, usize) {
    let topo = Topology::bus(ranks);
    type Prog = Box<dyn FnOnce(SmiCtx) -> bool + Send>;
    let programs: Vec<Prog> = (0..ranks)
        .map(|r| {
            let b: Prog = if r % 2 == 0 {
                Box::new(move |ctx| {
                    let mut ch = ctx.open_send_channel::<i32>(n, r + 1, 0).unwrap();
                    if bulk {
                        let data: Vec<i32> = (0..n as i32).collect();
                        ch.push_slice(&data).unwrap();
                    } else {
                        for i in 0..n as i32 {
                            ch.push(&i).unwrap();
                        }
                    }
                    true
                })
            } else {
                Box::new(move |ctx| {
                    let mut ch = ctx.open_recv_channel::<i32>(n, r - 1, 0).unwrap();
                    if bulk {
                        let mut buf = vec![0i32; n as usize];
                        ch.pop_slice(&mut buf).unwrap();
                        buf.iter().enumerate().all(|(i, &v)| v == i as i32)
                    } else {
                        (0..n as i32).all(|i| ch.pop().unwrap() == i)
                    }
                })
            };
            b
        })
        .collect();
    let t = Instant::now();
    let report =
        run_mpmd(&topo, pair_metas(ranks), programs, RuntimeParams::default()).expect("launch");
    let dt = t.elapsed().as_secs_f64();
    assert!(report.results.iter().all(|&ok| ok), "data corrupted");
    (dt, report.threads_spawned)
}

fn main() {
    let mut effort = smi_bench::Effort::from_args();
    let mut out_path = String::from("BENCH_scaling.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--smoke" => effort = smi_bench::Effort::Quick,
            _ => {}
        }
    }
    smi_bench::banner(
        "bench_scaling — functional-plane p2p throughput vs. rank count",
        "runtime scaling (sharded executor + burst batching)",
    );

    let (rank_sweep, total_elems): (Vec<usize>, u64) = match effort {
        smi_bench::Effort::Quick => (vec![2, 8, 32, 64], 512 << 10),
        smi_bench::Effort::Normal => (vec![2, 4, 8, 16, 32, 64], 8 << 20),
        smi_bench::Effort::Full => (vec![2, 4, 8, 16, 32, 64, 128], 32 << 20),
    };

    let mut points: Vec<Point> = Vec::new();
    println!(
        "{:<22} {:>6} {:>12} {:>10} {:>9} {:>8}",
        "series", "ranks", "elems/pair", "seconds", "Melem/s", "threads"
    );

    for &ranks in &rank_sweep {
        let pairs = (ranks / 2) as u64;
        let n = (total_elems / pairs).max(1024);
        let (dt, threads) = run_task_bulk(ranks, n);
        let melem = (n * pairs) as f64 / dt / 1e6;
        println!(
            "{:<22} {:>6} {:>12} {:>10.3} {:>9.2} {:>8}",
            "task_bulk", ranks, n, dt, melem, threads
        );
        points.push(Point {
            series: "task_bulk",
            ranks,
            elems_per_pair: n,
            seconds: dt,
            melem_per_s: melem,
            threads_spawned: threads,
        });
    }

    for (series, bulk) in [("threads_per_element", false), ("threads_bulk", true)] {
        let ranks = 8usize;
        let n = (total_elems / 4).max(1024);
        let (dt, threads) = run_threads(ranks, n, bulk);
        let melem = (n * 4) as f64 / dt / 1e6;
        println!(
            "{:<22} {:>6} {:>12} {:>10.3} {:>9.2} {:>8}",
            series, ranks, n, dt, melem, threads
        );
        points.push(Point {
            series,
            ranks,
            elems_per_pair: n,
            seconds: dt,
            melem_per_s: melem,
            threads_spawned: threads,
        });
    }

    // Timing-plane reference at 8 ranks (cycle-accurate model, not wall
    // clock): aggregate Gbit/s over 4 disjoint flows.
    let fabric_n = match effort {
        smi_bench::Effort::Quick => 50_000u64,
        _ => 400_000,
    };
    let fr = p2p_pairs(
        &Topology::bus(8),
        fabric_n,
        Datatype::Int,
        &FabricParams::default(),
    )
    .expect("fabric pairs");
    assert_eq!(fr.errors, 0);
    println!(
        "fabric_pairs (model)        8 {fabric_n:>12} {:>10.1}us {:>6.1} Gbit/s aggregate",
        fr.time_us, fr.aggregate_gbit_s
    );

    // Hand-rolled JSON: flat, stable, diff-friendly.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"benchmark\": \"bench_scaling\",\n  \"effort\": \"{:?}\",\n  \"available_parallelism\": {},\n",
        effort,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"series\": \"{}\", \"ranks\": {}, \"elems_per_pair\": {}, \"seconds\": {:.6}, \"melem_per_s\": {:.3}, \"threads_spawned\": {}}}{}\n",
            p.series,
            p.ranks,
            p.elems_per_pair,
            p.seconds,
            p.melem_per_s,
            p.threads_spawned,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"fabric_pairs_8rank\": {{\"elems_per_pair\": {}, \"time_us\": {:.3}, \"aggregate_gbit_s\": {:.3}}}\n",
        fabric_n, fr.time_us, fr.aggregate_gbit_s
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write JSON");
    println!("\nwrote {out_path}");
}
