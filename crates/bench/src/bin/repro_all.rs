//! Run every table/figure reproduction in sequence (the one-shot artifact
//! generator). Forwards `--quick`/`--full` to each binary.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "tab01_resources",
        "tab02_collectives",
        "tab03_latency",
        "tab04_injection",
        "fig09_bandwidth",
        "fig10_bcast",
        "fig11_reduce",
        "fig13_gesummv",
        "fig15_stencil_strong",
        "fig16_stencil_weak",
    ];
    let self_path = std::env::current_exe().expect("own path");
    let dir = self_path.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
        println!();
    }
    println!("all reproductions complete.");
}
