//! Collective throughput benchmark of the functional message plane:
//! broadcast and reduce rates vs. rank count and routing scheme, emitted as
//! `BENCH_collectives.json` so every CI run leaves a perf data point for
//! the poll-mode collective runtime.
//!
//! Series (element rates are root-stream rates: `count / seconds`):
//!
//! * `bcast_thread_elem` / `reduce_thread_elem` — the paper-style
//!   per-element `bcast`/`reduce` API on thread-per-rank execution at
//!   8 ranks (the pre-bulk hot path).
//! * `bcast_thread_slice` / `reduce_thread_slice` — the bulk
//!   `bcast_slice`/`reduce_slice` APIs on thread-per-rank execution at
//!   8 ranks, isolating the bulk-framing win.
//! * `bcast_task_linear` / `bcast_task_tree` and `reduce_task_linear` /
//!   `reduce_task_tree` — poll-mode opens (`open_*_channel_poll`) and
//!   `try_*` driving on the cooperative task plane, swept over rank counts
//!   under both [`CollectiveScheme`]s. The linear series is the paper's
//!   root-serialized shape (falls off past ~16 ranks on a bus); the tree
//!   series routes through binomial interior forwarders/combiners, keeping
//!   the root at `O(log N)` streams.
//!
//! Usage: `bench_collectives [--quick|--smoke | --full] [--out PATH]`
//! (`--smoke` is an alias for `--quick`.)

use std::time::Instant;

use smi::env::SmiCtx;
use smi::prelude::*;

/// One measured point.
struct Point {
    series: String,
    ranks: usize,
    elems: u64,
    seconds: f64,
    melem_per_s: f64,
    threads_spawned: usize,
}

fn coll_metas(ranks: usize) -> Vec<ProgramMeta> {
    (0..ranks)
        .map(|_| {
            ProgramMeta::new()
                .with(OpSpec::bcast(0, Datatype::Int))
                .with(OpSpec::reduce(1, Datatype::Int, ReduceOp::Add))
        })
        .collect()
}

/// Thread-per-rank bcast+reduce; `bulk` picks slice vs per-element calls.
/// Returns (bcast_seconds, reduce_seconds, threads_spawned).
fn run_threads(ranks: usize, n: u64, bulk: bool) -> (f64, f64, usize) {
    let topo = Topology::bus(ranks);
    type Prog = Box<dyn FnOnce(SmiCtx) -> (f64, f64) + Send>;
    let programs: Vec<Prog> = (0..ranks)
        .map(|_| {
            let b: Prog = Box::new(move |ctx| {
                let comm = ctx.world();
                let root = 0usize;
                let is_root = comm.rank() == root;
                // --- bcast ---
                let mut buf: Vec<i32> = if is_root {
                    (0..n as i32).collect()
                } else {
                    vec![0; n as usize]
                };
                let mut ch = ctx.open_bcast_channel::<i32>(n, 0, root, &comm).unwrap();
                let t = Instant::now();
                if bulk {
                    ch.bcast_slice(&mut buf).unwrap();
                } else {
                    for v in buf.iter_mut() {
                        ch.bcast(v).unwrap();
                    }
                }
                let bcast_dt = t.elapsed().as_secs_f64();
                drop(ch);
                if !is_root {
                    assert!(
                        buf.iter().enumerate().all(|(i, &v)| v == i as i32),
                        "bcast data corrupted"
                    );
                }
                // --- reduce ---
                let contrib: Vec<i32> = (0..n as i32).collect();
                let mut out = vec![0i32; n as usize];
                let mut ch = ctx.open_reduce_channel::<i32>(n, 1, root, &comm).unwrap();
                let t = Instant::now();
                if bulk {
                    ch.reduce_slice(&contrib, &mut out).unwrap();
                } else {
                    for (i, v) in contrib.iter().enumerate() {
                        if let Some(x) = ch.reduce(v).unwrap() {
                            out[i] = x;
                        }
                    }
                }
                let reduce_dt = t.elapsed().as_secs_f64();
                drop(ch);
                if is_root {
                    let k = ranks as i32;
                    assert!(
                        out.iter().enumerate().all(|(i, &v)| v == k * i as i32),
                        "reduce data corrupted"
                    );
                }
                (bcast_dt, reduce_dt)
            });
            b
        })
        .collect();
    let report =
        run_mpmd(&topo, coll_metas(ranks), programs, RuntimeParams::default()).expect("launch");
    // The collective completes when its slowest member completes.
    let bcast = report
        .results
        .iter()
        .map(|&(b, _)| b)
        .fold(0.0f64, f64::max);
    let reduce = report
        .results
        .iter()
        .map(|&(_, r)| r)
        .fold(0.0f64, f64::max);
    (bcast, reduce, report.threads_spawned)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Bcast,
    Reduce,
}

enum Phase {
    Bcast {
        ch: BcastChannel<i32>,
        buf: Vec<i32>,
        off: usize,
    },
    Reduce {
        ch: ReduceChannel<i32>,
        contrib: Vec<i32>,
        out: Vec<i32>,
        off: usize,
    },
    Finished,
}

struct CollTask {
    ctx: SmiCtx,
    phase: Phase,
}

impl RankTask for CollTask {
    fn poll(&mut self) -> Result<TaskStatus, SmiError> {
        let phase = std::mem::replace(&mut self.phase, Phase::Finished);
        match phase {
            Phase::Bcast {
                mut ch,
                mut buf,
                mut off,
            } => {
                let moved = ch.try_bcast_slice(&mut buf[off..])?;
                off += moved;
                if off == buf.len() && ch.poll()? == CollectiveState::Done {
                    drop(ch);
                    if self.ctx.rank() != 0 && !buf.iter().enumerate().all(|(i, &v)| v == i as i32)
                    {
                        return Err(SmiError::ProtocolViolation {
                            detail: "bcast data corrupted".into(),
                        });
                    }
                    self.phase = Phase::Finished;
                    return Ok(TaskStatus::Done);
                }
                self.phase = Phase::Bcast { ch, buf, off };
                Ok(if moved > 0 {
                    TaskStatus::Progress
                } else {
                    TaskStatus::Pending
                })
            }
            Phase::Reduce {
                mut ch,
                contrib,
                mut out,
                mut off,
            } => {
                let moved = ch.try_reduce_slice(&contrib[off..], &mut out[off..])?;
                off += moved;
                if off == contrib.len() && ch.poll()? == CollectiveState::Done {
                    drop(ch);
                    let k = self.ctx.num_ranks() as i32;
                    if self.ctx.rank() == 0
                        && !out.iter().enumerate().all(|(i, &v)| v == k * i as i32)
                    {
                        return Err(SmiError::ProtocolViolation {
                            detail: "reduce data corrupted".into(),
                        });
                    }
                    self.phase = Phase::Finished;
                    return Ok(TaskStatus::Done);
                }
                self.phase = Phase::Reduce {
                    ch,
                    contrib,
                    out,
                    off,
                };
                Ok(if moved > 0 {
                    TaskStatus::Progress
                } else {
                    TaskStatus::Pending
                })
            }
            Phase::Finished => Ok(TaskStatus::Done),
        }
    }
}

/// Cooperative-task run of one collective under one scheme; returns the
/// wall-clock of the whole run plus threads spawned.
fn run_tasks(ranks: usize, n: u64, which: Which, scheme: CollectiveScheme) -> (f64, usize) {
    let topo = Topology::bus(ranks);
    let params = RuntimeParams {
        collective_scheme: scheme,
        ..Default::default()
    };
    let factories: Vec<TaskFactory> = (0..ranks)
        .map(|r| {
            let f: TaskFactory = Box::new(move |ctx: SmiCtx| {
                let comm = ctx.world();
                let phase = match which {
                    Which::Bcast => {
                        let ch = ctx.open_bcast_channel_poll::<i32>(n, 0, 0, &comm)?;
                        let buf: Vec<i32> = if r == 0 {
                            (0..n as i32).collect()
                        } else {
                            vec![0; n as usize]
                        };
                        Phase::Bcast { ch, buf, off: 0 }
                    }
                    Which::Reduce => {
                        let ch = ctx.open_reduce_channel_poll::<i32>(n, 1, 0, &comm)?;
                        let contrib: Vec<i32> = (0..n as i32).collect();
                        let out = vec![0i32; n as usize];
                        Phase::Reduce {
                            ch,
                            contrib,
                            out,
                            off: 0,
                        }
                    }
                };
                Ok(Box::new(CollTask { ctx, phase }) as Box<dyn RankTask>)
            });
            f
        })
        .collect();
    let t = Instant::now();
    let report = run_mpmd_tasks(&topo, coll_metas(ranks), factories, params).expect("launch");
    let dt = t.elapsed().as_secs_f64();
    for (r, res) in report.results.iter().enumerate() {
        if let Err(e) = res {
            panic!("rank {r} failed: {e}");
        }
    }
    (dt, report.threads_spawned)
}

fn main() {
    let mut effort = smi_bench::Effort::from_args();
    let mut out_path = String::from("BENCH_collectives.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--smoke" => effort = smi_bench::Effort::Quick,
            _ => {}
        }
    }
    smi_bench::banner(
        "bench_collectives — bcast/reduce throughput vs. rank count and scheme",
        "poll-mode collectives (rendezvous-free handshake, bulk APIs, tree routing)",
    );

    let (rank_sweep, n): (Vec<usize>, u64) = match effort {
        smi_bench::Effort::Quick => (vec![4, 8, 16, 32], 1 << 14),
        smi_bench::Effort::Normal => (vec![4, 8, 16, 32, 64], 1 << 17),
        smi_bench::Effort::Full => (vec![4, 8, 16, 32, 64, 128], 1 << 19),
    };

    let mut points: Vec<Point> = Vec::new();
    println!(
        "{:<20} {:>6} {:>10} {:>10} {:>9} {:>8}",
        "series", "ranks", "elems", "seconds", "Melem/s", "threads"
    );
    let mut record = |series: String, ranks: usize, elems: u64, dt: f64, threads: usize| {
        let melem = elems as f64 / dt / 1e6;
        println!(
            "{:<20} {:>6} {:>10} {:>10.4} {:>9.2} {:>8}",
            series, ranks, elems, dt, melem, threads
        );
        points.push(Point {
            series,
            ranks,
            elems,
            seconds: dt,
            melem_per_s: melem,
            threads_spawned: threads,
        });
    };

    // Thread plane at 8 ranks: per-element (the before) vs bulk slices.
    for (series_b, series_r, bulk) in [
        ("bcast_thread_elem", "reduce_thread_elem", false),
        ("bcast_thread_slice", "reduce_thread_slice", true),
    ] {
        let (bcast_dt, reduce_dt, threads) = run_threads(8, n, bulk);
        record(series_b.into(), 8, n, bcast_dt, threads);
        record(series_r.into(), 8, n, reduce_dt, threads);
    }

    // Task plane: poll-mode opens + try-slices, swept over rank counts,
    // under both routing schemes.
    for (which, name) in [(Which::Bcast, "bcast"), (Which::Reduce, "reduce")] {
        for (scheme, suffix) in [
            (CollectiveScheme::Linear, "linear"),
            (CollectiveScheme::Tree, "tree"),
        ] {
            for &ranks in &rank_sweep {
                let (dt, threads) = run_tasks(ranks, n, which, scheme);
                record(format!("{name}_task_{suffix}"), ranks, n, dt, threads);
            }
        }
    }

    // Headline: tree vs linear at the largest common rank count.
    let speedup = |name: &str, ranks: usize| -> Option<f64> {
        let rate = |series: String| {
            points
                .iter()
                .find(|p| p.series == series && p.ranks == ranks)
                .map(|p| p.melem_per_s)
        };
        Some(rate(format!("{name}_task_tree"))? / rate(format!("{name}_task_linear"))?)
    };
    let headline_ranks = rank_sweep
        .iter()
        .copied()
        .find(|&r| r == 32)
        .unwrap_or(*rank_sweep.last().expect("non-empty sweep"));
    for name in ["bcast", "reduce"] {
        if let Some(s) = speedup(name, headline_ranks) {
            println!("tree/linear speedup @ {headline_ranks} ranks ({name}): {s:.2}x");
        }
    }

    // Hand-rolled JSON: flat, stable, diff-friendly.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"benchmark\": \"bench_collectives\",\n  \"effort\": \"{:?}\",\n  \"available_parallelism\": {},\n",
        effort,
        std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"series\": \"{}\", \"ranks\": {}, \"elems\": {}, \"seconds\": {:.6}, \"melem_per_s\": {:.3}, \"threads_spawned\": {}}}{}\n",
            p.series,
            p.ranks,
            p.elems,
            p.seconds,
            p.melem_per_s,
            p.threads_spawned,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write JSON");
    println!("\nwrote {out_path}");
}
