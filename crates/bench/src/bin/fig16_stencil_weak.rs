//! Reproduction of **Fig. 16** — average time per stencil grid point vs
//! grid size (1024²–16384²), 32 timesteps, 4 memory banks per FPGA, 4 vs 8
//! ranks. At small grids the per-timestep overheads dominate; at large
//! grids 8 ranks run ≈2× faster than 4.

use smi_apps::stencil::timed::{run_timed, StencilTimedConfig};
use smi_apps::stencil::RankGrid;
use smi_bench::{banner, Effort};
use smi_fabric::params::FabricParams;

fn main() {
    banner(
        "Fig. 16: stencil weak scaling (ns per grid point)",
        "§5.4.2, Fig. 16",
    );
    let effort = Effort::from_args();
    let (iters, max_n) = match effort {
        Effort::Quick => (4u32, 2048u64),
        Effort::Normal => (8, 8192),
        Effort::Full => (32, 16384), // the paper's full range
    };
    println!("{iters} timesteps (paper: 32), 4 banks per FPGA");
    println!(
        "{:>14}{:>16}{:>16}",
        "grid", "4 ranks ns/pt", "8 ranks ns/pt"
    );
    let mut n = 1024u64;
    while n <= max_n {
        let mut row = format!("{:>14}", format!("{n}x{n}"));
        for grid in [RankGrid { rx: 2, ry: 2 }, RankGrid { rx: 2, ry: 4 }] {
            let cfg = StencilTimedConfig {
                fabric: FabricParams::default(),
                nx: n,
                ny: n,
                iters,
                grid,
                banks: 4,
                iter_overhead_cycles: StencilTimedConfig::DEFAULT_ITER_OVERHEAD,
            };
            let r = run_timed(&cfg).expect("stencil run");
            // Normalize to the paper's 32 timesteps per point.
            let ns = r.ns_per_point * 32.0 / iters as f64;
            row.push_str(&format!("{:>16.3}", ns));
        }
        println!("{row}");
        n *= 2;
    }
    println!();
    println!("paper: per-point time flattens with grid size; at 16384² the");
    println!("8-rank setup is ≈2x faster than 4 ranks; at 1024² they meet.");
}
