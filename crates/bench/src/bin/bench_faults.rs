//! Fault-recovery benchmark: how much a mid-stream fault costs.
//!
//! The same cross-process p2p workload (disjoint pairs `0 → 2`, `1 → 3` on
//! a 4-rank bus split half/half) runs three ways per socket backend:
//!
//! * `baseline` — fault-free, the reference throughput.
//! * `sever`    — the inter-group stream is cut mid-transfer and must heal
//!   through the resume handshake + replay ring; the extra wall time over
//!   baseline is the recovery latency.
//! * `chaos`    — dropped and duplicated frames on both directions of the
//!   inter-group link; measures degraded throughput under repeated
//!   gap-detect / probe / replay cycles.
//!
//! Every faulty run asserts bit-exact delivery and at least one healed
//! reconnect, so the numbers can't silently measure a run that never
//! faulted. Emitted as `BENCH_faults.json` (checked in CI by
//! `tools/ci_check_faults.py`).
//!
//! Usage: `bench_faults [--quick|--smoke | --full] [--out PATH]`

use std::time::Instant;

use smi::env::SmiCtx;
use smi::prelude::*;

const RANKS: usize = 4;
const NPROC: usize = 2;

struct Point {
    series: String,
    backend: &'static str,
    fault: &'static str,
    elems: u64,
    seconds: f64,
    melem_per_s: f64,
    healed: usize,
    overhead_s: f64,
}

/// The faults applied to one run of the workload.
enum FaultMode {
    Baseline,
    /// Cut the inter-group stream after its `after_frame`-th frame.
    Sever {
        after_frame: u64,
    },
    /// Drop and duplicate frames on both directions of the link.
    Chaos,
}

impl FaultMode {
    fn name(&self) -> &'static str {
        match self {
            FaultMode::Baseline => "baseline",
            FaultMode::Sever { .. } => "sever",
            FaultMode::Chaos => "chaos",
        }
    }

    fn plan(&self) -> Option<FaultPlan> {
        match self {
            FaultMode::Baseline => None,
            FaultMode::Sever { after_frame } => Some(FaultPlan {
                links: vec![LinkFault {
                    sever: vec![SeverSpec {
                        after_frame: *after_frame,
                    }],
                    ..LinkFault::clean(0, 1)
                }],
            }),
            FaultMode::Chaos => Some(FaultPlan {
                links: vec![
                    LinkFault {
                        drop: vec![3, 17, 41],
                        duplicate: vec![7, 29],
                        ..LinkFault::clean(0, 1)
                    },
                    LinkFault {
                        drop: vec![5, 23],
                        duplicate: vec![11],
                        ..LinkFault::clean(1, 0)
                    },
                ],
            }),
        }
    }
}

/// Disjoint pairs 0 → 2 and 1 → 3 across the faulted inter-group link.
/// Returns `(seconds, reconnects_healed)`.
fn run_p2p(backend: TransportBackend, n: u64, mode: &FaultMode) -> (f64, usize) {
    let mut plan = ProcessPlan::split(&Topology::bus(RANKS), backend, NPROC);
    plan.faults = mode.plan();
    let metas: Vec<ProgramMeta> = (0..RANKS)
        .map(|r| {
            if r < 2 {
                ProgramMeta::new().with(OpSpec::send(0, Datatype::Int))
            } else {
                ProgramMeta::new().with(OpSpec::recv(0, Datatype::Int))
            }
        })
        .collect();
    let programs: Vec<Box<dyn FnOnce(SmiCtx) -> bool + Send>> = (0..RANKS)
        .map(|r| {
            let b: Box<dyn FnOnce(SmiCtx) -> bool + Send> = if r < 2 {
                Box::new(move |ctx: SmiCtx| {
                    let mut ch = ctx.open_send_channel::<i32>(n, r + 2, 0).unwrap();
                    let data: Vec<i32> = (0..n as i32).collect();
                    ch.push_slice(&data).unwrap();
                    true
                })
            } else {
                Box::new(move |ctx: SmiCtx| {
                    let mut ch = ctx.open_recv_channel::<i32>(n, r - 2, 0).unwrap();
                    let mut buf = vec![0i32; n as usize];
                    ch.pop_slice(&mut buf).unwrap();
                    buf.iter().enumerate().all(|(i, &v)| v == i as i32)
                })
            };
            b
        })
        .collect();
    let t = Instant::now();
    let report = run_split_mpmd(&plan, metas, programs, RuntimeParams::default()).expect("launch");
    let dt = t.elapsed().as_secs_f64();
    assert!(report.results.iter().all(|&ok| ok), "data corrupted");
    if matches!(mode, FaultMode::Baseline) {
        assert_eq!(report.reconnects_healed, 0, "baseline must not reconnect");
    } else {
        assert!(
            report.reconnects_healed >= 1,
            "{} run never faulted — numbers would be meaningless",
            mode.name()
        );
    }
    (dt, report.reconnects_healed)
}

fn main() {
    let mut effort = smi_bench::Effort::from_args();
    let mut out_path = String::from("BENCH_faults.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--smoke" => effort = smi_bench::Effort::Quick,
            _ => {}
        }
    }
    smi_bench::banner(
        "bench_faults — recovery latency and degraded throughput under injected faults",
        "baseline vs mid-stream sever (heal) vs dropped/duplicated frames",
    );

    let n: u64 = match effort {
        smi_bench::Effort::Quick => 64 << 10,
        smi_bench::Effort::Normal => 1 << 20,
        smi_bench::Effort::Full => 4 << 20,
    };
    // Land the sever well inside the transfer at any effort level.
    let sever_at = 8;

    let mut points: Vec<Point> = Vec::new();
    println!(
        "{:<18} {:>8} {:>9} {:>10} {:>10} {:>9} {:>7} {:>11}",
        "series", "backend", "fault", "elems", "seconds", "Melem/s", "healed", "overhead_s"
    );
    for backend in [TransportBackend::Uds, TransportBackend::Tcp] {
        let modes = [
            FaultMode::Baseline,
            FaultMode::Sever {
                after_frame: sever_at,
            },
            FaultMode::Chaos,
        ];
        let mut baseline_s = 0.0;
        for mode in modes {
            let (dt, healed) = run_p2p(backend, n, &mode);
            if matches!(mode, FaultMode::Baseline) {
                baseline_s = dt;
            }
            let overhead = (dt - baseline_s).max(0.0);
            let melem = 2.0 * n as f64 / dt / 1e6;
            let series = format!("p2p_{}_{}", backend.name(), mode.name());
            println!(
                "{:<18} {:>8} {:>9} {:>10} {:>10.3} {:>9.2} {:>7} {:>11.3}",
                series,
                backend.name(),
                mode.name(),
                n,
                dt,
                melem,
                healed,
                overhead
            );
            points.push(Point {
                series,
                backend: backend.name(),
                fault: mode.name(),
                elems: n,
                seconds: dt,
                melem_per_s: melem,
                healed,
                overhead_s: overhead,
            });
        }
    }

    // Hand-rolled JSON: flat, stable, diff-friendly.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"benchmark\": \"bench_faults\",\n  \"effort\": \"{:?}\",\n  \"available_parallelism\": {},\n",
        effort,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"series\": \"{}\", \"backend\": \"{}\", \"fault\": \"{}\", \"elems\": {}, \"seconds\": {:.6}, \"melem_per_s\": {:.3}, \"healed\": {}, \"recovery_overhead_s\": {:.6}}}{}\n",
            p.series,
            p.backend,
            p.fault,
            p.elems,
            p.seconds,
            p.melem_per_s,
            p.healed,
            p.overhead_s,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write JSON");
    println!("\nwrote {out_path}");
}
