//! Reproduction of **Table 3** — ping-pong latency (half round-trip) of SMI
//! at 1/4/7 network hops vs the MPI+OpenCL host path.

use smi_baseline::HostPathModel;
use smi_bench::banner;
use smi_fabric::bench_api::pingpong;
use smi_fabric::params::FabricParams;
use smi_topology::Topology;

fn main() {
    banner("Table 3: message latency (µs)", "§5.3.2, Tab. 3");
    let params = FabricParams::default();
    let topo = Topology::bus(8);
    let iters = 50;

    println!("{:<18}{:>12}{:>12}", "config", "measured", "paper");
    let paper = [(1usize, 0.801f64), (4, 2.896), (7, 5.103)];
    for (hops, paper_us) in paper {
        let r = pingpong(&topo, 0, hops, iters, &params).expect("pingpong run");
        assert_eq!(r.hops, hops);
        println!(
            "{:<18}{:>12.3}{:>12.3}",
            format!("SMI - {hops} hop(s)"),
            r.half_rtt_us,
            paper_us
        );
    }
    let host = HostPathModel::default();
    println!(
        "{:<18}{:>12.3}{:>12.3}",
        "MPI+OpenCL",
        host.e2e_p2p_us(4),
        36.61
    );
    println!();
    println!("(SMI latency grows linearly with network distance; the host");
    println!(" path pays two OpenCL transfers + host MPI regardless.)");
}
