//! Reproduction of **Table 2** — collective support-kernel resources
//! (Broadcast, Reduce FP32 SUM).

use smi_bench::banner;
use smi_resources::report::render_table2;
use smi_resources::{Chip, ResourceModel};

fn main() {
    banner(
        "Table 2: collectives kernel resource consumption",
        "§5.2, Tab. 2",
    );
    let model = ResourceModel::default();
    print!("{}", render_table2(&model, &Chip::GX2800));
    println!();
    println!("paper (measured on hardware):");
    println!("  Broadcast          2,560 LUT (0.1%)  3,593 FF (0.1%)  0 M20K  0 DSP");
    println!("  Reduce (FP32 SUM) 10,268 LUT (0.6%) 14,648 FF (0.4%)  0 M20K  6 DSP (0.1%)");
}
