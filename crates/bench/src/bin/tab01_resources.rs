//! Reproduction of **Table 1** — SMI resource consumption (interconnect and
//! communication kernels, 1 vs 4 QSFPs, % of a Stratix 10 GX2800).

use smi_bench::banner;
use smi_resources::report::render_table1;
use smi_resources::{Chip, ResourceModel};

fn main() {
    banner("Table 1: SMI resource consumption", "§5.2, Tab. 1");
    let model = ResourceModel::default();
    print!("{}", render_table1(&model, &Chip::GX2800));
    println!();
    println!("paper (measured on hardware):");
    println!("              1 QSFP:  Interconn. 144 LUT / 4,872 FF / 0 M20K");
    println!("                       C.K.     6,186 LUT / 7,189 FF / 10 M20K");
    println!("              4 QSFPs: Interconn. 1,152 LUT / 39,264 FF / 0 M20K");
    println!("                       C.K.    30,960 LUT / 31,072 FF / 40 M20K");
    println!("                       (< 2% of the chip in all cases)");
}
