//! Transport-backend sweep: the same workloads over the in-memory burst
//! FIFOs, Unix-domain sockets, and loopback TCP, emitted as
//! `BENCH_transport.json` so every CI run leaves a cross-backend data
//! point.
//!
//! Three workloads per backend, all on a 4-rank bus split half/half into
//! two socket-joined groups (the in-memory point keeps one group and is
//! the baseline the sockets are measured against):
//!
//! * `p2p` — disjoint pairs `0 → 2`, `1 → 3` (both streams cross the
//!   process boundary) using bulk `push_slice`/`pop_slice`.
//! * `bcast` — rooted broadcast of the whole payload.
//! * `reduce` — rooted elementwise-add reduction of the whole payload.
//!
//! The socket backends additionally run the `p2p` workload with
//! `socket_pooling: false` (`p2p_uds_unpooled`, `p2p_tcp_unpooled`): the
//! wire-identical v2 baseline the pooled fast path is measured against.
//! Every point carries the run's wire counters (syscalls, bytes,
//! bytes-per-syscall, pool hits/misses, corked frames) so CI can gate on
//! syscall amortization, not just wall time.
//!
//! Usage: `bench_transport [--quick|--smoke | --full] [--out PATH]`

use std::time::Instant;

use smi::env::SmiCtx;
use smi::prelude::*;
use smi::WireSnapshot;

const RANKS: usize = 4;
const NPROC: usize = 2;

/// One measured point.
struct Point {
    series: String,
    backend: &'static str,
    ranks: usize,
    nproc: usize,
    elems: u64,
    seconds: f64,
    melem_per_s: f64,
    wire: WireSnapshot,
}

fn plan_for(backend: TransportBackend) -> ProcessPlan {
    let topo = Topology::bus(RANKS);
    let nproc = if backend == TransportBackend::InMem {
        1
    } else {
        NPROC
    };
    ProcessPlan::split(&topo, backend, nproc)
}

/// Disjoint pairs 0 → 2 and 1 → 3: with the half/half split every element
/// crosses the inter-group link. Returns (seconds, wire counters).
fn run_p2p(backend: TransportBackend, n: u64, pooling: bool) -> (f64, WireSnapshot) {
    let plan = plan_for(backend);
    let metas: Vec<ProgramMeta> = (0..RANKS)
        .map(|r| {
            if r < 2 {
                ProgramMeta::new().with(OpSpec::send(0, Datatype::Int))
            } else {
                ProgramMeta::new().with(OpSpec::recv(0, Datatype::Int))
            }
        })
        .collect();
    let programs: Vec<Box<dyn FnOnce(SmiCtx) -> bool + Send>> = (0..RANKS)
        .map(|r| {
            let b: Box<dyn FnOnce(SmiCtx) -> bool + Send> = if r < 2 {
                Box::new(move |ctx: SmiCtx| {
                    let mut ch = ctx.open_send_channel::<i32>(n, r + 2, 0).unwrap();
                    let data: Vec<i32> = (0..n as i32).collect();
                    ch.push_slice(&data).unwrap();
                    true
                })
            } else {
                Box::new(move |ctx: SmiCtx| {
                    let mut ch = ctx.open_recv_channel::<i32>(n, r - 2, 0).unwrap();
                    let mut buf = vec![0i32; n as usize];
                    ch.pop_slice(&mut buf).unwrap();
                    buf.iter().enumerate().all(|(i, &v)| v == i as i32)
                })
            };
            b
        })
        .collect();
    let params = RuntimeParams {
        socket_pooling: pooling,
        ..Default::default()
    };
    let t = Instant::now();
    let report = run_split_mpmd(&plan, metas, programs, params).expect("launch");
    let dt = t.elapsed().as_secs_f64();
    assert!(report.results.iter().all(|&ok| ok), "data corrupted");
    (dt, report.wire_stats)
}

/// Rooted collective (bcast or reduce) of `n` elements. Returns
/// (seconds, wire counters).
fn run_collective(backend: TransportBackend, n: u64, reduce: bool) -> (f64, WireSnapshot) {
    let plan = plan_for(backend);
    let meta = if reduce {
        ProgramMeta::new().with(OpSpec::reduce(0, Datatype::Int, ReduceOp::Add))
    } else {
        ProgramMeta::new().with(OpSpec::bcast(0, Datatype::Int))
    };
    let t = Instant::now();
    let report = run_split_spmd(
        &plan,
        meta,
        move |ctx: SmiCtx| {
            let comm = ctx.world();
            let rank = comm.rank();
            if reduce {
                let contrib: Vec<i32> = (0..n as i32).map(|i| i + rank as i32).collect();
                let mut out = vec![0i32; n as usize];
                let mut ch = ctx.open_reduce_channel::<i32>(n, 0, 0, &comm).unwrap();
                ch.reduce_slice(&contrib, &mut out).unwrap();
                rank != 0
                    || out
                        .iter()
                        .enumerate()
                        .all(|(i, &v)| v as usize == 4 * i + 6)
            } else {
                let mut buf: Vec<i32> = if rank == 0 {
                    (0..n as i32).collect()
                } else {
                    vec![0; n as usize]
                };
                let mut ch = ctx.open_bcast_channel::<i32>(n, 0, 0, &comm).unwrap();
                ch.bcast_slice(&mut buf).unwrap();
                buf.iter().enumerate().all(|(i, &v)| v == i as i32)
            }
        },
        RuntimeParams::default(),
    )
    .expect("launch");
    let dt = t.elapsed().as_secs_f64();
    assert!(report.results.iter().all(|&ok| ok), "data corrupted");
    (dt, report.wire_stats)
}

fn main() {
    let mut effort = smi_bench::Effort::from_args();
    let mut out_path = String::from("BENCH_transport.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--smoke" => effort = smi_bench::Effort::Quick,
            _ => {}
        }
    }
    smi_bench::banner(
        "bench_transport — p2p and collective throughput per transport backend",
        "in-memory FIFOs vs Unix-domain sockets vs loopback TCP",
    );

    let n: u64 = match effort {
        smi_bench::Effort::Quick => 64 << 10,
        smi_bench::Effort::Normal => 1 << 20,
        smi_bench::Effort::Full => 4 << 20,
    };

    let backends = [
        TransportBackend::InMem,
        TransportBackend::Uds,
        TransportBackend::Tcp,
    ];
    let mut points: Vec<Point> = Vec::new();
    println!(
        "{:<20} {:>8} {:>6} {:>6} {:>10} {:>10} {:>9} {:>11}",
        "series", "backend", "ranks", "procs", "elems", "seconds", "Melem/s", "B/syscall"
    );
    for backend in backends {
        let nproc = if backend == TransportBackend::InMem {
            1
        } else {
            NPROC
        };
        type Workload = Box<dyn Fn() -> ((f64, WireSnapshot), u64)>;
        let mut workloads: Vec<(String, Workload)> = vec![
            (
                format!("p2p_{}", backend.name()),
                Box::new(move || (run_p2p(backend, n, true), 2 * n)),
            ),
            (
                format!("bcast_{}", backend.name()),
                Box::new(move || (run_collective(backend, n, false), n)),
            ),
            (
                format!("reduce_{}", backend.name()),
                Box::new(move || (run_collective(backend, n, true), n)),
            ),
        ];
        if backend != TransportBackend::InMem {
            // The wire-identical v2 baseline the pooled path is gated
            // against in CI.
            workloads.push((
                format!("p2p_{}_unpooled", backend.name()),
                Box::new(move || (run_p2p(backend, n, false), 2 * n)),
            ));
        }
        for (series, run) in workloads {
            let ((dt, wire), total) = run();
            let melem = total as f64 / dt / 1e6;
            println!(
                "{:<20} {:>8} {:>6} {:>6} {:>10} {:>10.3} {:>9.2} {:>11.0}",
                series,
                backend.name(),
                RANKS,
                nproc,
                n,
                dt,
                melem,
                wire.send_bytes_per_syscall()
            );
            points.push(Point {
                series,
                backend: backend.name(),
                ranks: RANKS,
                nproc,
                elems: n,
                seconds: dt,
                melem_per_s: melem,
                wire,
            });
        }
    }

    // Hand-rolled JSON: flat, stable, diff-friendly.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"benchmark\": \"bench_transport\",\n  \"effort\": \"{:?}\",\n  \"available_parallelism\": {},\n",
        effort,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"series\": \"{}\", \"backend\": \"{}\", \"ranks\": {}, \"nproc\": {}, \"elems\": {}, \"seconds\": {:.6}, \"melem_per_s\": {:.3}, \"send_syscalls\": {}, \"send_bytes\": {}, \"recv_syscalls\": {}, \"recv_bytes\": {}, \"bytes_per_syscall\": {:.1}, \"pool_hits\": {}, \"pool_misses\": {}, \"corked_frames\": {}}}{}\n",
            p.series,
            p.backend,
            p.ranks,
            p.nproc,
            p.elems,
            p.seconds,
            p.melem_per_s,
            p.wire.send_syscalls,
            p.wire.send_bytes,
            p.wire.recv_syscalls,
            p.wire.recv_bytes,
            p.wire.send_bytes_per_syscall(),
            p.wire.pool_hits,
            p.wire.pool_misses,
            p.wire.corked_frames,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write JSON");
    println!("\nwrote {out_path}");
}
