//! Reproduction of **Table 4** — average injection latency (cycles between
//! packets accepted from one endpoint) as the CK polling persistence `R`
//! varies, with 4 CKS/CKR pairs per rank.

use smi_bench::banner;
use smi_fabric::bench_api::injection_rate;
use smi_fabric::params::FabricParams;

fn main() {
    banner(
        "Table 4: injection rate vs polling persistence R",
        "§5.3.3, Tab. 4",
    );
    let count = 20_000;
    println!("{:<8}{:>16}{:>12}", "R", "measured", "paper");
    let paper = [(1u32, 5.0f64), (4, 2.5), (8, 1.8), (16, 1.69)];
    for (r, paper_cycles) in paper {
        let params = FabricParams {
            poll_persistence: r,
            ..FabricParams::default()
        };
        let res = injection_rate(&params, count).expect("injection run");
        println!(
            "{:<8}{:>16.2}{:>12.2}",
            r, res.cycles_per_packet, paper_cycles
        );
    }
    println!();
    println!("(a CKS arbitrates 5 inputs: 1 application + its CKR + 3 other");
    println!(" CKS modules; higher R amortizes the polling rotation, floor 1.)");
}
