//! Reproduction of **Fig. 9** — point-to-point bandwidth vs message size,
//! for SMI at 1/4/7 network hops (bus topology) and the MPI+OpenCL host
//! path. "SMI approaches 91% of the peak bandwidth offered by the QSFP
//! connection"; distance does not affect bandwidth; the host path reaches
//! roughly a third.

use smi_baseline::HostPathModel;
use smi_bench::{banner, fmt_bytes, sweep, Effort};
use smi_fabric::bench_api::p2p_stream;
use smi_fabric::params::FabricParams;
use smi_topology::Topology;
use smi_wire::Datatype;

fn main() {
    banner(
        "Fig. 9: bandwidth vs message size (Gbit/s)",
        "§5.3.1, Fig. 9",
    );
    let effort = Effort::from_args();
    let params = FabricParams::default();
    let topo = Topology::bus(8);
    let host = HostPathModel::default();
    let max_bytes = match effort {
        Effort::Quick => 1 << 20,
        Effort::Normal => 64 << 20,
        Effort::Full => 256 << 20,
    };
    let sizes = sweep(1 << 10, max_bytes, 4);

    println!(
        "{:>10}{:>14}{:>14}{:>14}{:>14}",
        "bytes", "SMI-1hop", "SMI-4hops", "SMI-7hops", "MPI+OpenCL"
    );
    for bytes in sizes {
        let elems = bytes / 4;
        let mut row = format!("{:>10}", fmt_bytes(bytes));
        for dst in [1usize, 4, 7] {
            let r =
                p2p_stream(&topo, 0, dst, elems, Datatype::Float, &params).expect("p2p stream run");
            assert_eq!(r.errors, 0, "data corruption at {bytes} bytes");
            row.push_str(&format!("{:>14.2}", r.payload_gbit_s));
        }
        row.push_str(&format!(
            "{:>14.2}",
            host.e2e_bandwidth_gbit_s(bytes as usize)
        ));
        println!("{row}");
    }
    println!();
    println!(
        "peak payload bandwidth: {:.1} Gbit/s (40 Gbit/s line rate × 28/32 header overhead)",
        params.peak_payload_gbit_s()
    );
    println!("paper: SMI plateaus ≈35 Gbit/s independent of hops; MPI+OpenCL ≈11-12 Gbit/s.");
}
