//! Reproduction of **Fig. 11** — reduce (FP32 SUM) time vs message size.
//! "For small to medium-sized messages, SMI's Reduce outperforms going over
//! the host […] but loses its benefit at high message sizes" — the
//! credit-based flow control is latency-sensitive, so the bus topology
//! (larger diameter) is slower than the torus.

use smi_baseline::hostpath::HostPathModel;
use smi_baseline::mpi::MpiCollectives;
use smi_bench::{banner, fmt_elems, sweep, Effort};
use smi_fabric::bench_api::{collective, CollectiveKind, CollectiveScheme};
use smi_fabric::params::FabricParams;
use smi_topology::Topology;
use smi_wire::{Datatype, ReduceOp};

fn main() {
    banner(
        "Fig. 11: Reduce time vs size (µs, FP32 SUM)",
        "§5.3.4, Fig. 11",
    );
    let effort = Effort::from_args();
    let params = FabricParams::default();
    let mpi = MpiCollectives::new(HostPathModel::default());
    let max_elems = match effort {
        Effort::Quick => 1 << 12,
        Effort::Normal => 1 << 18,
        Effort::Full => 1 << 20,
    };
    let sizes = sweep(1, max_elems, 4);
    let configs: [(&str, Topology); 4] = [
        ("SMI Torus-8", Topology::torus2d(2, 4)),
        ("SMI Torus-4", Topology::torus2d(2, 2)),
        ("SMI Bus-8", Topology::bus(8)),
        ("SMI Bus-4", Topology::bus(4)),
    ];
    println!(
        "{:>8}{:>14}{:>14}{:>14}{:>14}{:>16}{:>16}",
        "elems", "Torus-8", "Torus-4", "Bus-8", "Bus-4", "MPI+OpenCL-8", "MPI+OpenCL-4"
    );
    for &n in &sizes {
        let mut row = format!("{:>8}", fmt_elems(n));
        for (_, topo) in &configs {
            let r = collective(
                topo,
                CollectiveKind::Reduce,
                CollectiveScheme::Linear,
                0,
                n,
                Datatype::Float,
                ReduceOp::Add,
                &params,
            )
            .expect("reduce run");
            assert_eq!(r.errors, 0);
            row.push_str(&format!("{:>14.1}", r.time_us));
        }
        row.push_str(&format!("{:>16.1}", mpi.reduce_us(n as usize * 4, 8)));
        row.push_str(&format!("{:>16.1}", mpi.reduce_us(n as usize * 4, 4)));
        println!("{row}");
    }
    println!();
    println!("paper: SMI wins at small/medium sizes; MPI+OpenCL overtakes at");
    println!("large sizes (tree algorithms vs the linear, root-congested scheme).");
}
