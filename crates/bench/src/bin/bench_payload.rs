//! Payload-plane benchmark: copies-per-element and throughput of the
//! zero-copy run-buffer path against the packet-copying baseline
//! (`RuntimeParams::zero_copy: false`), emitted as `BENCH_payload.json`.
//!
//! Series (each measured with zero-copy on (`*_zero`) and off (`*_base`)):
//!
//! * `p2p` — disjoint neighbour pairs on an 8-rank bus, cooperative-task
//!   bulk streaming (the `task_bulk` shape of `bench_scaling`). Baseline
//!   charges 4 copies per element byte (frame, absorb, refill, drain);
//!   zero-copy charges 2 (run wrap, drain).
//! * `bcast` — 8-rank binomial-tree broadcast, blocking bulk API. Interior
//!   nodes re-address `Arc` run handles instead of duplicating packets.
//! * `gather` — 8-rank binomial-tree gather. The gather data plane is
//!   packet-based in both modes (runs never form: packets are re-framed at
//!   member-block boundaries), so its pair documents parity, not a win.
//!
//! `copies_per_elem` is `RunReport::payload_copies` (bytes) divided by the
//! app-visible element bytes moved; the CI check gates the `*_base` /
//! `*_zero` ratio at ≥2× for p2p and bcast.
//!
//! Usage: `bench_payload [--quick|--smoke | --full] [--out PATH]`

use std::time::Instant;

use smi::env::SmiCtx;
use smi::prelude::*;

/// One measured point.
struct Point {
    series: &'static str,
    ranks: usize,
    elems: u64,
    seconds: f64,
    melem_per_s: f64,
    payload_copies: u64,
    copies_per_elem: f64,
}

struct BulkSend {
    ch: Option<SendChannel<i32>>,
    data: Vec<i32>,
    off: usize,
}

impl RankTask for BulkSend {
    fn poll(&mut self) -> Result<TaskStatus, SmiError> {
        let ch = self.ch.as_mut().expect("open while pending");
        let before = self.off;
        if self.off < self.data.len() {
            self.off += ch.try_push_slice(&self.data[self.off..])?;
        }
        if self.off == self.data.len() && ch.try_flush()? && ch.fully_sent() {
            self.ch = None;
            return Ok(TaskStatus::Done);
        }
        Ok(if self.off > before {
            TaskStatus::Progress
        } else {
            TaskStatus::Pending
        })
    }
}

struct BulkRecv {
    ch: Option<RecvChannel<i32>>,
    buf: Vec<i32>,
    filled: usize,
}

impl RankTask for BulkRecv {
    fn poll(&mut self) -> Result<TaskStatus, SmiError> {
        let ch = self.ch.as_mut().expect("open while pending");
        let moved = ch.try_pop_slice(&mut self.buf[self.filled..])?;
        self.filled += moved;
        if self.filled == self.buf.len() {
            for (i, &v) in self.buf.iter().enumerate() {
                if v != i as i32 {
                    return Err(SmiError::ProtocolViolation {
                        detail: format!("element {i} corrupted: {v}"),
                    });
                }
            }
            self.ch = None;
            return Ok(TaskStatus::Done);
        }
        Ok(if moved > 0 {
            TaskStatus::Progress
        } else {
            TaskStatus::Pending
        })
    }
}

fn payload_params(zero_copy: bool) -> RuntimeParams {
    RuntimeParams {
        zero_copy,
        collective_scheme: CollectiveScheme::Tree,
        ..Default::default()
    }
}

/// Disjoint-pair cooperative-task bulk p2p. Returns (seconds, copies, total
/// app elements moved).
fn run_p2p(ranks: usize, n: u64, zero_copy: bool) -> (f64, u64, u64) {
    let topo = Topology::bus(ranks);
    let metas: Vec<ProgramMeta> = (0..ranks)
        .map(|r| {
            if r % 2 == 0 {
                ProgramMeta::new().with(OpSpec::send(0, Datatype::Int))
            } else {
                ProgramMeta::new().with(OpSpec::recv(0, Datatype::Int))
            }
        })
        .collect();
    let factories: Vec<TaskFactory> = (0..ranks)
        .map(|r| {
            let f: TaskFactory = if r % 2 == 0 {
                Box::new(move |ctx: SmiCtx| {
                    let ch = ctx.open_send_channel::<i32>(n, r + 1, 0)?;
                    Ok(Box::new(BulkSend {
                        ch: Some(ch),
                        data: (0..n as i32).collect(),
                        off: 0,
                    }) as Box<dyn RankTask>)
                })
            } else {
                Box::new(move |ctx: SmiCtx| {
                    let ch = ctx.open_recv_channel::<i32>(n, r - 1, 0)?;
                    Ok(Box::new(BulkRecv {
                        ch: Some(ch),
                        buf: vec![0; n as usize],
                        filled: 0,
                    }) as Box<dyn RankTask>)
                })
            };
            f
        })
        .collect();
    let t = Instant::now();
    let report =
        run_mpmd_tasks(&topo, metas, factories, payload_params(zero_copy)).expect("launch");
    let dt = t.elapsed().as_secs_f64();
    for (r, res) in report.results.iter().enumerate() {
        if let Err(e) = res {
            panic!("rank {r} failed: {e}");
        }
    }
    assert_eq!(report.transport.2, 0, "unroutable packets");
    (dt, report.payload_copies, n * (ranks as u64 / 2))
}

/// Tree broadcast of `n` elements from rank 0 across `ranks`. Returns
/// (seconds, copies, stream elements).
fn run_bcast(ranks: usize, n: u64, zero_copy: bool) -> (f64, u64, u64) {
    let topo = Topology::bus(ranks);
    let meta = ProgramMeta::new().with(OpSpec::bcast(0, Datatype::Int));
    let t = Instant::now();
    let report = run_spmd(
        &topo,
        meta,
        move |ctx: SmiCtx| {
            let comm = ctx.world();
            let mut b = ctx.open_bcast_channel::<i32>(n, 0, 0, &comm).unwrap();
            let mut buf: Vec<i32> = if comm.rank() == 0 {
                (0..n as i32).collect()
            } else {
                vec![0; n as usize]
            };
            b.bcast_slice(&mut buf).unwrap();
            assert_eq!(buf[n as usize - 1], n as i32 - 1, "rank {}", comm.rank());
        },
        payload_params(zero_copy),
    )
    .expect("launch");
    let dt = t.elapsed().as_secs_f64();
    (dt, report.payload_copies, n)
}

/// Tree gather of `n` elements per member to root 0. Returns (seconds,
/// copies, gathered elements).
fn run_gather(ranks: usize, n: u64, zero_copy: bool) -> (f64, u64, u64) {
    let topo = Topology::bus(ranks);
    let meta = ProgramMeta::new().with(OpSpec::gather(0, Datatype::Int));
    let t = Instant::now();
    let report = run_spmd(
        &topo,
        meta,
        move |ctx: SmiCtx| {
            let comm = ctx.world();
            let rank = comm.rank() as i32;
            let mut g = ctx.open_gather_channel::<i32>(n, 0, 0, &comm).unwrap();
            let src: Vec<i32> = (0..n as i32).map(|i| rank * 1000 + i).collect();
            g.push_slice(&src).unwrap();
            if comm.rank() == 0 {
                let mut out = vec![0i32; n as usize * comm.size()];
                g.pop_slice(&mut out).unwrap();
                assert_eq!(out[0], 0);
            }
        },
        payload_params(zero_copy),
    )
    .expect("launch");
    let dt = t.elapsed().as_secs_f64();
    (dt, report.payload_copies, n * ranks as u64)
}

fn print_point(p: &Point) {
    println!(
        "{:<12} {:>6} {:>10} {:>10.3} {:>9.2} {:>14} {:>10.2}",
        p.series, p.ranks, p.elems, p.seconds, p.melem_per_s, p.payload_copies, p.copies_per_elem
    );
}

fn main() {
    let mut effort = smi_bench::Effort::from_args();
    let mut out_path = String::from("BENCH_payload.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--smoke" => effort = smi_bench::Effort::Quick,
            _ => {}
        }
    }
    smi_bench::banner(
        "bench_payload — copies per element, zero-copy run buffers vs baseline",
        "payload plane (refcounted burst buffers)",
    );

    let ranks = 8usize;
    // Element counts are multiples of the 7-int packet capacity so whole
    // streams ride run frames (the tail otherwise falls back to framing).
    let (p2p_n, coll_n) = match effort {
        smi_bench::Effort::Quick => (70_000u64, 35_000u64),
        smi_bench::Effort::Normal => (700_000, 350_000),
        smi_bench::Effort::Full => (2_800_000, 1_400_000),
    };

    println!(
        "{:<12} {:>6} {:>10} {:>10} {:>9} {:>14} {:>10}",
        "series", "ranks", "elems", "seconds", "Melem/s", "copied_bytes", "copies/el"
    );
    let elem_bytes = Datatype::Int.size_bytes() as f64;
    let mut points: Vec<Point> = Vec::new();
    type Runner = fn(usize, u64, bool) -> (f64, u64, u64);
    let workloads: [(&'static str, &'static str, Runner, u64); 3] = [
        ("p2p_zero", "p2p_base", run_p2p, p2p_n),
        ("bcast_zero", "bcast_base", run_bcast, coll_n),
        ("gather_zero", "gather_base", run_gather, coll_n),
    ];
    for (zero_name, base_name, runner, n) in workloads {
        for (series, zero_copy) in [(zero_name, true), (base_name, false)] {
            let (dt, copies, elems) = runner(ranks, n, zero_copy);
            let p = Point {
                series,
                ranks,
                elems,
                seconds: dt,
                melem_per_s: elems as f64 / dt / 1e6,
                payload_copies: copies,
                copies_per_elem: copies as f64 / (elems as f64 * elem_bytes),
            };
            print_point(&p);
            points.push(p);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"benchmark\": \"bench_payload\",\n  \"effort\": \"{:?}\",\n  \"ranks\": {ranks},\n",
        effort
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"series\": \"{}\", \"ranks\": {}, \"elems\": {}, \"seconds\": {:.6}, \"melem_per_s\": {:.3}, \"payload_copies\": {}, \"copies_per_elem\": {:.4}}}{}\n",
            p.series,
            p.ranks,
            p.elems,
            p.seconds,
            p.melem_per_s,
            p.payload_copies,
            p.copies_per_elem,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write JSON");
    println!("\nwrote {out_path}");
}
