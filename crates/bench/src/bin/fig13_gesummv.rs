//! Reproduction of **Fig. 13** — GESUMMV distributed (2 FPGAs) vs
//! single-FPGA, for square and rectangular matrices. Expected: ≈2× speedup
//! (the distributed version owns twice the memory bandwidth).

use smi_apps::gesummv::timed::{fig13_point, GesummvTimedParams};
use smi_bench::{banner, Effort};

fn main() {
    banner(
        "Fig. 13: GESUMMV single-FPGA vs distributed",
        "§5.4.1, Fig. 13",
    );
    let effort = Effort::from_args();
    let params = GesummvTimedParams::default();
    let square_max: u64 = match effort {
        Effort::Quick => 2048,
        Effort::Normal => 8192,
        Effort::Full => 16384,
    };
    // Paper's annotated distributed times for the square sizes.
    let paper_ms = [(2048u64, 0.7f64), (4096, 2.8), (8192, 10.8), (16384, 51.1)];

    println!("-- square N x N --");
    println!(
        "{:>8}{:>14}{:>14}{:>10}{:>16}",
        "N", "single(ms)", "dist(ms)", "speedup", "paper dist(ms)"
    );
    let mut n = 2048u64;
    while n <= square_max {
        let (single, dist, speedup) = fig13_point(n, n, &params).expect("gesummv run");
        let paper = paper_ms.iter().find(|(pn, _)| *pn == n).map(|(_, t)| *t);
        println!(
            "{:>8}{:>14.2}{:>14.2}{:>10.2}{:>16}",
            n,
            single.time_ms,
            dist.time_ms,
            speedup,
            paper
                .map(|t| format!("{t:.1}"))
                .unwrap_or_else(|| "-".into())
        );
        n *= 2;
    }

    for (label, fixed_rows) in [("2048 x M (wide)", true), ("N x 2048 (tall)", false)] {
        println!();
        println!("-- rectangular {label} --");
        println!(
            "{:>8}{:>14}{:>14}{:>10}",
            "M/N", "single(ms)", "dist(ms)", "speedup"
        );
        let mut m = 4096u64;
        while m <= square_max.max(8192) {
            let (rows, cols) = if fixed_rows { (2048, m) } else { (m, 2048) };
            let (single, dist, speedup) = fig13_point(rows, cols, &params).expect("run");
            println!(
                "{:>8}{:>14.2}{:>14.2}{:>10.2}",
                m, single.time_ms, dist.time_ms, speedup
            );
            m *= 2;
        }
    }
    println!();
    println!("paper: ≈2x speedup across all sizes; distributed 4096² ≈ 2.8 ms.");
}
