//! # smi-bench — the figure/table reproduction harness
//!
//! One binary per table and figure of the paper's evaluation (§5), each
//! printing the paper's reported values next to the values measured on the
//! simulated platform:
//!
//! | binary | reproduces |
//! |---|---|
//! | `tab01_resources` | Table 1 — SMI resource consumption |
//! | `tab02_collectives` | Table 2 — collective kernel resources |
//! | `tab03_latency` | Table 3 — ping-pong latency vs hops |
//! | `tab04_injection` | Table 4 — injection rate vs polling `R` |
//! | `fig09_bandwidth` | Fig. 9 — P2P bandwidth vs message size & hops |
//! | `fig10_bcast` | Fig. 10 — Bcast time vs size, topology, ranks |
//! | `fig11_reduce` | Fig. 11 — Reduce time vs size, topology, ranks |
//! | `fig13_gesummv` | Fig. 13 — GESUMMV single vs distributed |
//! | `fig15_stencil_strong` | Fig. 15 — stencil strong scaling |
//! | `fig16_stencil_weak` | Fig. 16 — stencil weak scaling |
//! | `repro_all` | everything above, in sequence |
//!
//! All binaries accept `--quick` (shrunken sweeps) and `--full` (the paper's
//! complete parameter ranges); the default is a middle ground that runs the
//! full shape in seconds.

#![warn(missing_docs)]

/// Sweep sizing selected from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Tiny sweeps for smoke testing.
    Quick,
    /// The default: full shape, reduced tails.
    Normal,
    /// The paper's complete ranges.
    Full,
}

impl Effort {
    /// Parse from `std::env::args` (`--quick` / `--full`).
    pub fn from_args() -> Effort {
        let mut e = Effort::Normal;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--quick" => e = Effort::Quick,
                "--full" => e = Effort::Full,
                "--help" | "-h" => {
                    eprintln!("options: --quick | --full");
                    std::process::exit(2);
                }
                _ => {}
            }
        }
        e
    }
}

/// Geometric size sweep `start..=end` multiplying by `step`.
pub fn sweep(start: u64, end: u64, step: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = start;
    while s <= end {
        v.push(s);
        s *= step;
    }
    v
}

/// Format a byte count the way the paper's axes do (1K, 2M, …).
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{}M", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}K", b >> 10)
    } else {
        format!("{b}")
    }
}

/// Format an element count axis label.
pub fn fmt_elems(n: u64) -> String {
    if n >= 1 << 20 {
        format!("{}M", n >> 20)
    } else if n >= 1 << 10 {
        format!("{}K", n >> 10)
    } else {
        format!("{n}")
    }
}

/// Print a standard header for a reproduction binary.
pub fn banner(what: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{what}");
    println!("reproduces: {paper_ref}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_geometric() {
        assert_eq!(sweep(1, 16, 2), vec![1, 2, 4, 8, 16]);
        assert_eq!(sweep(1, 100, 4), vec![1, 4, 16, 64]);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512");
        assert_eq!(fmt_bytes(2048), "2K");
        assert_eq!(fmt_bytes(4 << 20), "4M");
        assert_eq!(fmt_elems(1 << 20), "1M");
    }
}
