//! Cost constants of the host path, with calibration notes.

/// Per-stage costs of the MPI+OpenCL baseline on the paper's platform
/// (Noctua: PCIe-attached Nallatech 520N, two Xeon Gold 6148F hosts per
/// node, Omni-Path 100 Gbit/s, OpenMPI 3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct HostPathParams {
    /// Fixed overhead of one OpenCL buffer transfer (enqueue, driver, DMA
    /// setup), µs. Calibrated so the one-way host-path latency lands on the
    /// paper's Table 3 value of 36.61 µs: two transfers dominate it.
    pub opencl_transfer_overhead_us: f64,
    /// PCIe 3.0 x8 effective throughput, Gbit/s (the "PCIe Peak Bandwidth"
    /// dashed line of Fig. 9 sits at ≈63 Gbit/s).
    pub pcie_gbit_s: f64,
    /// Host-side staging copy throughput, Gbit/s (single-threaded memcpy
    /// ≈ 6.25 GB/s; MPI stages once per side for large unpinned buffers).
    pub host_memcpy_gbit_s: f64,
    /// MPI small-message half-round-trip latency on Omni-Path, µs.
    pub mpi_latency_us: f64,
    /// Host network line rate, Gbit/s (Omni-Path 100).
    pub network_gbit_s: f64,
    /// MPI eager→rendezvous switch point, bytes.
    pub mpi_eager_limit_bytes: usize,
    /// Extra handshake cost of the rendezvous protocol, µs.
    pub rendezvous_overhead_us: f64,
    /// Device DRAM streaming rate seen by the kernel, Gbit/s (the message
    /// must be written to and read from device memory around the PCIe hops).
    pub device_dram_gbit_s: f64,
    /// Host-side reduction fold rate, Gbit/s (vectorized sum on one core).
    pub host_compute_gbit_s: f64,
    /// Fixed host-stack dispatch per message (progress engine, syscalls), µs.
    pub host_dispatch_us: f64,
}

impl Default for HostPathParams {
    fn default() -> Self {
        HostPathParams {
            opencl_transfer_overhead_us: 16.5,
            pcie_gbit_s: 63.0,
            host_memcpy_gbit_s: 50.0,
            mpi_latency_us: 1.8,
            network_gbit_s: 100.0,
            mpi_eager_limit_bytes: 8192,
            rendezvous_overhead_us: 2.0,
            device_dram_gbit_s: 614.4, // 4 × DDR4-2400 banks
            host_compute_gbit_s: 64.0,
            host_dispatch_us: 1.6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_positive() {
        let p = HostPathParams::default();
        assert!(p.pcie_gbit_s > 0.0 && p.network_gbit_s > 0.0);
        assert!(p.mpi_eager_limit_bytes > 0);
    }
}
