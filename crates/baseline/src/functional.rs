//! A functional, thread-based MPI world over host memory.
//!
//! This is the *working* baseline implementation (not just a cost model):
//! rank threads exchange typed buffers through host-side channels, so the
//! baseline versions of the applications can run and their results can be
//! cross-checked against the SMI runtime. Timing of the host path is
//! provided by [`crate::hostpath`]/[`crate::mpi`], not by wall-clock.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// A typed message on the host network.
type Payload = Vec<u8>;

/// Shared mailbox fabric: one channel per (src, dst, tag).
struct Mailboxes {
    txs: Mutex<HashMap<(usize, usize, u64), Sender<Payload>>>,
    rxs: Mutex<HashMap<(usize, usize, u64), Receiver<Payload>>>,
}

impl Mailboxes {
    fn channel(&self, key: (usize, usize, u64)) -> (Sender<Payload>, Receiver<Payload>) {
        let mut txs = self.txs.lock();
        let mut rxs = self.rxs.lock();
        txs.entry(key).or_insert_with(|| {
            let (tx, rx) = unbounded();
            rxs.insert(key, rx);
            tx
        });
        (txs[&key].clone(), rxs[&key].clone())
    }
}

/// A per-rank handle to the functional MPI world.
#[derive(Clone)]
pub struct MpiWorld {
    rank: usize,
    size: usize,
    boxes: Arc<Mailboxes>,
}

impl MpiWorld {
    /// Create handles for all ranks of a world of `size`.
    pub fn create(size: usize) -> Vec<MpiWorld> {
        let boxes = Arc::new(Mailboxes {
            txs: Mutex::new(HashMap::new()),
            rxs: Mutex::new(HashMap::new()),
        });
        (0..size)
            .map(|rank| MpiWorld {
                rank,
                size,
                boxes: boxes.clone(),
            })
            .collect()
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Blocking typed send (MPI_Send).
    pub fn send<T: Copy>(&self, data: &[T], dst: usize, tag: u64) {
        let bytes = unsafe {
            std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data))
        }
        .to_vec();
        let (tx, _) = self.boxes.channel((self.rank, dst, tag));
        tx.send(bytes).expect("mpi world channel open");
    }

    /// Blocking typed receive (MPI_Recv).
    pub fn recv<T: Copy + Default>(&self, count: usize, src: usize, tag: u64) -> Vec<T> {
        let (_, rx) = self.boxes.channel((src, self.rank, tag));
        let bytes = rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("mpi recv timed out: mismatched program");
        assert_eq!(
            bytes.len(),
            count * std::mem::size_of::<T>(),
            "message size mismatch"
        );
        let mut out = vec![T::default(); count];
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                out.as_mut_ptr().cast::<u8>(),
                bytes.len(),
            );
        }
        out
    }

    /// Binomial-tree broadcast (MPI_Bcast).
    pub fn bcast<T: Copy + Default>(&self, data: &mut Vec<T>, count: usize, root: usize, tag: u64) {
        let vrank = (self.rank + self.size - root) % self.size;
        // Receive from parent (if any), then forward to children.
        if vrank != 0 {
            let hb = usize::BITS - 1 - vrank.leading_zeros();
            let parent_v = vrank & !(1usize << hb);
            let parent = (parent_v + root) % self.size;
            *data = self.recv::<T>(count, parent, tag);
        }
        let start = if vrank == 0 {
            0
        } else {
            usize::BITS - vrank.leading_zeros()
        } as usize;
        let mut j = start;
        loop {
            let child_v = vrank + (1usize << j);
            if child_v >= self.size {
                break;
            }
            let child = (child_v + root) % self.size;
            self.send(&data[..count], child, tag);
            j += 1;
        }
    }

    /// Binomial-tree reduce (MPI_Reduce) with a fold closure.
    pub fn reduce<T: Copy + Default>(
        &self,
        contribution: &[T],
        root: usize,
        tag: u64,
        fold: impl Fn(T, T) -> T,
    ) -> Option<Vec<T>> {
        let count = contribution.len();
        let vrank = (self.rank + self.size - root) % self.size;
        let mut acc: Vec<T> = contribution.to_vec();
        // Gather from children (reverse binomial order), folding in place.
        let start = if vrank == 0 {
            0
        } else {
            usize::BITS - vrank.leading_zeros()
        } as usize;
        let mut children = Vec::new();
        let mut j = start;
        loop {
            let child_v = vrank + (1usize << j);
            if child_v >= self.size {
                break;
            }
            children.push((child_v + root) % self.size);
            j += 1;
        }
        // Children must be folded deepest-first (they complete their own
        // subtree before sending).
        for &child in children.iter().rev() {
            let theirs = self.recv::<T>(count, child, tag);
            for (a, b) in acc.iter_mut().zip(theirs) {
                *a = fold(*a, b);
            }
        }
        if vrank == 0 {
            Some(acc)
        } else {
            let hb = usize::BITS - 1 - vrank.leading_zeros();
            let parent_v = vrank & !(1usize << hb);
            let parent = (parent_v + root) % self.size;
            self.send(&acc, parent, tag);
            None
        }
    }

    /// Linear scatter (MPI_Scatter); `data` is `count × size` at the root.
    pub fn scatter<T: Copy + Default>(
        &self,
        data: Option<&[T]>,
        count: usize,
        root: usize,
        tag: u64,
    ) -> Vec<T> {
        if self.rank == root {
            let data = data.expect("root provides the scatter source");
            assert_eq!(data.len(), count * self.size);
            for r in 0..self.size {
                if r != root {
                    self.send(&data[r * count..(r + 1) * count], r, tag);
                }
            }
            data[root * count..(root + 1) * count].to_vec()
        } else {
            self.recv::<T>(count, root, tag)
        }
    }

    /// Linear gather (MPI_Gather); returns `count × size` at the root.
    pub fn gather<T: Copy + Default>(
        &self,
        contribution: &[T],
        root: usize,
        tag: u64,
    ) -> Option<Vec<T>> {
        let count = contribution.len();
        if self.rank == root {
            let mut out = vec![T::default(); count * self.size];
            out[root * count..(root + 1) * count].copy_from_slice(contribution);
            for r in 0..self.size {
                if r != root {
                    let theirs = self.recv::<T>(count, r, tag);
                    out[r * count..(r + 1) * count].copy_from_slice(&theirs);
                }
            }
            Some(out)
        } else {
            self.send(contribution, root, tag);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_world<T: Send + 'static>(
        size: usize,
        f: impl Fn(MpiWorld) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let worlds = MpiWorld::create(size);
        let handles: Vec<_> = worlds
            .into_iter()
            .map(|w| {
                let f = f.clone();
                std::thread::spawn(move || f(w))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn send_recv() {
        let results = run_world(2, |w| {
            if w.rank() == 0 {
                w.send(&[1i32, 2, 3], 1, 0);
                Vec::new()
            } else {
                w.recv::<i32>(3, 0, 0)
            }
        });
        assert_eq!(results[1], vec![1, 2, 3]);
    }

    #[test]
    fn bcast_all_roots() {
        for root in 0..5 {
            let results = run_world(5, move |w| {
                let mut data = if w.rank() == root {
                    (0..7i64).map(|i| i * 11).collect()
                } else {
                    Vec::new()
                };
                w.bcast(&mut data, 7, root, 1);
                data
            });
            for r in results {
                assert_eq!(r, (0..7i64).map(|i| i * 11).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn reduce_sum() {
        let results = run_world(8, |w| {
            let contrib: Vec<f64> = (0..10).map(|i| (w.rank() * 10 + i) as f64).collect();
            w.reduce(&contrib, 3, 2, |a, b| a + b)
        });
        for (rank, res) in results.into_iter().enumerate() {
            if rank == 3 {
                let want: Vec<f64> = (0..10)
                    .map(|i| (0..8).map(|r| (r * 10 + i) as f64).sum())
                    .collect();
                assert_eq!(res.unwrap(), want);
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let results = run_world(4, |w| {
            let source: Option<Vec<i32>> =
                (w.rank() == 1).then(|| (0..4 * 6).map(|i| i * 2).collect());
            let slice = w.scatter(source.as_deref(), 6, 1, 3);
            w.gather(&slice, 1, 4)
        });
        let gathered = results[1].clone().unwrap();
        assert_eq!(gathered, (0..24).map(|i| i * 2).collect::<Vec<i32>>());
    }
}
