//! The staged-copy cost model for host-path point-to-point transfers.

use crate::params::HostPathParams;

/// Point-to-point host-path model (Fig. 9 / Table 3 baseline).
#[derive(Debug, Clone)]
pub struct HostPathModel {
    params: HostPathParams,
}

impl HostPathModel {
    /// Model with explicit constants.
    pub fn new(params: HostPathParams) -> Self {
        HostPathModel { params }
    }

    /// The constants in use.
    pub fn params(&self) -> &HostPathParams {
        &self.params
    }

    #[inline]
    fn gbit(bytes: usize) -> f64 {
        bytes as f64 * 8.0 / 1e9
    }

    /// Time to move `bytes` through a stage of the given rate, µs.
    #[inline]
    fn stage_us(bytes: usize, rate_gbit_s: f64) -> f64 {
        Self::gbit(bytes) / rate_gbit_s * 1e6
    }

    /// One OpenCL device↔host transfer, µs.
    pub fn opencl_transfer_us(&self, bytes: usize) -> f64 {
        self.params.opencl_transfer_overhead_us + Self::stage_us(bytes, self.params.pcie_gbit_s)
    }

    /// Device-memory write or read of the message by the kernel, µs.
    pub fn device_dram_us(&self, bytes: usize) -> f64 {
        Self::stage_us(bytes, self.params.device_dram_gbit_s)
    }

    /// MPI host-to-host send (one hop on the host network), µs.
    pub fn mpi_p2p_us(&self, bytes: usize) -> f64 {
        let p = &self.params;
        let mut t = p.mpi_latency_us + Self::stage_us(bytes, p.network_gbit_s);
        // Staging copies (send and receive side).
        t += 2.0 * Self::stage_us(bytes, p.host_memcpy_gbit_s);
        if bytes > p.mpi_eager_limit_bytes {
            t += p.rendezvous_overhead_us;
        }
        t
    }

    /// Full one-way end-to-end transfer FPGA→FPGA through the hosts, µs
    /// (the paper's latency benchmark measures exactly this path).
    pub fn e2e_p2p_us(&self, bytes: usize) -> f64 {
        let p = &self.params;
        self.device_dram_us(bytes)
            + p.opencl_transfer_overhead_us
            + Self::stage_us(bytes, p.pcie_gbit_s)
            + p.host_dispatch_us
            + self.mpi_p2p_us(bytes)
            + p.opencl_transfer_overhead_us
            + Self::stage_us(bytes, p.pcie_gbit_s)
            + self.device_dram_us(bytes)
    }

    /// Effective payload bandwidth of the end-to-end path, Gbit/s.
    pub fn e2e_bandwidth_gbit_s(&self, bytes: usize) -> f64 {
        Self::gbit(bytes) / (self.e2e_p2p_us(bytes) / 1e6)
    }
}

impl Default for HostPathModel {
    fn default() -> Self {
        HostPathModel::new(HostPathParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_matches_paper_table3() {
        // Paper: MPI+OpenCL one-way latency 36.61 µs for a small message.
        let m = HostPathModel::default();
        let t = m.e2e_p2p_us(4);
        assert!(
            (34.0..39.0).contains(&t),
            "one-way small-message latency {t} µs should be ≈36.6"
        );
    }

    #[test]
    fn large_message_bandwidth_is_about_a_third_of_smi() {
        // Paper Fig. 9: host path ≈ 11-12 Gbit/s vs SMI's 35 Gbit/s.
        let m = HostPathModel::default();
        let bw = m.e2e_bandwidth_gbit_s(64 * 1024 * 1024);
        assert!(
            (10.0..13.5).contains(&bw),
            "large-message bandwidth {bw} Gbit/s"
        );
    }

    #[test]
    fn bandwidth_monotone_in_size() {
        let m = HostPathModel::default();
        let mut last = 0.0;
        for kb in [1usize, 16, 256, 4096, 65536] {
            let bw = m.e2e_bandwidth_gbit_s(kb * 1024);
            assert!(bw > last, "bandwidth must grow with message size");
            last = bw;
        }
    }

    #[test]
    fn eager_vs_rendezvous_step() {
        let m = HostPathModel::default();
        let p = m.params().clone();
        let below = m.mpi_p2p_us(p.mpi_eager_limit_bytes);
        let above = m.mpi_p2p_us(p.mpi_eager_limit_bytes + 1);
        assert!(above > below + p.rendezvous_overhead_us * 0.9);
    }
}
