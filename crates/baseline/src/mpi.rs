//! MPI collective cost models over the host path.
//!
//! Production MPIs switch collective algorithms by message size; the models
//! here follow the standard choices (binomial trees for latency-bound sizes,
//! bandwidth-optimal scatter+allgather Bcast and Rabenseifner
//! reduce-scatter+gather Reduce beyond) so the baseline is a *fair* one, as
//! in the paper's Fig. 10/11 comparison.
//!
//! Every collective pays the OpenCL device↔host hops at the participating
//! ranks: the data starts in device memory and the results must return
//! there.

use crate::hostpath::HostPathModel;

/// Collective cost model on top of the host path.
#[derive(Debug, Clone, Default)]
pub struct MpiCollectives {
    model: HostPathModel,
}

impl MpiCollectives {
    /// Build from a host-path model.
    pub fn new(model: HostPathModel) -> Self {
        MpiCollectives { model }
    }

    /// The underlying host-path model.
    pub fn model(&self) -> &HostPathModel {
        &self.model
    }

    fn log2_ceil(n: usize) -> u32 {
        (usize::BITS - (n.max(1) - 1).leading_zeros()).max(1)
    }

    /// Host-level MPI_Bcast time, µs (no OpenCL hops).
    ///
    /// Binomial tree at every size: OpenMPI 3.1's tuned decision function
    /// for 8 ranks stays on binomial/pipelined broadcast throughout this
    /// sweep's message range, and the paper's measured MPI+OpenCL curve
    /// matches the binomial bound (≈3 × p2p, e.g. ≈8 ms at 4 MB) rather
    /// than the bandwidth-optimal scatter+allgather one.
    pub fn mpi_bcast_host_us(&self, bytes: usize, ranks: usize) -> f64 {
        if ranks <= 1 || bytes == 0 {
            return 0.0;
        }
        let rounds = Self::log2_ceil(ranks) as f64;
        rounds * self.model.mpi_p2p_us(bytes)
    }

    /// Host-level MPI_Reduce time, µs (no OpenCL hops).
    pub fn mpi_reduce_host_us(&self, bytes: usize, ranks: usize) -> f64 {
        if ranks <= 1 || bytes == 0 {
            return 0.0;
        }
        let rounds = Self::log2_ceil(ranks) as f64;
        let p2p = self.model.mpi_p2p_us(bytes);
        let fold = |b: usize| b as f64 * 8.0 / 1e9 / self.model.params().host_compute_gbit_s * 1e6;
        // Small: binomial tree, folding at every stage.
        let binomial = rounds * (p2p + fold(bytes));
        // Large: Rabenseifner — reduce-scatter + gather: ~2·(N-1)/N of the
        // data over the wire and one full fold, split across ranks.
        let frac = 2.0 * (ranks as f64 - 1.0) / ranks as f64;
        let rabenseifner = frac
            * (bytes as f64 * 8.0 / 1e9 / self.model.params().network_gbit_s * 1e6
                + bytes as f64 * 8.0 / 1e9 / self.model.params().host_memcpy_gbit_s * 1e6)
            + fold(bytes)
            + 2.0 * rounds * self.model.params().mpi_latency_us;
        binomial.min(rabenseifner)
    }

    /// Full MPI+OpenCL Bcast (Fig. 10 baseline): D2H at the root, host
    /// broadcast, H2D everywhere (the H2D hops happen in parallel across
    /// ranks — one is on the critical path).
    pub fn bcast_us(&self, bytes: usize, ranks: usize) -> f64 {
        if ranks <= 1 || bytes == 0 {
            return 0.0;
        }
        self.model.device_dram_us(bytes)
            + self.model.opencl_transfer_us(bytes)
            + self.mpi_bcast_host_us(bytes, ranks)
            + self.model.opencl_transfer_us(bytes)
            + self.model.device_dram_us(bytes)
    }

    /// Full MPI+OpenCL Reduce (Fig. 11 baseline): D2H everywhere (parallel),
    /// host reduce, H2D at the root.
    pub fn reduce_us(&self, bytes: usize, ranks: usize) -> f64 {
        if ranks <= 1 || bytes == 0 {
            return 0.0;
        }
        self.model.device_dram_us(bytes)
            + self.model.opencl_transfer_us(bytes)
            + self.mpi_reduce_host_us(bytes, ranks)
            + self.model.opencl_transfer_us(bytes)
            + self.model.device_dram_us(bytes)
    }

    /// Full MPI+OpenCL Scatter: D2H of the whole buffer at the root, linear
    /// host scatter, per-rank H2D.
    pub fn scatter_us(&self, bytes_per_rank: usize, ranks: usize) -> f64 {
        if ranks <= 1 || bytes_per_rank == 0 {
            return 0.0;
        }
        let total = bytes_per_rank * ranks;
        self.model.opencl_transfer_us(total)
            + (ranks - 1) as f64 * self.model.mpi_p2p_us(bytes_per_rank)
            + self.model.opencl_transfer_us(bytes_per_rank)
    }

    /// Full MPI+OpenCL Gather: per-rank D2H (parallel), linear host gather,
    /// root H2D of the whole buffer.
    pub fn gather_us(&self, bytes_per_rank: usize, ranks: usize) -> f64 {
        if ranks <= 1 || bytes_per_rank == 0 {
            return 0.0;
        }
        let total = bytes_per_rank * ranks;
        self.model.opencl_transfer_us(bytes_per_rank)
            + (ranks - 1) as f64 * self.model.mpi_p2p_us(bytes_per_rank)
            + self.model.opencl_transfer_us(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bcast_grows_with_ranks_and_size() {
        let m = MpiCollectives::default();
        assert!(m.bcast_us(1 << 20, 8) > m.bcast_us(1 << 20, 4));
        assert!(m.bcast_us(1 << 20, 8) > m.bcast_us(1 << 10, 8));
    }

    #[test]
    fn small_collectives_dominated_by_opencl_overhead() {
        // Paper Fig. 10/11: the MPI+OpenCL curves are flat ≈ 50-100 µs for
        // small sizes — the two OpenCL hops plus a few MPI latencies.
        let m = MpiCollectives::default();
        let t = m.bcast_us(4, 8);
        assert!((30.0..120.0).contains(&t), "small bcast {t} µs");
        let t = m.reduce_us(4, 8);
        assert!((30.0..120.0).contains(&t), "small reduce {t} µs");
    }

    #[test]
    fn algorithm_switch_keeps_times_sane() {
        let m = MpiCollectives::default();
        // Large bcast should beat pure binomial (bandwidth-optimal path).
        let bytes = 4 << 20;
        let rounds = 3.0;
        let binomial = rounds * m.model().mpi_p2p_us(bytes);
        assert!(m.mpi_bcast_host_us(bytes, 8) <= binomial + 1e-9);
        // And reduce large is cheaper than binomial too.
        let fold = bytes as f64 * 8.0 / 1e9 / m.model().params().host_compute_gbit_s * 1e6;
        let binom_red = rounds * (m.model().mpi_p2p_us(bytes) + fold);
        assert!(m.mpi_reduce_host_us(bytes, 8) <= binom_red + 1e-9);
    }

    #[test]
    fn degenerate_cases_zero() {
        let m = MpiCollectives::default();
        assert_eq!(m.bcast_us(0, 8), 0.0);
        assert_eq!(m.reduce_us(1024, 1), 0.0);
        assert_eq!(m.scatter_us(0, 4), 0.0);
        assert_eq!(m.gather_us(16, 1), 0.0);
    }
}
