//! # smi-baseline — the MPI+OpenCL host-path comparator
//!
//! The paper's baseline moves data "through the host stack, where data is
//! usually transported via PCI Express (PCIe) to the main memory, and then
//! through a different PCIe channel to the network interface" (§1, §5.3.1):
//!
//! ```text
//! FPGA kernel → device DRAM → PCIe D2H → host DRAM → MPI (Omni-Path)
//!            → remote host DRAM → PCIe H2D → remote device DRAM → kernel
//! ```
//!
//! This crate provides:
//!
//! * [`params::HostPathParams`] — the per-stage cost constants, calibrated
//!   against the paper's measurements (36.61 µs one-way latency, ≈⅓ of the
//!   SMI bandwidth at large sizes).
//! * [`hostpath`] — the staged-copy cost model for point-to-point transfers.
//! * [`mpi`] — MPI collective-algorithm cost models (binomial-tree Bcast —
//!   what OpenMPI 3.1 runs across this sweep's sizes — and binomial /
//!   Rabenseifner Reduce, switching by message size).
//! * [`functional`] — a small, thread-based *functional* MPI world
//!   (send/recv/bcast/reduce/scatter/gather over host memory) used to run
//!   the baseline versions of the applications and cross-check results
//!   against the SMI runtime.

#![warn(missing_docs)]

pub mod functional;
pub mod hostpath;
pub mod mpi;
pub mod params;

pub use hostpath::HostPathModel;
pub use params::HostPathParams;
