//! The MPI+OpenCL-style baseline of distributed GESUMMV: the same
//! functional decomposition as [`crate::gesummv::functional`], but over the
//! host-memory MPI world — bulk buffers and an `MPI_Send`, the way the
//! paper's comparison systems move data. Used to cross-check results and to
//! contrast the programming models (bulk transfer vs streaming push/pop).

use smi_baseline::functional::MpiWorld;

use super::reference::dot;
use super::GesummvProblem;

/// Run the 2-rank baseline: rank 0 computes the full `q1 = A·x` buffer and
/// sends it in one bulk message; rank 1 computes `q2 = B·x` and the AXPY.
pub fn run_distributed_mpi(p: &GesummvProblem) -> Vec<f32> {
    let worlds = MpiWorld::create(2);
    let rows = p.rows;
    let cols = p.cols;
    let (alpha, beta) = (p.alpha, p.beta);
    let a = p.a.clone();
    let b = p.b.clone();
    let x = p.x.clone();

    let mut handles = Vec::new();
    for w in worlds {
        let (a, b, x) = (a.clone(), b.clone(), x.clone());
        handles.push(std::thread::spawn(move || -> Vec<f32> {
            if w.rank() == 0 {
                // Bulk-compute the whole partial result, then one MPI_Send —
                // "the model relies on bulk transfers" (§2.1.1).
                let q1: Vec<f32> = (0..rows)
                    .map(|i| dot(&a[i * cols..(i + 1) * cols], &x))
                    .collect();
                w.send(&q1, 1, 0);
                Vec::new()
            } else {
                let q1 = w.recv::<f32>(rows, 0, 0);
                (0..rows)
                    .map(|i| {
                        let q2 = dot(&b[i * cols..(i + 1) * cols], &x);
                        alpha * q1[i] + beta * q2
                    })
                    .collect()
            }
        }));
    }
    let mut results: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    results.swap_remove(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gesummv::{functional, reference};
    use smi::prelude::RuntimeParams;

    #[test]
    fn mpi_baseline_matches_reference() {
        let p = GesummvProblem::random(64, 48, 21);
        assert_eq!(run_distributed_mpi(&p), reference::gesummv(&p));
    }

    #[test]
    fn mpi_baseline_and_smi_agree() {
        // The two distributed implementations (bulk MPI vs streaming SMI)
        // compute identical results — the paper's point is that SMI gets
        // there without the bulk buffers and host round-trips.
        let p = GesummvProblem::random(96, 96, 22);
        let mpi = run_distributed_mpi(&p);
        let smi = functional::run_distributed(&p, RuntimeParams::default()).unwrap();
        assert_eq!(mpi, smi);
    }
}
