//! Distributed GESUMMV on the SMI runtime (functional plane).
//!
//! The paper's MPMD decomposition (Fig. 12, right): rank 0 runs `GEMV(A, x)`
//! and streams its result elements into an SMI channel; rank 1 runs
//! `GEMV(B, x)` and the AXPY, popping rank 0's partials from the network —
//! "a difference of 8 lines of code" against the single-chip version.

use smi::env::SmiCtx;
use smi::prelude::*;

use super::reference::dot;
use super::GesummvProblem;

/// Single-"FPGA" composition: both GEMVs and the AXPY execute locally
/// (the Fig. 12 left structure, run serially — the functional plane has no
/// notion of time, only of data paths).
pub fn run_single(p: &GesummvProblem) -> Vec<f32> {
    super::reference::gesummv(p)
}

/// Distributed 2-rank MPMD GESUMMV over the SMI runtime. Returns `y`,
/// computed at rank 1 with rank 0's `αAx` partials arriving over the
/// network.
pub fn run_distributed(
    p: &GesummvProblem,
    params: RuntimeParams,
) -> Result<Vec<f32>, Box<dyn std::error::Error>> {
    let topo = Topology::bus(2);
    let metas = vec![
        ProgramMeta::new().with(OpSpec::send(0, Datatype::Float)),
        ProgramMeta::new().with(OpSpec::recv(0, Datatype::Float)),
    ];
    let rows = p.rows;
    let cols = p.cols;
    // Rank 0 owns A and x; rank 1 owns B, x and the scalars.
    let a = p.a.clone();
    let x0 = p.x.clone();
    let b = p.b.clone();
    let x1 = p.x.clone();
    let (alpha, beta) = (p.alpha, p.beta);

    type Prog = Box<dyn FnOnce(SmiCtx) -> Vec<f32> + Send>;
    let rank0: Prog = Box::new(move |ctx| {
        // GEMV(A, x) — pushes one result element per row, exactly where the
        // single-chip version would push into a local FIFO.
        let mut ch = ctx
            .open_send_channel::<f32>(rows as u64, 1, 0)
            .expect("send channel");
        for i in 0..rows {
            let q1 = dot(&a[i * cols..(i + 1) * cols], &x0);
            ch.push(&q1).expect("push partial");
        }
        Vec::new()
    });
    let rank1: Prog = Box::new(move |ctx| {
        let mut ch = ctx
            .open_recv_channel::<f32>(rows as u64, 0, 0)
            .expect("recv channel");
        let mut y = Vec::with_capacity(rows);
        for i in 0..rows {
            let q2 = dot(&b[i * cols..(i + 1) * cols], &x1);
            let q1 = ch.pop().expect("pop partial");
            y.push(alpha * q1 + beta * q2);
        }
        y
    });
    let report = run_mpmd(&topo, metas, vec![rank0, rank1], params)?;
    Ok(report.results.into_iter().nth(1).expect("rank 1 result"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gesummv::reference;

    #[test]
    fn distributed_matches_reference_bitwise() {
        let p = GesummvProblem::random(64, 64, 7);
        let want = reference::gesummv(&p);
        let got = run_distributed(&p, RuntimeParams::default()).unwrap();
        assert_eq!(got, want, "identical fold order must give identical bits");
    }

    #[test]
    fn rectangular_cases() {
        for (rows, cols) in [(16, 48), (48, 16), (33, 15)] {
            let p = GesummvProblem::random(rows, cols, 99);
            let want = reference::gesummv(&p);
            let got = run_distributed(&p, RuntimeParams::default()).unwrap();
            assert_eq!(got, want, "{rows}x{cols}");
        }
    }

    #[test]
    fn tight_buffers_still_correct() {
        let p = GesummvProblem::random(128, 32, 3);
        let want = reference::gesummv(&p);
        let got = run_distributed(&p, RuntimeParams::tight()).unwrap();
        assert_eq!(got, want);
    }
}
