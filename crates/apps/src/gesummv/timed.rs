//! Cycle-timed GESUMMV on the fabric (regenerates Fig. 13).
//!
//! "As these routines are memory-bound, the computation is bottlenecked by
//! memory bandwidth" — the GEMV engines stream their matrices from a
//! [`smi_fabric::memory::DramPool`]; single-chip, both engines share one
//! device's pool, while the distributed version gives each engine a full
//! device ("the full
//! application thus gains access to twice the memory bandwidth across the
//! two FPGAs").

use smi_codegen::{ClusterDesign, OpSpec, ProgramMeta};
use smi_fabric::apps::stream::{new_probe, ProbeHandle};
use smi_fabric::builder::FabricBuilder;
use smi_fabric::engine::{Component, SimError, Status};
use smi_fabric::fifo::{FifoId, FifoPool};
use smi_fabric::memory::{ConsumerId, DramPoolHandle};
use smi_fabric::params::FabricParams;
use smi_topology::{RoutingPlan, Topology};
use smi_wire::{Datatype, Framer, NetworkPacket, PacketOp};

/// Timing parameters for GESUMMV.
#[derive(Debug, Clone)]
pub struct GesummvTimedParams {
    /// Platform constants.
    pub fabric: FabricParams,
    /// Streaming bandwidth one GEMV engine can draw when alone on a device,
    /// in f32 elements/cycle. Calibrated to Fig. 13's absolute times
    /// (≈2.8 ms for N=4096 distributed → ≈24 GB/s at 300 MHz, the paper's
    /// FBLAS GEMV achieved bandwidth).
    pub gemv_mem_elems_per_cycle: f64,
}

impl Default for GesummvTimedParams {
    fn default() -> Self {
        GesummvTimedParams {
            fabric: FabricParams::default(),
            gemv_mem_elems_per_cycle: 20.0,
        }
    }
}

/// Result of one timed run.
#[derive(Debug, Clone, PartialEq)]
pub struct GesummvTimedResult {
    /// Total cycles until the AXPY produced the last output element.
    pub cycles: u64,
    /// Milliseconds at the configured kernel clock.
    pub time_ms: f64,
}

/// A streaming GEMV engine: fetches its `rows × cols` matrix through the
/// memory pool and emits one partial-result element per completed row into
/// an output FIFO (framed as SMI packets — the identical code path feeds a
/// local FIFO or a network channel, which is the point of the paper's
/// Fig. 12).
struct GemvEngine {
    name: String,
    pool: DramPoolHandle,
    consumer: ConsumerId,
    rows: u64,
    cols: u64,
    fetched: f64,
    rows_done: u64,
    framer: Framer,
    out: FifoId,
    pending: Option<NetworkPacket>,
}

impl GemvEngine {
    #[allow(clippy::too_many_arguments)]
    fn new(
        name: impl Into<String>,
        pool: DramPoolHandle,
        rows: u64,
        cols: u64,
        out: FifoId,
        src: u8,
        dst: u8,
        port: u8,
    ) -> Self {
        let consumer = pool.borrow_mut().register();
        GemvEngine {
            name: name.into(),
            pool,
            consumer,
            rows,
            cols,
            fetched: 0.0,
            rows_done: 0,
            framer: Framer::new(Datatype::Float, src, dst, port, PacketOp::Send),
            out,
            pending: None,
        }
    }
}

impl Component for GemvEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64, fifos: &mut FifoPool) -> Status {
        if let Some(pkt) = self.pending.take() {
            if fifos.can_push(self.out) {
                fifos.push(self.out, pkt);
                return Status::Active;
            }
            self.pending = Some(pkt);
            return Status::Idle;
        }
        if self.rows_done == self.rows {
            return Status::Done;
        }
        // Stream matrix elements.
        let total = (self.rows * self.cols) as f64;
        let want = (total - self.fetched).max(0.0);
        if want > 0.0 {
            let rate = self.pool.borrow().rate();
            let granted = self
                .pool
                .borrow_mut()
                .try_consume(self.consumer, want.min(rate));
            self.fetched += granted;
        }
        // Emit result elements for completed rows (≤ one packet per cycle).
        let mut emitted_any = false;
        while self.rows_done < self.rows
            && self.fetched >= ((self.rows_done + 1) * self.cols) as f64
            && self.pending.is_none()
        {
            let value = self.rows_done as f32; // timing plane: value is a tag
            if let Some(pkt) = self.framer.push(&value) {
                self.pending = Some(pkt);
            }
            self.rows_done += 1;
            emitted_any = true;
        }
        if self.rows_done == self.rows && self.pending.is_none() {
            self.pending = self.framer.flush();
        }
        if let Some(pkt) = self.pending.take() {
            if fifos.can_push(self.out) {
                fifos.push(self.out, pkt);
            } else {
                self.pending = Some(pkt);
            }
        }
        if self.rows_done == self.rows && self.pending.is_none() {
            Status::Done
        } else if emitted_any || want > 0.0 {
            Status::Active
        } else {
            Status::Idle
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}

/// The AXPY stage: pairs q1 (possibly remote) and q2 (local) element
/// streams and counts produced outputs.
struct AxpyEngine {
    name: String,
    q1: FifoId,
    q2: FifoId,
    q1_avail: u64,
    q2_avail: u64,
    produced: u64,
    rows: u64,
    probe: ProbeHandle,
}

impl Component for AxpyEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64, fifos: &mut FifoPool) -> Status {
        if self.produced == self.rows {
            return Status::Done;
        }
        let mut acted = false;
        if self.q1_avail == 0 && fifos.can_pop(self.q1) {
            self.q1_avail += fifos.pop(self.q1).header.count as u64;
            acted = true;
        }
        if self.q2_avail == 0 && fifos.can_pop(self.q2) {
            self.q2_avail += fifos.pop(self.q2).header.count as u64;
            acted = true;
        }
        let k = self.q1_avail.min(self.q2_avail);
        if k > 0 {
            self.q1_avail -= k;
            self.q2_avail -= k;
            self.produced += k;
            let mut p = self.probe.borrow_mut();
            if p.first_cycle.is_none() {
                p.first_cycle = Some(cycle);
            }
            p.last_cycle = Some(cycle);
            p.elements += k;
            acted = true;
        }
        if self.produced == self.rows {
            Status::Done
        } else if acted {
            Status::Active
        } else {
            Status::Idle
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}

/// Single-FPGA GESUMMV: both GEMVs share one memory pool; everything local.
pub fn run_single_timed(
    rows: u64,
    cols: u64,
    params: &GesummvTimedParams,
) -> Result<GesummvTimedResult, SimError> {
    let topo = Topology::bus(1);
    let plan = RoutingPlan::compute(&topo).expect("trivial plan");
    let design = ClusterDesign::spmd(&ProgramMeta::new(), &topo).expect("empty design");
    let mut b = FabricBuilder::new(topo, plan, design, params.fabric.clone());
    let pool = b.add_dram_pool("fpga0.mem", params.gemv_mem_elems_per_cycle);
    let q1 = b.add_local_fifo("gemvA->axpy", 16);
    let q2 = b.add_local_fifo("gemvB->axpy", 16);
    b.add_component(GemvEngine::new(
        "gemvA",
        pool.clone(),
        rows,
        cols,
        q1,
        0,
        0,
        0,
    ));
    b.add_component(GemvEngine::new("gemvB", pool, rows, cols, q2, 0, 0, 0));
    let probe = new_probe();
    b.add_component(AxpyEngine {
        name: "axpy".into(),
        q1,
        q2,
        q1_avail: 0,
        q2_avail: 0,
        produced: 0,
        rows,
        probe,
    });
    let mut fabric = b.finalize();
    let budget = (2.0 * rows as f64 * cols as f64 / params.gemv_mem_elems_per_cycle * 4.0) as u64
        + 1_000_000;
    let report = fabric.run(budget)?;
    Ok(GesummvTimedResult {
        cycles: report.cycles,
        time_ms: params.fabric.cycles_to_us(report.cycles) / 1e3,
    })
}

/// Distributed 2-rank GESUMMV: rank 0's GEMV streams partials over SMI.
pub fn run_distributed_timed(
    rows: u64,
    cols: u64,
    params: &GesummvTimedParams,
) -> Result<GesummvTimedResult, SimError> {
    let topo = Topology::bus(2);
    let plan = RoutingPlan::compute(&topo).expect("plan");
    let metas = vec![
        ProgramMeta::new().with(OpSpec::send(0, Datatype::Float)),
        ProgramMeta::new().with(OpSpec::recv(0, Datatype::Float)),
    ];
    let design = ClusterDesign::mpmd(&metas, &topo).expect("design");
    let mut b = FabricBuilder::new(topo, plan, design, params.fabric.clone());
    let pool0 = b.add_dram_pool("fpga0.mem", params.gemv_mem_elems_per_cycle);
    let pool1 = b.add_dram_pool("fpga1.mem", params.gemv_mem_elems_per_cycle);
    let to_net = b.register_send(0, 0);
    let from_net = b.register_recv(1, 0);
    let q2 = b.add_local_fifo("gemvB->axpy", 16);
    b.add_component(GemvEngine::new(
        "gemvA@r0", pool0, rows, cols, to_net, 0, 1, 0,
    ));
    b.add_component(GemvEngine::new("gemvB@r1", pool1, rows, cols, q2, 1, 1, 0));
    let probe = new_probe();
    b.add_component(AxpyEngine {
        name: "axpy@r1".into(),
        q1: from_net,
        q2,
        q1_avail: 0,
        q2_avail: 0,
        produced: 0,
        rows,
        probe,
    });
    let mut fabric = b.finalize();
    let budget =
        (rows as f64 * cols as f64 / params.gemv_mem_elems_per_cycle * 4.0) as u64 + 1_000_000;
    let report = fabric.run(budget)?;
    Ok(GesummvTimedResult {
        cycles: report.cycles,
        time_ms: params.fabric.cycles_to_us(report.cycles) / 1e3,
    })
}

/// One Fig. 13 data point: `(single, distributed, speedup)`.
pub fn fig13_point(
    rows: u64,
    cols: u64,
    params: &GesummvTimedParams,
) -> Result<(GesummvTimedResult, GesummvTimedResult, f64), SimError> {
    let single = run_single_timed(rows, cols, params)?;
    let dist = run_distributed_timed(rows, cols, params)?;
    let speedup = single.cycles as f64 / dist.cycles as f64;
    Ok((single, dist, speedup))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_is_about_twice_as_fast() {
        let params = GesummvTimedParams::default();
        let (single, dist, speedup) = fig13_point(256, 256, &params).unwrap();
        assert!(single.cycles > dist.cycles);
        assert!((1.8..2.1).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn time_scales_quadratically() {
        // Sizes large enough that the fixed pipeline/latency cost (a few
        // hundred cycles) is negligible against the N²/20-cycle stream.
        let params = GesummvTimedParams::default();
        let small = run_distributed_timed(256, 256, &params).unwrap();
        let large = run_distributed_timed(512, 512, &params).unwrap();
        let ratio = large.cycles as f64 / small.cycles as f64;
        assert!((3.5..4.5).contains(&ratio), "quadratic growth, got {ratio}");
    }

    #[test]
    fn rectangular_shapes_run() {
        let params = GesummvTimedParams::default();
        let (s, d, sp) = fig13_point(128, 512, &params).unwrap();
        assert!(s.cycles > 0 && d.cycles > 0);
        assert!(sp > 1.5);
    }

    #[test]
    fn absolute_time_calibration() {
        // Fig. 13 reports ≈2.8 ms for the distributed 4096² run; the model
        // must land in the same ballpark (±30 %).
        let params = GesummvTimedParams::default();
        let dist = run_distributed_timed(4096, 4096, &params).unwrap();
        assert!(
            (2.0..3.7).contains(&dist.time_ms),
            "distributed 4096²: {} ms (paper: 2.8 ms)",
            dist.time_ms
        );
    }
}
