//! Serial reference implementation of GESUMMV.

use super::GesummvProblem;

/// One matrix-vector product row: `row · x` (the exact fold order the
/// streaming kernels use, so results compare bit-for-bit).
#[inline]
pub fn dot(row: &[f32], x: &[f32]) -> f32 {
    debug_assert_eq!(row.len(), x.len());
    let mut acc = 0.0f32;
    for (a, b) in row.iter().zip(x) {
        acc += a * b;
    }
    acc
}

/// `y = αAx + βBx`, serially.
pub fn gesummv(p: &GesummvProblem) -> Vec<f32> {
    (0..p.rows)
        .map(|i| {
            let row = i * p.cols;
            let q1 = dot(&p.a[row..row + p.cols], &p.x);
            let q2 = dot(&p.b[row..row + p.cols], &p.x);
            p.alpha * q1 + p.beta * q2
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matrix() {
        let mut p = GesummvProblem::random(3, 3, 0);
        p.a = vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        p.b = p.a.clone();
        p.x = vec![2.0, 3.0, 4.0];
        p.alpha = 2.0;
        p.beta = 1.0;
        assert_eq!(gesummv(&p), vec![6.0, 9.0, 12.0]);
    }

    #[test]
    fn rectangular() {
        let mut p = GesummvProblem::random(2, 3, 0);
        p.a = vec![1.0, 1.0, 1.0, 0.0, 0.0, 1.0];
        p.b = vec![0.0; 6];
        p.x = vec![1.0, 2.0, 3.0];
        p.alpha = 1.0;
        p.beta = 7.0;
        assert_eq!(gesummv(&p), vec![6.0, 3.0]);
    }
}
