//! GESUMMV: `y = αAx + βBx` (Extended BLAS), §5.4.1.

pub mod baseline;
pub mod functional;
pub mod reference;
pub mod timed;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Problem definition: `A`, `B` are `rows × cols`, `x` has `cols` elements,
/// `y` has `rows`.
#[derive(Debug, Clone)]
pub struct GesummvProblem {
    /// Output dimension (matrix rows).
    pub rows: usize,
    /// Input dimension (matrix cols).
    pub cols: usize,
    /// Scalar α.
    pub alpha: f32,
    /// Scalar β.
    pub beta: f32,
    /// Matrix A, row-major.
    pub a: Vec<f32>,
    /// Matrix B, row-major.
    pub b: Vec<f32>,
    /// Input vector.
    pub x: Vec<f32>,
}

impl GesummvProblem {
    /// Deterministic random problem (values in ±1 so dot products stay
    /// well-conditioned).
    pub fn random(rows: usize, cols: usize, seed: u64) -> GesummvProblem {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gen =
            |n: usize| -> Vec<f32> { (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect() };
        GesummvProblem {
            rows,
            cols,
            alpha: 1.5,
            beta: -0.5,
            a: gen(rows * cols),
            b: gen(rows * cols),
            x: gen(cols),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic() {
        let p1 = GesummvProblem::random(8, 8, 42);
        let p2 = GesummvProblem::random(8, 8, 42);
        assert_eq!(p1.a, p2.a);
        assert_eq!(p1.x, p2.x);
        let p3 = GesummvProblem::random(8, 8, 43);
        assert_ne!(p1.a, p3.a);
    }

    #[test]
    fn rectangular_shapes() {
        let p = GesummvProblem::random(4, 10, 1);
        assert_eq!(p.a.len(), 40);
        assert_eq!(p.x.len(), 10);
    }
}
