//! # smi-apps — the paper's distributed applications
//!
//! The two §5.4 applications, each in two executions:
//!
//! * **GESUMMV** (`y = αAx + βBx`, Extended BLAS): a single-FPGA version
//!   (two GEMV kernels sharing one device's memory bandwidth, feeding an
//!   AXPY) and the distributed MPMD version (rank 0's GEMV streams its
//!   partial results to rank 1 over an SMI channel — the paper's Fig. 12,
//!   an 8-line change).
//! * **2D 4-point stencil** with SPMD halo exchange (Fig. 14 / Lst. 3):
//!   2D domain decomposition, per-iteration transient channels to the four
//!   neighbours, spatial reuse within each rank.
//!
//! Each application has:
//!
//! * a serial **reference** implementation,
//! * a **functional** distributed implementation on the thread-based `smi`
//!   runtime (results verified against the reference bit-for-bit), and
//! * a **timed** implementation on the cycle-level `smi-fabric` (DRAM
//!   bandwidth pools + SMI transport) that regenerates Figs. 13, 15, 16.

#![warn(missing_docs)]

pub mod gesummv;
pub mod stencil;
