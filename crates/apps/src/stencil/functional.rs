//! SPMD distributed stencil on the SMI runtime (functional plane).
//!
//! Implements the paper's Lst. 3: per timestep, each rank opens transient
//! channels to its grid neighbours (distinct port per direction) and
//! exchanges halos while sweeping its local block. The domain is
//! decomposed in two dimensions; results are verified bit-for-bit against
//! the serial reference.
//!
//! Deadlock discipline: ranks alternate send/receive order by checkerboard
//! parity, so the exchange is correct "even if the system provides no
//! buffering" (§3.3).

use smi::env::SmiCtx;
use smi::prelude::*;

use super::{ports, RankGrid, StencilProblem};

/// Distributed stencil outcome: the reassembled global grid.
pub fn run_distributed(
    p: &StencilProblem,
    grid: RankGrid,
    topo: &Topology,
    params: RuntimeParams,
) -> Result<Vec<f32>, Box<dyn std::error::Error>> {
    assert_eq!(grid.num_ranks(), topo.num_ranks(), "one rank per FPGA");
    assert_eq!(p.nx % grid.rx, 0, "nx must divide over the rank grid");
    assert_eq!(p.ny % grid.ry, 0, "ny must divide over the rank grid");
    let bnx = p.nx / grid.rx;
    let bny = p.ny / grid.ry;

    // The op metadata of one rank — the union over all positions is used
    // SPMD-style ("all ranks will be configured with the same bitstream"):
    // every rank declares all four halo ports; unused ones stay idle.
    let mut meta = ProgramMeta::new();
    for dir in 0..4 {
        meta = meta
            .with(OpSpec::recv(ports::recv_port(dir), Datatype::Float))
            .with(OpSpec::send(ports::recv_port(dir), Datatype::Float));
    }

    let p = p.clone();
    let iters = p.iters;
    let global = std::sync::Arc::new(p.grid.clone());
    let ny = p.ny;

    let report = run_spmd(
        topo,
        meta,
        move |ctx: SmiCtx| -> Vec<f32> {
            let rank = ctx.rank();
            let (rx_, ry_) = grid.coords(rank);
            let neighbors = grid.neighbors(rank);
            // Local block with a one-cell ghost ring.
            let (gnx, gny) = (bnx + 2, bny + 2);
            let mut cur = vec![0.0f32; gnx * gny];
            let mut next = vec![0.0f32; gnx * gny];
            for i in 0..bnx {
                for j in 0..bny {
                    cur[(i + 1) * gny + (j + 1)] = global[(rx_ * bnx + i) * ny + (ry_ * bny + j)];
                }
            }
            let parity = (rx_ + ry_) % 2 == 0;
            for _t in 0..iters {
                // Halo exchange: counts per direction (west/east: a column of
                // bnx elements; north/south: a row of bny).
                let counts = [bnx as u64, bnx as u64, bny as u64, bny as u64];
                let send_halo = |cur: &Vec<f32>, ctx: &SmiCtx, dir: usize| {
                    // Send my edge toward `dir`; it arrives on the peer's
                    // "from opposite(dir)" port.
                    if let Some(peer) = neighbors[dir] {
                        let port = ports::recv_port(ports::opposite(dir));
                        let mut ch = ctx
                            .open_send_channel::<f32>(counts[dir], peer, port)
                            .expect("halo send channel");
                        match dir {
                            0 => (0..bnx)
                                .for_each(|i| ch.push(&cur[(i + 1) * gny + 1]).expect("push")),
                            1 => (0..bnx)
                                .for_each(|i| ch.push(&cur[(i + 1) * gny + bny]).expect("push")),
                            2 => (0..bny).for_each(|j| ch.push(&cur[gny + (j + 1)]).expect("push")),
                            _ => (0..bny)
                                .for_each(|j| ch.push(&cur[bnx * gny + (j + 1)]).expect("push")),
                        }
                    }
                };
                let recv_halo = |cur: &mut Vec<f32>, ctx: &SmiCtx, dir: usize| {
                    // Receive the halo arriving from `dir` into my ghosts.
                    if let Some(peer) = neighbors[dir] {
                        let port = ports::recv_port(dir);
                        let mut ch = ctx
                            .open_recv_channel::<f32>(counts[dir], peer, port)
                            .expect("halo recv channel");
                        match dir {
                            0 => (0..bnx).for_each(|i| cur[(i + 1) * gny] = ch.pop().expect("pop")),
                            1 => (0..bnx).for_each(|i| {
                                cur[(i + 1) * gny + bny + 1] = ch.pop().expect("pop")
                            }),
                            2 => (0..bny).for_each(|j| cur[j + 1] = ch.pop().expect("pop")),
                            _ => (0..bny).for_each(|j| {
                                cur[(bnx + 1) * gny + (j + 1)] = ch.pop().expect("pop")
                            }),
                        }
                    }
                };
                if parity {
                    (0..4).for_each(|d| send_halo(&cur, &ctx, d));
                    (0..4).for_each(|d| recv_halo(&mut cur, &ctx, d));
                } else {
                    (0..4).for_each(|d| recv_halo(&mut cur, &ctx, d));
                    (0..4).for_each(|d| send_halo(&cur, &ctx, d));
                }
                // Sweep the local block (ghosts at the global boundary stay
                // zero — the Dirichlet condition).
                for i in 1..=bnx {
                    for j in 1..=bny {
                        next[i * gny + j] = 0.25
                            * (cur[i * gny + j - 1]
                                + cur[i * gny + j + 1]
                                + cur[(i - 1) * gny + j]
                                + cur[(i + 1) * gny + j]);
                    }
                }
                std::mem::swap(&mut cur, &mut next);
            }
            // Return the local block (without ghosts).
            let mut out = Vec::with_capacity(bnx * bny);
            for i in 0..bnx {
                for j in 0..bny {
                    out.push(cur[(i + 1) * gny + (j + 1)]);
                }
            }
            out
        },
        params,
    )?;

    // Reassemble the global grid.
    let mut out = vec![0.0f32; p.nx * p.ny];
    for (rank, block) in report.results.iter().enumerate() {
        let (rx_, ry_) = grid.coords(rank);
        for i in 0..bnx {
            for j in 0..bny {
                out[(rx_ * bnx + i) * ny + (ry_ * bny + j)] = block[i * bny + j];
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::reference;

    #[test]
    fn matches_reference_2x2() {
        let p = StencilProblem::random(16, 16, 4, 11);
        let grid = RankGrid { rx: 2, ry: 2 };
        let topo = Topology::torus2d(2, 2);
        let got = run_distributed(&p, grid, &topo, RuntimeParams::default()).unwrap();
        let want = reference::run(&p);
        assert_eq!(got, want, "bitwise identical sweep");
    }

    #[test]
    fn matches_reference_2x4_like_paper() {
        // The paper's 8-FPGA layout (Fig. 14).
        let p = StencilProblem::random(16, 32, 3, 12);
        let grid = RankGrid { rx: 2, ry: 4 };
        let topo = Topology::torus2d(2, 4);
        let got = run_distributed(&p, grid, &topo, RuntimeParams::default()).unwrap();
        assert_eq!(got, reference::run(&p));
    }

    #[test]
    fn matches_reference_1d_decomposition() {
        let p = StencilProblem::random(24, 12, 5, 13);
        let grid = RankGrid { rx: 4, ry: 1 };
        let topo = Topology::bus(4);
        let got = run_distributed(&p, grid, &topo, RuntimeParams::default()).unwrap();
        assert_eq!(got, reference::run(&p));
    }

    #[test]
    fn single_rank_degenerate() {
        let p = StencilProblem::random(8, 8, 3, 14);
        let grid = RankGrid { rx: 1, ry: 1 };
        let topo = Topology::bus(1);
        let got = run_distributed(&p, grid, &topo, RuntimeParams::default()).unwrap();
        assert_eq!(got, reference::run(&p));
    }

    #[test]
    fn tight_buffers_checkerboard_safe() {
        let p = StencilProblem::random(12, 12, 3, 15);
        let grid = RankGrid { rx: 2, ry: 2 };
        let topo = Topology::torus2d(2, 2);
        let got = run_distributed(&p, grid, &topo, RuntimeParams::tight()).unwrap();
        assert_eq!(got, reference::run(&p));
    }
}
