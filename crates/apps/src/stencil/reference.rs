//! Serial reference stencil.

use super::StencilProblem;

/// One 4-point Jacobi sweep with zero Dirichlet boundaries. The summation
/// order (west + east + north + south) matches the distributed kernel so
/// results compare bit-for-bit.
pub fn step(nx: usize, ny: usize, src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), nx * ny);
    assert_eq!(dst.len(), nx * ny);
    let at = |i: isize, j: isize| -> f32 {
        if i < 0 || j < 0 || i >= nx as isize || j >= ny as isize {
            0.0
        } else {
            src[i as usize * ny + j as usize]
        }
    };
    for i in 0..nx {
        for j in 0..ny {
            let (i, j) = (i as isize, j as isize);
            dst[i as usize * ny + j as usize] =
                0.25 * (at(i, j - 1) + at(i, j + 1) + at(i - 1, j) + at(i + 1, j));
        }
    }
}

/// Run the full problem serially; returns the final grid.
pub fn run(p: &StencilProblem) -> Vec<f32> {
    let mut cur = p.grid.clone();
    let mut next = vec![0.0f32; p.nx * p.ny];
    for _ in 0..p.iters {
        step(p.nx, p.ny, &cur, &mut next);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_interior_decays_at_boundary() {
        // All-ones grid: interior cells stay 1, boundary cells lose the
        // out-of-domain contributions.
        let p = StencilProblem {
            nx: 5,
            ny: 5,
            iters: 1,
            grid: vec![1.0; 25],
        };
        let out = run(&p);
        assert_eq!(out[2 * 5 + 2], 1.0, "interior");
        assert_eq!(out[0], 0.5, "corner keeps 2 of 4 neighbours");
        assert_eq!(out[2], 0.75, "edge keeps 3 of 4");
    }

    #[test]
    fn zero_iterations_is_identity() {
        let p = StencilProblem::random(6, 7, 0, 1);
        assert_eq!(run(&p), p.grid);
    }

    #[test]
    fn energy_decays() {
        let p = StencilProblem::random(16, 16, 10, 2);
        let out = run(&p);
        let norm = |v: &[f32]| v.iter().map(|x| (x * x) as f64).sum::<f64>();
        assert!(norm(&out) < norm(&p.grid), "Jacobi smoothing dissipates");
    }
}
