//! The MPI-style baseline of the distributed stencil: identical 2D
//! decomposition, but halos move as bulk `MPI_Send`/`MPI_Recv` buffers over
//! host memory instead of streaming through the FPGA interconnect.
//! Cross-checks the SMI version and the serial reference bit-for-bit.

use smi_baseline::functional::MpiWorld;

use super::{RankGrid, StencilProblem};

/// Run the distributed stencil over the host-memory MPI world.
pub fn run_distributed_mpi(p: &StencilProblem, grid: RankGrid) -> Vec<f32> {
    assert_eq!(p.nx % grid.rx, 0);
    assert_eq!(p.ny % grid.ry, 0);
    let bnx = p.nx / grid.rx;
    let bny = p.ny / grid.ry;
    let worlds = MpiWorld::create(grid.num_ranks());
    let global = std::sync::Arc::new(p.grid.clone());
    let (ny, iters) = (p.ny, p.iters);

    let mut handles = Vec::new();
    for w in worlds {
        let global = global.clone();
        handles.push(std::thread::spawn(move || -> Vec<f32> {
            let rank = w.rank();
            let (rx_, ry_) = grid.coords(rank);
            let neighbors = grid.neighbors(rank);
            let (gnx, gny) = (bnx + 2, bny + 2);
            let mut cur = vec![0.0f32; gnx * gny];
            let mut next = vec![0.0f32; gnx * gny];
            for i in 0..bnx {
                for j in 0..bny {
                    cur[(i + 1) * gny + (j + 1)] = global[(rx_ * bnx + i) * ny + (ry_ * bny + j)];
                }
            }
            for t in 0..iters {
                let tag = t as u64;
                // Bulk halo exchange: pack each edge into a buffer, send,
                // receive into the ghost ring. The unbounded host mailboxes
                // make ordering trivial (no checkerboard needed) — one of
                // the conveniences SMI must instead earn with its
                // streaming protocols.
                let edge = |cur: &Vec<f32>, dir: usize| -> Vec<f32> {
                    match dir {
                        0 => (0..bnx).map(|i| cur[(i + 1) * gny + 1]).collect(),
                        1 => (0..bnx).map(|i| cur[(i + 1) * gny + bny]).collect(),
                        2 => (0..bny).map(|j| cur[gny + (j + 1)]).collect(),
                        _ => (0..bny).map(|j| cur[bnx * gny + (j + 1)]).collect(),
                    }
                };
                for (dir, peer) in neighbors.iter().enumerate() {
                    if let Some(peer) = peer {
                        let buf = edge(&cur, dir);
                        w.send(&buf, *peer, tag * 8 + dir as u64);
                    }
                }
                for dir in 0..4 {
                    if let Some(peer) = neighbors[dir] {
                        // The peer sent toward us with its *opposite* dir tag.
                        let opp = super::ports::opposite(dir) as u64;
                        let counts = [bnx, bnx, bny, bny];
                        let buf = w.recv::<f32>(counts[dir], peer, tag * 8 + opp);
                        match dir {
                            0 => (0..bnx).for_each(|i| cur[(i + 1) * gny] = buf[i]),
                            1 => (0..bnx).for_each(|i| cur[(i + 1) * gny + bny + 1] = buf[i]),
                            2 => (0..bny).for_each(|j| cur[j + 1] = buf[j]),
                            _ => (0..bny).for_each(|j| cur[(bnx + 1) * gny + (j + 1)] = buf[j]),
                        }
                    }
                }
                for i in 1..=bnx {
                    for j in 1..=bny {
                        next[i * gny + j] = 0.25
                            * (cur[i * gny + j - 1]
                                + cur[i * gny + j + 1]
                                + cur[(i - 1) * gny + j]
                                + cur[(i + 1) * gny + j]);
                    }
                }
                std::mem::swap(&mut cur, &mut next);
            }
            let mut out = Vec::with_capacity(bnx * bny);
            for i in 0..bnx {
                for j in 0..bny {
                    out.push(cur[(i + 1) * gny + (j + 1)]);
                }
            }
            out
        }));
    }
    let blocks: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let mut out = vec![0.0f32; p.nx * p.ny];
    for (rank, block) in blocks.iter().enumerate() {
        let (rx_, ry_) = grid.coords(rank);
        for i in 0..bnx {
            for j in 0..bny {
                out[(rx_ * bnx + i) * ny + (ry_ * bny + j)] = block[i * bny + j];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{functional, reference};
    use smi::prelude::{RuntimeParams, Topology};

    #[test]
    fn mpi_baseline_matches_reference() {
        let p = StencilProblem::random(16, 16, 4, 31);
        let got = run_distributed_mpi(&p, RankGrid { rx: 2, ry: 2 });
        assert_eq!(got, reference::run(&p));
    }

    #[test]
    fn mpi_baseline_and_smi_agree_on_8_ranks() {
        let p = StencilProblem::random(16, 32, 3, 32);
        let grid = RankGrid { rx: 2, ry: 4 };
        let mpi = run_distributed_mpi(&p, grid);
        let topo = Topology::torus2d(2, 4);
        let smi = functional::run_distributed(&p, grid, &topo, RuntimeParams::default()).unwrap();
        assert_eq!(mpi, smi, "bulk-MPI and streaming-SMI planes agree bitwise");
    }
}
