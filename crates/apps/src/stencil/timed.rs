//! Cycle-timed SPMD stencil on the fabric (regenerates Figs. 15 and 16).
//!
//! Each rank is a pipelined kernel that sweeps its local block at the rate
//! its DRAM banks can stream (`16` f32/cycle per bank, ×0.875 when striping
//! all four banks — the calibrated bank model of `FabricParams`), while its
//! halo edges travel as SMI messages through the full simulated transport.
//! A timestep completes when the local sweep *and* all four halo exchanges
//! of that step are done; communication overlaps computation exactly as in
//! the paper's design, so the Fig. 15 scaling emerges from the simulation
//! rather than from a formula.

use smi_codegen::{ClusterDesign, OpSpec, ProgramMeta};
use smi_fabric::builder::FabricBuilder;
use smi_fabric::engine::{Component, SimError, Status};
use smi_fabric::fifo::{FifoId, FifoPool};
use smi_fabric::memory::{ConsumerId, DramPoolHandle};
use smi_fabric::params::FabricParams;
use smi_topology::{RoutingPlan, Topology};
use smi_wire::{Datatype, Framer, NetworkPacket, PacketOp};

use super::{ports, RankGrid};

/// Configuration of one timed stencil run.
#[derive(Debug, Clone)]
pub struct StencilTimedConfig {
    /// Platform constants.
    pub fabric: FabricParams,
    /// Global grid rows.
    pub nx: u64,
    /// Global grid columns.
    pub ny: u64,
    /// Timesteps.
    pub iters: u32,
    /// Rank decomposition.
    pub grid: RankGrid,
    /// Memory banks used per FPGA (1 → 16 f32/cycle, 4 → 56 f32/cycle).
    pub banks: usize,
    /// Fixed per-timestep cost in cycles (pipeline restart + host-side
    /// timestep coordination). Calibrated to the paper's absolute times:
    /// Fig. 15's measured per-iteration times exceed the pure
    /// bandwidth bound by ≈30 k cycles (≈100 µs) across all configurations.
    pub iter_overhead_cycles: u64,
}

impl StencilTimedConfig {
    /// Default overhead used by the figure reproductions.
    pub const DEFAULT_ITER_OVERHEAD: u64 = 30_000;
}

/// Result of a timed stencil run.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilTimedResult {
    /// Total cycles for all timesteps.
    pub cycles: u64,
    /// Milliseconds at the configured kernel clock.
    pub time_ms: f64,
    /// Nanoseconds per grid point per full run (the Fig. 16 metric).
    pub ns_per_point: f64,
}

/// Per-direction halo send state.
struct EdgeSend {
    count: u64,
    sent: u64,
    framer: Framer,
    out: FifoId,
    pending: Option<NetworkPacket>,
}

/// Per-direction halo receive state.
struct EdgeRecv {
    count: u64,
    received: u64,
    input: FifoId,
}

/// One rank's stencil kernel.
struct StencilRankKernel {
    name: String,
    pool: DramPoolHandle,
    consumer: ConsumerId,
    /// Memory elements per timestep: the sweep reads and writes every local
    /// cell once (2 × cells) — the paper's measured times match this 2×
    /// traffic, not a read-only bound.
    mem_elems_per_iter: f64,
    compute_remaining: f64,
    iters: u32,
    iter: u32,
    iter_overhead_cycles: u64,
    overhead_remaining: u64,
    sends: Vec<EdgeSend>,
    recvs: Vec<EdgeRecv>,
}

impl StencilRankKernel {
    fn reset_iteration(&mut self) {
        self.compute_remaining = self.mem_elems_per_iter;
        for s in &mut self.sends {
            s.sent = 0;
        }
        for r in &mut self.recvs {
            r.received = 0;
        }
    }

    fn iteration_done(&self) -> bool {
        self.compute_remaining <= 0.0
            && self
                .sends
                .iter()
                .all(|s| s.sent == s.count && s.pending.is_none())
            && self.recvs.iter().all(|r| r.received >= r.count)
    }
}

impl Component for StencilRankKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64, fifos: &mut FifoPool) -> Status {
        if self.iter == self.iters {
            return Status::Done;
        }
        // Per-timestep fixed cost (pipeline restart / host coordination).
        if self.overhead_remaining > 0 {
            self.overhead_remaining -= 1;
            return Status::Active;
        }
        let mut acted = false;
        // 1. Absorb arriving halos (one packet per direction per cycle —
        //    each direction has its own port and CK pair).
        for r in &mut self.recvs {
            if r.received < r.count && fifos.can_pop(r.input) {
                let pkt = fifos.pop(r.input);
                r.received += pkt.header.count as u64;
                acted = true;
            }
        }
        // 2. Stream halo edges out (one packet per direction per cycle).
        for s in &mut self.sends {
            if let Some(pkt) = s.pending.take() {
                if fifos.can_push(s.out) {
                    fifos.push(s.out, pkt);
                    acted = true;
                } else {
                    s.pending = Some(pkt);
                    continue;
                }
            }
            while s.sent < s.count && s.pending.is_none() {
                let v = s.sent as f32;
                if let Some(pkt) = s.framer.push(&v) {
                    s.pending = Some(pkt);
                }
                s.sent += 1;
            }
            if s.sent == s.count && s.pending.is_none() {
                s.pending = s.framer.flush();
            }
            if let Some(pkt) = s.pending.take() {
                if fifos.can_push(s.out) {
                    fifos.push(s.out, pkt);
                    acted = true;
                } else {
                    s.pending = Some(pkt);
                }
            }
        }
        // 3. Sweep: consume memory bandwidth for the local cells.
        if self.compute_remaining > 0.0 {
            let rate = self.pool.borrow().rate();
            let granted = self
                .pool
                .borrow_mut()
                .try_consume(self.consumer, self.compute_remaining.min(rate));
            if granted > 0.0 {
                self.compute_remaining -= granted;
                acted = true;
            }
        }
        // 4. Timestep barrier.
        if self.iteration_done() {
            self.iter += 1;
            if self.iter == self.iters {
                return Status::Done;
            }
            self.reset_iteration();
            self.overhead_remaining = self.iter_overhead_cycles;
            return Status::Active;
        }
        if acted {
            Status::Active
        } else {
            Status::Idle
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}

/// Run one timed configuration.
pub fn run_timed(cfg: &StencilTimedConfig) -> Result<StencilTimedResult, SimError> {
    let n_ranks = cfg.grid.num_ranks();
    assert!(cfg.nx.is_multiple_of(cfg.grid.rx as u64) && cfg.ny.is_multiple_of(cfg.grid.ry as u64));
    let bnx = cfg.nx / cfg.grid.rx as u64;
    let bny = cfg.ny / cfg.grid.ry as u64;

    // Physical topology: single rank → trivial; otherwise the paper's torus
    // of matching size (the run is insensitive to torus vs bus — §5.4.2
    // "observed this to not affect the execution time" — which holds here
    // because halo traffic is far below link capacity).
    let topo = if n_ranks == 1 {
        Topology::bus(1)
    } else {
        Topology::torus2d(cfg.grid.rx, cfg.grid.ry)
    };
    let plan = RoutingPlan::compute(&topo).expect("plan");
    let metas: Vec<ProgramMeta> = (0..n_ranks)
        .map(|rank| {
            let mut m = ProgramMeta::new();
            let neighbors = cfg.grid.neighbors(rank);
            for dir in 0..4 {
                if neighbors[dir].is_some() {
                    m = m.with(OpSpec::recv(ports::recv_port(dir), Datatype::Float));
                }
                if neighbors[ports::opposite(dir)].is_some() {
                    m = m.with(OpSpec::send(ports::recv_port(dir), Datatype::Float));
                }
            }
            m
        })
        .collect();
    let design = ClusterDesign::mpmd(&metas, &topo).expect("design");
    let mut b = FabricBuilder::new(topo, plan, design, cfg.fabric.clone());
    let rate = cfg.fabric.banks_elems_per_cycle(cfg.banks);

    for rank in 0..n_ranks {
        let pool = b.add_dram_pool(format!("r{rank}.mem"), rate);
        let consumer = pool.borrow_mut().register();
        let neighbors = cfg.grid.neighbors(rank);
        let counts = [bnx, bnx, bny, bny];
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for dir in 0..4 {
            if neighbors[dir].is_some() {
                let port = ports::recv_port(dir);
                let input = b.register_recv(rank, port);
                recvs.push(EdgeRecv {
                    count: counts[dir],
                    received: 0,
                    input,
                });
            }
            // Send toward `dir` lands on the peer's opposite-direction port.
            if let Some(peer) = neighbors[dir] {
                let port = ports::recv_port(ports::opposite(dir));
                let out = b.register_send(rank, port);
                sends.push(EdgeSend {
                    count: counts[dir],
                    sent: 0,
                    framer: Framer::new(
                        Datatype::Float,
                        rank as u8,
                        peer as u8,
                        port as u8,
                        PacketOp::Send,
                    ),
                    out,
                    pending: None,
                });
            }
        }
        // Read + write per cell (see StencilRankKernel::mem_elems_per_iter).
        let mem_elems = 2.0 * (bnx * bny) as f64;
        b.add_component(StencilRankKernel {
            name: format!("stencil.r{rank}"),
            pool,
            consumer,
            mem_elems_per_iter: mem_elems,
            compute_remaining: mem_elems,
            iters: cfg.iters,
            iter: 0,
            iter_overhead_cycles: cfg.iter_overhead_cycles,
            overhead_remaining: 0,
            sends,
            recvs,
        });
    }
    let mut fabric = b.finalize();
    let per_iter = 2.0 * (bnx * bny) as f64 / rate + cfg.iter_overhead_cycles as f64;
    let budget = ((per_iter + 20_000.0) * cfg.iters as f64 * 4.0) as u64 + 2_000_000;
    let report = fabric.run(budget)?;
    let time_us = cfg.fabric.cycles_to_us(report.cycles);
    let points = (cfg.nx * cfg.ny) as f64;
    Ok(StencilTimedResult {
        cycles: report.cycles,
        time_ms: time_us / 1e3,
        ns_per_point: time_us * 1e3 / points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nx: u64, ny: u64, grid: RankGrid, banks: usize, iters: u32) -> StencilTimedConfig {
        StencilTimedConfig {
            fabric: FabricParams::default(),
            nx,
            ny,
            iters,
            grid,
            banks,
            iter_overhead_cycles: StencilTimedConfig::DEFAULT_ITER_OVERHEAD,
        }
    }

    /// Config without the per-iteration overhead, for isolating the
    /// bandwidth/overlap mechanics.
    fn cfg_no_overhead(
        nx: u64,
        ny: u64,
        grid: RankGrid,
        banks: usize,
        iters: u32,
    ) -> StencilTimedConfig {
        StencilTimedConfig {
            fabric: FabricParams::default(),
            nx,
            ny,
            iters,
            grid,
            banks,
            iter_overhead_cycles: 0,
        }
    }

    #[test]
    fn four_banks_single_fpga_is_3_5x() {
        let one = run_timed(&cfg_no_overhead(512, 512, RankGrid { rx: 1, ry: 1 }, 1, 4)).unwrap();
        let four = run_timed(&cfg_no_overhead(512, 512, RankGrid { rx: 1, ry: 1 }, 4, 4)).unwrap();
        let speedup = one.cycles as f64 / four.cycles as f64;
        assert!(
            (3.3..3.7).contains(&speedup),
            "bank speedup {speedup} (paper: 3.5)"
        );
    }

    #[test]
    fn four_fpgas_one_bank_scale_close_to_linear() {
        let one = run_timed(&cfg_no_overhead(512, 512, RankGrid { rx: 1, ry: 1 }, 1, 4)).unwrap();
        let four = run_timed(&cfg_no_overhead(512, 512, RankGrid { rx: 2, ry: 2 }, 1, 4)).unwrap();
        let speedup = one.cycles as f64 / four.cycles as f64;
        assert!(
            (3.2..4.1).contains(&speedup),
            "rank speedup {speedup} (paper: 3.5)"
        );
    }

    #[test]
    fn full_fig15_composition() {
        // Fig. 15's actual workload shape at reduced size: with the
        // calibrated per-iteration overhead the 8-FPGA speedup lands near
        // the paper's 23.1 (not the ideal 28).
        let base = run_timed(&cfg(4096, 4096, RankGrid { rx: 1, ry: 1 }, 1, 2)).unwrap();
        let eight = run_timed(&cfg(4096, 4096, RankGrid { rx: 2, ry: 4 }, 4, 2)).unwrap();
        let speedup = base.cycles as f64 / eight.cycles as f64;
        assert!(
            (17.0..27.0).contains(&speedup),
            "8-FPGA 4-bank speedup {speedup} (paper: 23.1)"
        );
    }

    #[test]
    fn communication_fully_overlapped_at_large_sizes() {
        // Large local blocks: halo time ≪ compute; runtime must equal the
        // memory-bound sweep (2 elements/cell) within a few percent.
        let c = cfg_no_overhead(1024, 1024, RankGrid { rx: 2, ry: 2 }, 4, 3);
        let r = run_timed(&c).unwrap();
        let compute_cycles =
            (2.0 * 512.0 * 512.0 / FabricParams::default().banks_elems_per_cycle(4)) * 3.0;
        let ratio = r.cycles as f64 / compute_cycles;
        assert!((1.0..1.15).contains(&ratio), "overlap ratio {ratio}");
    }

    #[test]
    fn weak_scaling_shape() {
        // Small grids: per-point time dominated by the per-iteration
        // overhead; large grids: 8 ranks ≈ 2× the throughput of 4 (Fig. 16).
        let small4 = run_timed(&cfg(512, 512, RankGrid { rx: 2, ry: 2 }, 4, 2)).unwrap();
        let large4 = run_timed(&cfg(4096, 4096, RankGrid { rx: 2, ry: 2 }, 4, 2)).unwrap();
        assert!(
            small4.ns_per_point > large4.ns_per_point * 2.0,
            "small {} vs large {}",
            small4.ns_per_point,
            large4.ns_per_point
        );
        let large8 = run_timed(&cfg(4096, 4096, RankGrid { rx: 2, ry: 4 }, 4, 2)).unwrap();
        let ratio = large4.ns_per_point / large8.ns_per_point;
        assert!(
            (1.5..2.1).contains(&ratio),
            "8 vs 4 ranks at large size: {ratio}"
        );
    }
}
