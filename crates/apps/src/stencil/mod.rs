//! 2D 4-point stencil with halo exchange (§5.4.2, Fig. 14, Lst. 3).

pub mod baseline;
pub mod functional;
pub mod reference;
pub mod timed;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The stencil problem: an `nx × ny` grid iterated `iters` times with the
/// 4-point kernel `u'[i][j] = 0.25·(u[i−1][j] + u[i+1][j] + u[i][j−1] +
/// u[i][j+1])` and zero Dirichlet boundaries.
#[derive(Debug, Clone)]
pub struct StencilProblem {
    /// Grid rows.
    pub nx: usize,
    /// Grid columns.
    pub ny: usize,
    /// Timesteps.
    pub iters: usize,
    /// Initial grid, row-major.
    pub grid: Vec<f32>,
}

impl StencilProblem {
    /// Deterministic random initial condition.
    pub fn random(nx: usize, ny: usize, iters: usize, seed: u64) -> StencilProblem {
        let mut rng = SmallRng::seed_from_u64(seed);
        StencilProblem {
            nx,
            ny,
            iters,
            grid: (0..nx * ny).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        }
    }
}

/// The 2D rank grid of the SPMD decomposition. Rank numbering follows the
/// paper's Lst. 3: `rank = r_x * RY + r_y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankGrid {
    /// Ranks along x.
    pub rx: usize,
    /// Ranks along y.
    pub ry: usize,
}

impl RankGrid {
    /// Total ranks.
    pub fn num_ranks(&self) -> usize {
        self.rx * self.ry
    }

    /// `(r_x, r_y)` of a rank.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.ry, rank % self.ry)
    }

    /// Rank at `(r_x, r_y)`.
    pub fn rank_at(&self, x: usize, y: usize) -> usize {
        x * self.ry + y
    }

    /// The four neighbours of a rank (west, east, north, south); `None` at
    /// the domain boundary ("If no neighbor exists […] the given channel
    /// simply remains unused").
    pub fn neighbors(&self, rank: usize) -> [Option<usize>; 4] {
        let (x, y) = self.coords(rank);
        [
            (y > 0).then(|| self.rank_at(x, y - 1)),           // west
            (y + 1 < self.ry).then(|| self.rank_at(x, y + 1)), // east
            (x > 0).then(|| self.rank_at(x - 1, y)),           // north
            (x + 1 < self.rx).then(|| self.rank_at(x + 1, y)), // south
        ]
    }
}

/// SMI port assignment of the halo channels (Lst. 3 uses one distinct port
/// per neighbour): port *p* carries the halo arriving from direction *p*:
/// 1 = west, 2 = east, 3 = north, 4 = south. A rank therefore declares
/// `recv(p)` when it has a neighbour in direction *p*, and `send(p)` when it
/// has a neighbour in the *opposite* direction (the message lands on the
/// peer's port *p*).
pub mod ports {
    /// Halo arriving from the west / sent toward the east.
    pub const WEST: usize = 1;
    /// Halo arriving from the east / sent toward the west.
    pub const EAST: usize = 2;
    /// Halo arriving from the north / sent toward the south.
    pub const NORTH: usize = 3;
    /// Halo arriving from the south / sent toward the north.
    pub const SOUTH: usize = 4;
    /// Opposite direction index (west↔east, north↔south) in the
    /// `[west, east, north, south]` arrays used throughout.
    pub const fn opposite(dir: usize) -> usize {
        match dir {
            0 => 1,
            1 => 0,
            2 => 3,
            _ => 2,
        }
    }
    /// Port for the halo arriving from direction index `dir`.
    pub const fn recv_port(dir: usize) -> usize {
        dir + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_grid_matches_paper_numbering() {
        // Fig. 14: 2 x 4 grid, FPGA0..FPGA7; rank = r_x * RY + r_y.
        let g = RankGrid { rx: 2, ry: 4 };
        assert_eq!(g.num_ranks(), 8);
        assert_eq!(g.coords(0), (0, 0));
        assert_eq!(g.coords(5), (1, 1));
        assert_eq!(g.rank_at(1, 3), 7);
        // FPGA0 has no west/north neighbour.
        assert_eq!(g.neighbors(0), [None, Some(1), None, Some(4)]);
        // FPGA5 has all four.
        assert_eq!(g.neighbors(5), [Some(4), Some(6), Some(1), None]);
    }

    #[test]
    fn opposite_direction() {
        assert_eq!(ports::opposite(0), 1);
        assert_eq!(ports::opposite(1), 0);
        assert_eq!(ports::opposite(2), 3);
        assert_eq!(ports::opposite(3), 2);
    }

    #[test]
    fn deterministic_init() {
        let a = StencilProblem::random(8, 8, 2, 5);
        let b = StencilProblem::random(8, 8, 2, 5);
        assert_eq!(a.grid, b.grid);
    }
}
