//! Property tests: on random connected topologies, up*/down* routing must
//! route every pair over physical cables and remain deadlock-free.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smi_topology::deadlock::is_deadlock_free;
use smi_topology::routing::Scheme;
use smi_topology::{PathStats, RoutingPlan, Topology};

fn random_topo(n: usize, ports: usize, extra: usize, seed: u64) -> Topology {
    let mut rng = SmallRng::seed_from_u64(seed);
    Topology::random_connected(n, ports, extra, &mut rng).expect("random topology")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every pair is routed, paths follow real cables, and the CDG is acyclic.
    #[test]
    fn updown_routes_everything_deadlock_free(
        n in 1usize..24,
        extra in 0usize..8,
        seed in any::<u64>(),
    ) {
        let ports = 4;
        let topo = random_topo(n, ports, extra, seed);
        let plan = RoutingPlan::compute(&topo).unwrap();
        plan.validate_against(&topo).unwrap();
        prop_assert!(is_deadlock_free(&topo, &plan));
    }

    /// Routed paths are never shorter than BFS, and stretch stays sane
    /// (up*/down* can detour, but never beyond 2x diameter + 1 on these sizes).
    #[test]
    fn updown_stretch_bounded(
        n in 2usize..20,
        extra in 0usize..6,
        seed in any::<u64>(),
    ) {
        let topo = random_topo(n, 4, extra, seed);
        let plan = RoutingPlan::compute(&topo).unwrap();
        let stats = PathStats::analyze(&topo, &plan);
        for s in 0..n {
            for d in 0..n {
                prop_assert!(stats.routed[s][d] >= stats.shortest[s][d]);
            }
        }
        prop_assert!(stats.routed_diameter <= 2 * stats.diameter + 1);
    }

    /// Shortest-path routing is minimal (sanity for the comparison scheme).
    #[test]
    fn shortest_path_is_minimal(
        n in 2usize..20,
        extra in 0usize..6,
        seed in any::<u64>(),
    ) {
        let topo = random_topo(n, 4, extra, seed);
        let plan = RoutingPlan::compute_with(&topo, Scheme::ShortestPath).unwrap();
        let stats = PathStats::analyze(&topo, &plan);
        for s in 0..n {
            for d in 0..n {
                prop_assert_eq!(stats.routed[s][d], stats.shortest[s][d]);
            }
        }
    }

    /// JSON round-trips preserve the topology exactly.
    #[test]
    fn json_roundtrip(n in 1usize..16, extra in 0usize..5, seed in any::<u64>()) {
        let topo = random_topo(n, 4, extra, seed);
        let back = Topology::from_json(&topo.to_json()).unwrap();
        prop_assert_eq!(topo, back);
    }

    /// Next-hop tables agree with the first hop of the stored paths
    /// (the invariant the CKS hardware tables rely on).
    #[test]
    fn tables_match_paths(n in 2usize..16, seed in any::<u64>()) {
        let topo = random_topo(n, 4, 3, seed);
        let plan = RoutingPlan::compute(&topo).unwrap();
        for s in 0..n {
            for d in 0..n {
                match plan.next_hop(s, d) {
                    smi_topology::NextHop::Local => prop_assert_eq!(s, d),
                    smi_topology::NextHop::Via(q) => {
                        prop_assert_eq!(plan.path(s, d)[0].from.qsfp, q);
                        prop_assert_eq!(plan.path(s, d)[0].from.rank, s);
                    }
                }
            }
        }
    }
}
