//! Path statistics: hop-count matrices, diameter, and routing stretch.

use crate::{RoutingPlan, Topology};

/// Summary statistics of a routing plan over a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStats {
    /// BFS (ideal) hop count per pair: `shortest[src][dst]`.
    pub shortest: Vec<Vec<usize>>,
    /// Hop count under the routing plan per pair.
    pub routed: Vec<Vec<usize>>,
    /// Maximum BFS hop count (graph diameter).
    pub diameter: usize,
    /// Maximum routed hop count.
    pub routed_diameter: usize,
    /// Mean routed/shortest ratio over all distinct pairs (1.0 = all routes
    /// minimal).
    pub mean_stretch: f64,
}

/// BFS hop counts from every source.
pub fn shortest_hops(topo: &Topology) -> Vec<Vec<usize>> {
    let n = topo.num_ranks();
    let mut all = Vec::with_capacity(n);
    for src in 0..n {
        let mut dist = vec![usize::MAX; n];
        dist[src] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for (_, ep) in topo.neighbors(u) {
                if dist[ep.rank] == usize::MAX {
                    dist[ep.rank] = dist[u] + 1;
                    queue.push_back(ep.rank);
                }
            }
        }
        all.push(dist);
    }
    all
}

impl PathStats {
    /// Compute statistics for `plan` on `topo`.
    pub fn analyze(topo: &Topology, plan: &RoutingPlan) -> PathStats {
        let n = topo.num_ranks();
        let shortest = shortest_hops(topo);
        let routed: Vec<Vec<usize>> = (0..n)
            .map(|s| (0..n).map(|d| plan.hops(s, d)).collect())
            .collect();
        let diameter = shortest
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0);
        let routed_diameter = routed
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0);
        let mut stretch_sum = 0.0;
        let mut pairs = 0usize;
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    stretch_sum += routed[s][d] as f64 / shortest[s][d] as f64;
                    pairs += 1;
                }
            }
        }
        PathStats {
            shortest,
            routed,
            diameter,
            routed_diameter,
            mean_stretch: if pairs == 0 {
                1.0
            } else {
                stretch_sum / pairs as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_stats() {
        let topo = Topology::bus(8);
        let plan = RoutingPlan::compute(&topo).unwrap();
        let stats = PathStats::analyze(&topo, &plan);
        assert_eq!(stats.diameter, 7);
        assert_eq!(stats.routed_diameter, 7);
        assert!(
            (stats.mean_stretch - 1.0).abs() < 1e-12,
            "bus routes are minimal"
        );
    }

    #[test]
    fn torus_diameter() {
        let topo = Topology::torus2d(2, 4);
        let plan = RoutingPlan::compute(&topo).unwrap();
        let stats = PathStats::analyze(&topo, &plan);
        // 2x4 torus: max distance is 1 (x) + 2 (y wrap) = 3.
        assert_eq!(stats.diameter, 3);
        assert!(stats.routed_diameter >= stats.diameter);
        assert!(stats.mean_stretch >= 1.0);
    }

    #[test]
    fn routed_never_shorter_than_bfs() {
        let topo = Topology::torus2d(3, 3);
        let plan = RoutingPlan::compute(&topo).unwrap();
        let stats = PathStats::analyze(&topo, &plan);
        for s in 0..9 {
            for d in 0..9 {
                assert!(stats.routed[s][d] >= stats.shortest[s][d]);
            }
        }
    }
}
