//! Route computation: deadlock-free up\*/down\* routing and per-rank
//! next-hop tables.
//!
//! The paper (§4.3) computes static routes offline "using a deadlock-free
//! routing scheme \[Domke et al., 8\], according to the target FPGA
//! interconnection topology", and uploads the resulting tables to the
//! devices at runtime. We implement **up\*/down\*** routing — the classic
//! deadlock-free oblivious scheme for arbitrary topologies: links are
//! oriented toward a BFS spanning-tree root, and every route consists of
//! zero or more "up" hops followed by zero or more "down" hops. Because no
//! route ever turns down→up, the channel-dependency graph is provably
//! acyclic, which [`crate::deadlock::find_cycle`] verifies per instance.
//!
//! A plain shortest-path scheme ([`Scheme::ShortestPath`]) is also provided;
//! it is *not* deadlock-free in general (e.g. on rings) and exists for
//! comparison and for negative tests of the deadlock checker.

use serde::{Deserialize, Serialize};

use crate::{Endpoint, Topology, TopologyError};

/// Where a rank must send a packet for a given destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NextHop {
    /// The destination is this rank: deliver to the local CKR.
    Local,
    /// Forward out of the given QSFP port.
    Via(usize),
}

/// One directed traversal of a cable, from port `from` into port `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Hop {
    /// Outgoing endpoint (sender side of the cable).
    pub from: Endpoint,
    /// Incoming endpoint (receiver side of the cable).
    pub to: Endpoint,
}

/// The routing table of one rank: `next[dst]` says where packets for `dst`
/// leave this rank. This is the content the paper uploads into the on-chip
/// M20K routing tables of the CKS modules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankRoutes {
    /// Indexed by destination rank.
    pub next: Vec<NextHop>,
}

/// The routing scheme used to compute a [`RoutingPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheme {
    /// Up*/down* over a BFS spanning tree rooted at rank 0 — deadlock-free.
    UpDown,
    /// Plain BFS shortest paths — minimal hop count but **not** guaranteed
    /// deadlock-free; for analysis/ablation only.
    ShortestPath,
}

/// A complete set of routes for a topology: per-rank next-hop tables plus
/// the full path of every (src, dst) pair for analysis and table generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingPlan {
    num_ranks: usize,
    scheme: Scheme,
    per_rank: Vec<RankRoutes>,
    /// paths[src][dst] = directed hops from src to dst (empty when src == dst).
    paths: Vec<Vec<Vec<Hop>>>,
}

impl RoutingPlan {
    /// Compute a deadlock-free up*/down* routing plan.
    pub fn compute(topo: &Topology) -> Result<RoutingPlan, TopologyError> {
        Self::compute_with(topo, Scheme::UpDown)
    }

    /// Compute a routing plan with an explicit scheme.
    pub fn compute_with(topo: &Topology, scheme: Scheme) -> Result<RoutingPlan, TopologyError> {
        let n = topo.num_ranks();
        let levels = bfs_levels(topo);
        let mut paths: Vec<Vec<Vec<Hop>>> = vec![vec![Vec::new(); n]; n];
        for (src, row) in paths.iter_mut().enumerate() {
            let tree = match scheme {
                Scheme::UpDown => updown_bfs(topo, &levels, src),
                Scheme::ShortestPath => shortest_bfs(topo, src),
            };
            for (dst, path) in tree.into_iter().enumerate() {
                match path {
                    Some(p) => row[dst] = p,
                    None if dst != src => return Err(TopologyError::NoRoute { src, dst }),
                    None => {}
                }
            }
        }
        let per_rank = (0..n)
            .map(|r| RankRoutes {
                next: (0..n)
                    .map(|dst| {
                        if dst == r {
                            NextHop::Local
                        } else {
                            NextHop::Via(paths[r][dst][0].from.qsfp)
                        }
                    })
                    .collect(),
            })
            .collect();
        Ok(RoutingPlan {
            num_ranks: n,
            scheme,
            per_rank,
            paths,
        })
    }

    /// Number of ranks covered.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// The scheme used.
    #[inline]
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Next hop at `rank` for packets destined to `dst`.
    #[inline]
    pub fn next_hop(&self, rank: usize, dst: usize) -> NextHop {
        self.per_rank[rank].next[dst]
    }

    /// The per-rank table (what gets uploaded to the device).
    #[inline]
    pub fn rank_routes(&self, rank: usize) -> &RankRoutes {
        &self.per_rank[rank]
    }

    /// The full directed path from `src` to `dst`.
    #[inline]
    pub fn path(&self, src: usize, dst: usize) -> &[Hop] {
        &self.paths[src][dst]
    }

    /// Number of network hops from `src` to `dst` under this plan.
    #[inline]
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        self.paths[src][dst].len()
    }

    /// The longest routed path in the plan (routed diameter).
    pub fn max_hops(&self) -> usize {
        (0..self.num_ranks)
            .flat_map(|s| (0..self.num_ranks).map(move |d| (s, d)))
            .map(|(s, d)| self.hops(s, d))
            .max()
            .unwrap_or(0)
    }

    /// Verify that every path is physically valid: consecutive cables exist
    /// in the topology and chain rank-to-rank. Used by tests.
    pub fn validate_against(&self, topo: &Topology) -> Result<(), TopologyError> {
        for src in 0..self.num_ranks {
            for dst in 0..self.num_ranks {
                let path = self.path(src, dst);
                if src == dst {
                    if !path.is_empty() {
                        return Err(TopologyError::BadSpec(format!(
                            "non-empty path from {src} to itself"
                        )));
                    }
                    continue;
                }
                let mut at = src;
                for hop in path {
                    if hop.from.rank != at {
                        return Err(TopologyError::BadSpec(format!(
                            "path {src}->{dst} teleports at rank {at}"
                        )));
                    }
                    match topo.peer(hop.from.rank, hop.from.qsfp) {
                        Some(peer) if peer == hop.to => at = hop.to.rank,
                        _ => {
                            return Err(TopologyError::BadSpec(format!(
                                "path {src}->{dst} uses nonexistent cable {}-{}",
                                hop.from, hop.to
                            )))
                        }
                    }
                }
                if at != dst {
                    return Err(TopologyError::BadSpec(format!(
                        "path {src}->{dst} ends at {at}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// BFS levels from rank 0 (the up*/down* root).
fn bfs_levels(topo: &Topology) -> Vec<usize> {
    let n = topo.num_ranks();
    let mut level = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    level[0] = 0;
    queue.push_back(0usize);
    while let Some(u) = queue.pop_front() {
        for (_, ep) in topo.neighbors(u) {
            if level[ep.rank] == usize::MAX {
                level[ep.rank] = level[u] + 1;
                queue.push_back(ep.rank);
            }
        }
    }
    level
}

/// Is the directed traversal `u -> v` an "up" move (toward the root)?
/// Ties on level are broken by rank id so every cable has exactly one up
/// direction.
#[inline]
fn is_up(levels: &[usize], u: usize, v: usize) -> bool {
    levels[v] < levels[u] || (levels[v] == levels[u] && v < u)
}

/// BFS over (rank, phase) states where phase=0 means "still going up" and
/// phase=1 means "now going down"; only up→down transitions are allowed.
/// Returns the shortest legal path to every rank (None when unreachable).
fn updown_bfs(topo: &Topology, levels: &[usize], src: usize) -> Vec<Option<Vec<Hop>>> {
    let n = topo.num_ranks();
    // state = rank * 2 + phase
    let mut parent: Vec<Option<(usize, Hop)>> = vec![None; n * 2];
    let mut dist = vec![usize::MAX; n * 2];
    let start = src * 2;
    dist[start] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(state) = queue.pop_front() {
        let (u, phase) = (state / 2, state % 2);
        for (q, ep) in topo.neighbors(u) {
            let up = is_up(levels, u, ep.rank);
            // In the up phase we may keep going up or turn down;
            // in the down phase we may only continue down.
            let next_phase = if up { 0 } else { 1 };
            if phase == 1 && up {
                continue;
            }
            let next_state = ep.rank * 2 + next_phase;
            if dist[next_state] == usize::MAX {
                dist[next_state] = dist[state] + 1;
                parent[next_state] = Some((
                    state,
                    Hop {
                        from: Endpoint::new(u, q),
                        to: ep,
                    },
                ));
                queue.push_back(next_state);
            }
        }
    }
    (0..n)
        .map(|dst| {
            if dst == src {
                return Some(Vec::new());
            }
            let s_up = dst * 2;
            let s_down = dst * 2 + 1;
            let best = if dist[s_up] <= dist[s_down] {
                s_up
            } else {
                s_down
            };
            if dist[best] == usize::MAX {
                return None;
            }
            let mut hops = Vec::with_capacity(dist[best]);
            let mut cur = best;
            while let Some((prev, hop)) = parent[cur] {
                hops.push(hop);
                cur = prev;
            }
            hops.reverse();
            Some(hops)
        })
        .collect()
}

/// Plain BFS shortest paths (not deadlock-free in general).
fn shortest_bfs(topo: &Topology, src: usize) -> Vec<Option<Vec<Hop>>> {
    let n = topo.num_ranks();
    let mut parent: Vec<Option<(usize, Hop)>> = vec![None; n];
    let mut dist = vec![usize::MAX; n];
    dist[src] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for (q, ep) in topo.neighbors(u) {
            if dist[ep.rank] == usize::MAX {
                dist[ep.rank] = dist[u] + 1;
                parent[ep.rank] = Some((
                    u,
                    Hop {
                        from: Endpoint::new(u, q),
                        to: ep,
                    },
                ));
                queue.push_back(ep.rank);
            }
        }
    }
    (0..n)
        .map(|dst| {
            if dst == src {
                return Some(Vec::new());
            }
            if dist[dst] == usize::MAX {
                return None;
            }
            let mut hops = Vec::with_capacity(dist[dst]);
            let mut cur = dst;
            while let Some((prev, hop)) = parent[cur] {
                hops.push(hop);
                cur = prev;
            }
            hops.reverse();
            Some(hops)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_routes_are_linear() {
        let topo = Topology::bus(8);
        let plan = RoutingPlan::compute(&topo).unwrap();
        plan.validate_against(&topo).unwrap();
        // Hop counts on a bus are |src - dst|.
        for s in 0..8 {
            for d in 0..8 {
                assert_eq!(plan.hops(s, d), s.abs_diff(d), "bus {s}->{d}");
            }
        }
        assert_eq!(plan.max_hops(), 7);
        // Direction sanity: 0 -> 7 leaves through port 1 (east).
        assert_eq!(plan.next_hop(0, 7), NextHop::Via(1));
        assert_eq!(plan.next_hop(3, 0), NextHop::Via(0));
        assert_eq!(plan.next_hop(5, 5), NextHop::Local);
    }

    #[test]
    fn torus_routes_valid_and_bounded() {
        let topo = Topology::torus2d(2, 4);
        let plan = RoutingPlan::compute(&topo).unwrap();
        plan.validate_against(&topo).unwrap();
        // Up*/down* on this torus cannot exceed 2x the BFS eccentricity.
        assert!(plan.max_hops() <= 5, "max hops {}", plan.max_hops());
        for s in 0..8 {
            for d in 0..8 {
                if s != d {
                    assert!(plan.hops(s, d) >= 1);
                }
            }
        }
    }

    #[test]
    fn shortest_scheme_is_minimal() {
        let topo = Topology::ring(6);
        let sp = RoutingPlan::compute_with(&topo, Scheme::ShortestPath).unwrap();
        sp.validate_against(&topo).unwrap();
        for s in 0..6usize {
            for d in 0..6usize {
                let direct = s.abs_diff(d).min(6 - s.abs_diff(d));
                assert_eq!(sp.hops(s, d), direct);
            }
        }
    }

    #[test]
    fn updown_on_ring_detours_but_routes() {
        // Up*/down* on a ring must avoid the "wrap" turn somewhere; paths
        // may be longer than shortest but must exist and be valid.
        let topo = Topology::ring(6);
        let plan = RoutingPlan::compute(&topo).unwrap();
        plan.validate_against(&topo).unwrap();
        assert!(plan.max_hops() >= 3);
    }

    #[test]
    fn single_rank_plan() {
        let topo = Topology::bus(1);
        let plan = RoutingPlan::compute(&topo).unwrap();
        assert_eq!(plan.next_hop(0, 0), NextHop::Local);
        assert_eq!(plan.max_hops(), 0);
    }

    #[test]
    fn two_rank_plan() {
        let topo = Topology::bus(2);
        let plan = RoutingPlan::compute(&topo).unwrap();
        assert_eq!(plan.hops(0, 1), 1);
        assert_eq!(plan.hops(1, 0), 1);
        assert_eq!(plan.path(0, 1)[0].from, Endpoint::new(0, 1));
        assert_eq!(plan.path(0, 1)[0].to, Endpoint::new(1, 0));
    }

    #[test]
    fn serde_roundtrip() {
        let topo = Topology::torus2d(2, 2);
        let plan = RoutingPlan::compute(&topo).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: RoutingPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
