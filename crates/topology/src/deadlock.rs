//! Channel-dependency-graph acyclicity checking.
//!
//! Under backpressured (credit/wormhole-style) forwarding, a routing function
//! is deadlock-free iff its *channel dependency graph* (CDG) is acyclic
//! (Dally & Seitz). Nodes of the CDG are directed channels — each cable used
//! in one direction — and there is an edge c1 → c2 whenever some routed path
//! uses c2 immediately after c1, i.e. a packet may hold c1 while waiting
//! for c2.
//!
//! The up*/down* scheme in [`crate::routing`] guarantees acyclicity by
//! construction; this module proves it per instance, and demonstrates that
//! plain shortest-path routing is *not* safe (e.g. on rings).

use crate::routing::Hop;
use crate::{RoutingPlan, Topology};

/// A directed channel is identified by its outgoing endpoint: `(rank, qsfp)`
/// names the transmit side of a cable, which determines the direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    /// Sender rank.
    pub rank: usize,
    /// Sender QSFP port.
    pub qsfp: usize,
}

impl From<Hop> for Channel {
    fn from(h: Hop) -> Channel {
        Channel {
            rank: h.from.rank,
            qsfp: h.from.qsfp,
        }
    }
}

/// Build the CDG of a routing plan and search for a cycle.
///
/// Returns `None` if the plan is deadlock-free (acyclic CDG), or
/// `Some(cycle)` with a witness sequence of channels `c0 → c1 → … → c0`.
pub fn find_cycle(topo: &Topology, plan: &RoutingPlan) -> Option<Vec<Channel>> {
    let ports = topo.ports_per_rank();
    let n_channels = topo.num_ranks() * ports;
    let chan_id = |c: Channel| c.rank * ports + c.qsfp;

    // Adjacency of the CDG, deduplicated.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n_channels];
    for src in 0..plan.num_ranks() {
        for dst in 0..plan.num_ranks() {
            let path = plan.path(src, dst);
            for w in path.windows(2) {
                let a = chan_id(Channel::from(w[0]));
                let b = chan_id(Channel::from(w[1]));
                if !edges[a].contains(&b) {
                    edges[a].push(b);
                }
            }
        }
    }

    // Iterative DFS with colouring; on finding a back edge, reconstruct the
    // cycle from the stack.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color = vec![Color::White; n_channels];
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (node, next edge index)
    let mut path_stack: Vec<usize> = Vec::new();

    for start in 0..n_channels {
        if color[start] != Color::White {
            continue;
        }
        color[start] = Color::Grey;
        stack.push((start, 0));
        path_stack.push(start);
        while let Some(&mut (node, ref mut ei)) = stack.last_mut() {
            if *ei < edges[node].len() {
                let next = edges[node][*ei];
                *ei += 1;
                match color[next] {
                    Color::White => {
                        color[next] = Color::Grey;
                        stack.push((next, 0));
                        path_stack.push(next);
                    }
                    Color::Grey => {
                        // Found a cycle: slice the current path from `next`.
                        let pos = path_stack
                            .iter()
                            .position(|&n| n == next)
                            .expect("grey node is on the path");
                        let cycle = path_stack[pos..]
                            .iter()
                            .map(|&id| Channel {
                                rank: id / ports,
                                qsfp: id % ports,
                            })
                            .collect();
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                stack.pop();
                path_stack.pop();
            }
        }
    }
    None
}

/// Convenience: `true` when the plan's CDG is acyclic.
pub fn is_deadlock_free(topo: &Topology, plan: &RoutingPlan) -> bool {
    find_cycle(topo, plan).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Scheme;

    #[test]
    fn updown_bus_is_deadlock_free() {
        let topo = Topology::bus(8);
        let plan = RoutingPlan::compute(&topo).unwrap();
        assert!(is_deadlock_free(&topo, &plan));
    }

    #[test]
    fn updown_torus_is_deadlock_free() {
        for (rx, ry) in [(2, 4), (4, 4), (3, 3)] {
            let topo = Topology::torus2d(rx, ry);
            let plan = RoutingPlan::compute(&topo).unwrap();
            assert!(is_deadlock_free(&topo, &plan), "torus {rx}x{ry}");
        }
    }

    #[test]
    fn updown_ring_is_deadlock_free() {
        for n in [3usize, 4, 5, 8, 12] {
            let topo = Topology::ring(n);
            let plan = RoutingPlan::compute(&topo).unwrap();
            assert!(is_deadlock_free(&topo, &plan), "ring {n}");
        }
    }

    #[test]
    fn shortest_path_on_ring_has_cycle() {
        // The canonical counter-example: shortest-path routing on a ring of
        // >= 5 nodes sends traffic around in both directions, producing a
        // cyclic channel dependency in each direction of the ring.
        let topo = Topology::ring(6);
        let plan = RoutingPlan::compute_with(&topo, Scheme::ShortestPath).unwrap();
        let cycle = find_cycle(&topo, &plan);
        assert!(cycle.is_some(), "expected a CDG cycle on the ring");
        let cycle = cycle.unwrap();
        assert!(cycle.len() >= 3);
    }

    #[test]
    fn cycle_witness_is_a_real_cycle() {
        let topo = Topology::ring(8);
        let plan = RoutingPlan::compute_with(&topo, Scheme::ShortestPath).unwrap();
        if let Some(cycle) = find_cycle(&topo, &plan) {
            // Every consecutive pair in the witness must be a CDG edge, i.e.
            // appear consecutively in some routed path.
            let consecutive_in_some_path = |a: Channel, b: Channel| {
                (0..8).any(|s| {
                    (0..8).any(|d| {
                        plan.path(s, d)
                            .windows(2)
                            .any(|w| Channel::from(w[0]) == a && Channel::from(w[1]) == b)
                    })
                })
            };
            for i in 0..cycle.len() {
                let a = cycle[i];
                let b = cycle[(i + 1) % cycle.len()];
                assert!(
                    consecutive_in_some_path(a, b),
                    "witness edge {a:?}->{b:?} not in CDG"
                );
            }
        } else {
            panic!("expected a cycle on shortest-path ring routing");
        }
    }

    #[test]
    fn star_trivially_deadlock_free() {
        let topo = Topology::star(6);
        for scheme in [Scheme::UpDown, Scheme::ShortestPath] {
            let plan = RoutingPlan::compute_with(&topo, scheme).unwrap();
            assert!(is_deadlock_free(&topo, &plan));
        }
    }
}
