//! Error type for topology construction and route generation.

use std::fmt;

/// Errors from building topologies or generating routes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A rank index referenced by a connection is `>= num_ranks`.
    RankOutOfBounds {
        /// Offending rank.
        rank: usize,
        /// Number of ranks in the topology.
        num_ranks: usize,
    },
    /// A QSFP port index is `>= ports_per_rank`.
    PortOutOfBounds {
        /// Offending port.
        port: usize,
        /// Ports available per rank.
        ports_per_rank: usize,
    },
    /// Two cables plugged into the same physical port.
    PortInUse {
        /// Rank owning the port.
        rank: usize,
        /// The port plugged twice.
        port: usize,
    },
    /// A cable connecting a device to itself.
    SelfLoop {
        /// The rank connected to itself.
        rank: usize,
    },
    /// The interconnect graph is not connected; some rank pairs would be
    /// unreachable.
    Disconnected {
        /// A rank not reachable from rank 0.
        unreachable_rank: usize,
    },
    /// No legal (up*/down*) route exists between a pair of ranks.
    NoRoute {
        /// Source rank.
        src: usize,
        /// Destination rank.
        dst: usize,
    },
    /// More ranks than the 8-bit wire rank field can address.
    TooManyRanks(usize),
    /// A malformed topology description (JSON or text).
    BadSpec(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::RankOutOfBounds { rank, num_ranks } => {
                write!(f, "rank {rank} out of bounds (num_ranks = {num_ranks})")
            }
            TopologyError::PortOutOfBounds {
                port,
                ports_per_rank,
            } => {
                write!(
                    f,
                    "QSFP port {port} out of bounds (ports_per_rank = {ports_per_rank})"
                )
            }
            TopologyError::PortInUse { rank, port } => {
                write!(f, "QSFP port {rank}:{port} has two cables plugged in")
            }
            TopologyError::SelfLoop { rank } => {
                write!(f, "rank {rank} is cabled to itself")
            }
            TopologyError::Disconnected { unreachable_rank } => {
                write!(
                    f,
                    "topology is disconnected: rank {unreachable_rank} unreachable from rank 0"
                )
            }
            TopologyError::NoRoute { src, dst } => {
                write!(f, "no deadlock-free route from rank {src} to rank {dst}")
            }
            TopologyError::TooManyRanks(n) => {
                write!(f, "{n} ranks exceed the 8-bit wire rank field (max 256)")
            }
            TopologyError::BadSpec(msg) => write!(f, "bad topology description: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}
