//! Builders for the interconnect shapes used in the paper's evaluation
//! (linear bus, 2D torus) and other common test topologies.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Connection, Topology, TopologyError, DEFAULT_PORTS_PER_RANK};

impl Topology {
    /// A linear bus: rank `i` port 1 ↔ rank `i+1` port 0.
    ///
    /// This is the configuration the paper uses to measure bandwidth/latency
    /// at varying network distance: "the 8 FPGAs are treated as being
    /// organized along a linear bus, rather than in a torus (without
    /// rebuilding the bitstream)" (§5.3.1).
    pub fn bus(num_ranks: usize) -> Topology {
        let conns = (0..num_ranks.saturating_sub(1))
            .map(|i| Connection::new(i, 1, i + 1, 0))
            .collect();
        Topology::new(num_ranks, DEFAULT_PORTS_PER_RANK, conns)
            .expect("bus construction is always valid")
    }

    /// A ring: the bus plus a wrap-around cable `n-1`:1 ↔ `0`:0.
    pub fn ring(num_ranks: usize) -> Topology {
        assert!(num_ranks >= 2, "ring needs at least 2 ranks");
        let mut conns: Vec<Connection> = (0..num_ranks - 1)
            .map(|i| Connection::new(i, 1, i + 1, 0))
            .collect();
        conns.push(Connection::new(num_ranks - 1, 1, 0, 0));
        Topology::new(num_ranks, DEFAULT_PORTS_PER_RANK, conns)
            .expect("ring construction is always valid")
    }

    /// A 2D torus of `rx × ry` devices, the paper's cluster shape
    /// ("8 FPGAs connected in a 2D torus", §5.1).
    ///
    /// Rank numbering matches the paper's stencil code: `rank = x * ry + y`
    /// (`r_x = rank / RY; r_y = rank % RY`). Port convention per device:
    /// 0 = west (y−1), 1 = east (y+1), 2 = north (x−1), 3 = south (x+1).
    ///
    /// A dimension of size 2 yields two parallel cables between the same pair
    /// of devices (the wrap-around coincides with the direct link), which is
    /// physically legal — both ports are wired.
    pub fn torus2d(rx: usize, ry: usize) -> Topology {
        assert!(rx >= 1 && ry >= 1, "torus dimensions must be positive");
        let rank_of = |x: usize, y: usize| x * ry + y;
        let mut conns = Vec::new();
        for x in 0..rx {
            for y in 0..ry {
                if ry >= 2 {
                    // east cable: (x,y):1 <-> (x,y+1):0
                    conns.push(Connection::new(
                        rank_of(x, y),
                        1,
                        rank_of(x, (y + 1) % ry),
                        0,
                    ));
                }
                if rx >= 2 {
                    // south cable: (x,y):3 <-> (x+1,y):2
                    conns.push(Connection::new(
                        rank_of(x, y),
                        3,
                        rank_of((x + 1) % rx, y),
                        2,
                    ));
                }
            }
        }
        Topology::new(rx * ry, DEFAULT_PORTS_PER_RANK, conns)
            .expect("torus construction is always valid")
    }

    /// A 3D torus of `rx × ry × rz` devices — the interconnect shape of
    /// Novo-G# (George et al., discussed in the paper's related work §6).
    /// Needs 6 ports per device (0/1 = ±z, 2/3 = ±y, 4/5 = ±x); rank =
    /// `x·ry·rz + y·rz + z`.
    pub fn torus3d(rx: usize, ry: usize, rz: usize) -> Topology {
        assert!(
            rx >= 1 && ry >= 1 && rz >= 1,
            "torus dimensions must be positive"
        );
        let rank_of = |x: usize, y: usize, z: usize| x * ry * rz + y * rz + z;
        let mut conns = Vec::new();
        for x in 0..rx {
            for y in 0..ry {
                for z in 0..rz {
                    if rz >= 2 {
                        conns.push(Connection::new(
                            rank_of(x, y, z),
                            1,
                            rank_of(x, y, (z + 1) % rz),
                            0,
                        ));
                    }
                    if ry >= 2 {
                        conns.push(Connection::new(
                            rank_of(x, y, z),
                            3,
                            rank_of(x, (y + 1) % ry, z),
                            2,
                        ));
                    }
                    if rx >= 2 {
                        conns.push(Connection::new(
                            rank_of(x, y, z),
                            5,
                            rank_of((x + 1) % rx, y, z),
                            4,
                        ));
                    }
                }
            }
        }
        Topology::new(rx * ry * rz, 6, conns).expect("3D torus construction is always valid")
    }

    /// A star: rank 0 in the center, cabled to every other rank.
    pub fn star(num_ranks: usize) -> Topology {
        assert!(num_ranks >= 2, "star needs at least 2 ranks");
        let ports = (num_ranks - 1).max(DEFAULT_PORTS_PER_RANK);
        let conns = (1..num_ranks)
            .map(|i| Connection::new(0, i - 1, i, 0))
            .collect();
        Topology::new(num_ranks, ports, conns).expect("star construction is always valid")
    }

    /// A fully connected clique (every pair cabled directly).
    pub fn fully_connected(num_ranks: usize) -> Topology {
        assert!(num_ranks >= 2, "clique needs at least 2 ranks");
        let ports = num_ranks - 1;
        // Port of j at i: j-1 if j > i, else j.
        let port_at = |i: usize, j: usize| if j > i { j - 1 } else { j };
        let mut conns = Vec::new();
        for i in 0..num_ranks {
            for j in (i + 1)..num_ranks {
                conns.push(Connection::new(i, port_at(i, j), j, port_at(j, i)));
            }
        }
        Topology::new(num_ranks, ports, conns).expect("clique construction is always valid")
    }

    /// A random connected topology honouring a per-device port budget:
    /// a random spanning tree plus `extra_links` random additional cables
    /// (as many as free ports allow). Used by property tests.
    pub fn random_connected<R: Rng>(
        num_ranks: usize,
        ports_per_rank: usize,
        extra_links: usize,
        rng: &mut R,
    ) -> Result<Topology, TopologyError> {
        assert!(num_ranks >= 1);
        assert!(
            ports_per_rank >= 2 || num_ranks <= 2,
            "need >=2 ports to chain devices"
        );
        let mut free: Vec<Vec<usize>> = (0..num_ranks)
            .map(|_| (0..ports_per_rank).rev().collect())
            .collect();
        let mut order: Vec<usize> = (0..num_ranks).collect();
        order.shuffle(rng);
        let mut conns = Vec::new();
        // Spanning tree: attach each new device to a random already-attached
        // device that still has a free port.
        for idx in 1..num_ranks {
            let new = order[idx];
            let candidates: Vec<usize> = order[..idx]
                .iter()
                .copied()
                .filter(|&r| !free[r].is_empty())
                .collect();
            let &host = candidates
                .choose(rng)
                .ok_or_else(|| TopologyError::BadSpec("port budget exhausted".into()))?;
            let hp = free[host].pop().expect("candidate has free port");
            let np = free[new].pop().expect("fresh device has free ports");
            conns.push(Connection::new(host, hp, new, np));
        }
        // Extra links between distinct devices with free ports.
        for _ in 0..extra_links {
            let candidates: Vec<usize> = (0..num_ranks).filter(|&r| !free[r].is_empty()).collect();
            if candidates.len() < 2 {
                break;
            }
            let a = *candidates.choose(rng).expect("nonempty");
            let others: Vec<usize> = candidates.into_iter().filter(|&r| r != a).collect();
            let b = *others.choose(rng).expect("nonempty");
            let ap = free[a].pop().expect("has free port");
            let bp = free[b].pop().expect("has free port");
            conns.push(Connection::new(a, ap, b, bp));
        }
        Topology::new(num_ranks, ports_per_rank, conns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn bus_shape() {
        let t = Topology::bus(8);
        assert_eq!(t.num_ranks(), 8);
        assert_eq!(t.connections().len(), 7);
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.degree(3), 2);
        assert_eq!(t.degree(7), 1);
    }

    #[test]
    fn single_rank_bus() {
        let t = Topology::bus(1);
        assert_eq!(t.num_ranks(), 1);
        assert_eq!(t.connections().len(), 0);
    }

    #[test]
    fn ring_shape() {
        let t = Topology::ring(5);
        assert_eq!(t.connections().len(), 5);
        for r in 0..5 {
            assert_eq!(t.degree(r), 2);
        }
    }

    #[test]
    fn torus_2x4_all_ports_used() {
        // The paper's 8-FPGA cluster.
        let t = Topology::torus2d(2, 4);
        assert_eq!(t.num_ranks(), 8);
        for r in 0..8 {
            assert_eq!(t.degree(r), 4, "every QSFP port wired");
        }
        // 8 east cables + 8 south cables.
        assert_eq!(t.connections().len(), 16);
    }

    #[test]
    fn torus_rank_numbering_matches_paper() {
        // rank = x * RY + y; east neighbor of (0,0) is rank 1.
        let t = Topology::torus2d(2, 4);
        let east = t.peer(0, 1).unwrap();
        assert_eq!(east.rank, 1);
        // south neighbor of (0,0) is (1,0) = rank 4.
        let south = t.peer(0, 3).unwrap();
        assert_eq!(south.rank, 4);
    }

    #[test]
    fn torus_4x4() {
        let t = Topology::torus2d(4, 4);
        assert_eq!(t.num_ranks(), 16);
        assert_eq!(t.connections().len(), 32);
        for r in 0..16 {
            assert_eq!(t.neighbor_ranks(r).len(), 4, "4 distinct neighbours in 4x4");
        }
    }

    #[test]
    fn torus3d_shapes() {
        let t = Topology::torus3d(2, 2, 2);
        assert_eq!(t.num_ranks(), 8);
        for r in 0..8 {
            assert_eq!(t.degree(r), 6, "all six ports wired on rank {r}");
        }
        // 8 nodes × 3 dims with doubled wrap cables = 24 connections.
        assert_eq!(t.connections().len(), 24);
        let t = Topology::torus3d(3, 3, 3);
        assert_eq!(t.num_ranks(), 27);
        assert_eq!(t.connections().len(), 81);
        // Rank numbering: (1, 2, 0) = 1*9 + 2*3 + 0 = 15; its +z peer is 16.
        assert_eq!(t.peer(15, 1).unwrap().rank, 16);
        // Degenerate dimensions still build.
        let flat = Topology::torus3d(1, 2, 4);
        assert_eq!(flat.num_ranks(), 8);
    }

    #[test]
    fn torus3d_routes_deadlock_free() {
        use crate::deadlock::is_deadlock_free;
        use crate::RoutingPlan;
        for (x, y, z) in [(2, 2, 2), (3, 3, 3), (1, 2, 4)] {
            let t = Topology::torus3d(x, y, z);
            let plan = RoutingPlan::compute(&t).unwrap();
            plan.validate_against(&t).unwrap();
            assert!(is_deadlock_free(&t, &plan), "torus3d {x}x{y}x{z}");
        }
    }

    #[test]
    fn star_and_clique() {
        let s = Topology::star(6);
        assert_eq!(s.degree(0), 5);
        for r in 1..6 {
            assert_eq!(s.degree(r), 1);
        }
        let c = Topology::fully_connected(5);
        for r in 0..5 {
            assert_eq!(c.degree(r), 4);
            assert_eq!(c.neighbor_ranks(r).len(), 4);
        }
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 8, 16, 40] {
            let t = Topology::random_connected(n, 4, 6, &mut rng).unwrap();
            assert_eq!(t.num_ranks(), n);
            // Constructor validates connectivity.
        }
    }
}
