//! # smi-topology — FPGA interconnect topologies and deadlock-free routing
//!
//! The SMI transport layer routes packets over a *dedicated* FPGA-to-FPGA
//! interconnect "without using additional network equipment like routers or
//! switches" (§4.3). The interconnect is described as a list of point-to-point
//! connections between QSFP network ports ("The topology is provided as a
//! JSON file, which describes connections between FPGA network ports", §4.5),
//! and routes are computed offline by a *route generator* using "a
//! deadlock-free routing scheme" (Domke et al. \[8\]) — then uploaded to the
//! devices at runtime, so that changing the topology or the number of ranks
//! never requires rebuilding a bitstream.
//!
//! This crate provides:
//!
//! * [`Topology`] — the connection-list interconnect description, with
//!   validation, plus builders for the paper's configurations
//!   ([`Topology::bus`], [`Topology::torus2d`], …) and JSON / `A:0 - B:0`
//!   text formats.
//! * [`RoutingPlan`] — per-rank next-hop tables computed with **up\*/down\***
//!   routing over a BFS spanning tree (a classic deadlock-free oblivious
//!   scheme for arbitrary topologies), together with the full per-pair paths
//!   for analysis.
//! * [`deadlock`] — a channel-dependency-graph acyclicity checker used to
//!   *prove* (per instance) that a routing plan cannot deadlock under
//!   wormhole/backpressure semantics.
//!
//! Both the functional runtime and the cycle-level fabric consume the same
//! [`RoutingPlan`], exactly as the paper's CKS/CKR kernels consume the same
//! generated routing tables.
//!
//! ```
//! use smi_topology::{deadlock, RoutingPlan, Topology};
//!
//! // The paper's evaluation cluster: 8 FPGAs in a 2x4 torus.
//! let topo = Topology::torus2d(2, 4);
//! let plan = RoutingPlan::compute(&topo).unwrap();
//! assert!(deadlock::is_deadlock_free(&topo, &plan));
//! // Every pair is reachable; the routed diameter is small.
//! assert!(plan.max_hops() <= 5);
//! // The description round-trips through the on-disk JSON format.
//! let again = Topology::from_json(&topo.to_json()).unwrap();
//! assert_eq!(topo, again);
//! ```

#![warn(missing_docs)]

pub mod builders;
pub mod deadlock;
pub mod error;
pub mod graph;
pub mod json;
pub mod paths;
pub mod routing;

pub use error::TopologyError;
pub use graph::{Connection, Endpoint, Topology};
pub use json::TopologySpec;
pub use paths::PathStats;
pub use routing::{NextHop, RankRoutes, RoutingPlan};

/// Number of QSFP network ports on the paper's experimental boards
/// (Nallatech 520N: 4 × 40 Gbit/s).
pub const DEFAULT_PORTS_PER_RANK: usize = 4;
