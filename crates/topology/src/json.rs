//! Topology descriptions on disk: the JSON format of the paper's workflow
//! ("The topology is provided as a JSON file, which describes connections
//! between FPGA network ports", §4.5), plus the compact `A:0 - B:0` text
//! form shown in Fig. 8.

use serde::{Deserialize, Serialize};

use crate::{Connection, Endpoint, Topology, TopologyError, DEFAULT_PORTS_PER_RANK};

/// Serialized topology description.
///
/// ```json
/// {
///   "num_ranks": 8,
///   "ports_per_rank": 4,
///   "connections": [ ["0:1", "1:0"], ["1:1", "2:0"] ]
/// }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Number of FPGAs.
    pub num_ranks: usize,
    /// QSFP ports per FPGA (defaults to 4 when omitted).
    #[serde(default = "default_ports")]
    pub ports_per_rank: usize,
    /// Cables as `"rank:port"` string pairs.
    pub connections: Vec<(String, String)>,
}

fn default_ports() -> usize {
    DEFAULT_PORTS_PER_RANK
}

/// Parse an endpoint written as `"rank:port"`. Rank may be a decimal number
/// or a single letter `A`–`Z` (the paper's Fig. 8 uses letters).
pub fn parse_endpoint(s: &str) -> Result<Endpoint, TopologyError> {
    let s = s.trim();
    let (r, q) = s
        .split_once(':')
        .ok_or_else(|| TopologyError::BadSpec(format!("endpoint '{s}' missing ':'")))?;
    let r = r.trim();
    let rank = if r.len() == 1 && r.chars().next().unwrap().is_ascii_uppercase() {
        (r.bytes().next().unwrap() - b'A') as usize
    } else {
        r.parse::<usize>()
            .map_err(|_| TopologyError::BadSpec(format!("bad rank '{r}'")))?
    };
    let qsfp = q
        .trim()
        .parse::<usize>()
        .map_err(|_| TopologyError::BadSpec(format!("bad port '{q}'")))?;
    Ok(Endpoint { rank, qsfp })
}

impl TopologySpec {
    /// Validate and build the [`Topology`].
    pub fn build(&self) -> Result<Topology, TopologyError> {
        let conns = self
            .connections
            .iter()
            .map(|(a, b)| {
                Ok(Connection {
                    a: parse_endpoint(a)?,
                    b: parse_endpoint(b)?,
                })
            })
            .collect::<Result<Vec<_>, TopologyError>>()?;
        Topology::new(self.num_ranks, self.ports_per_rank, conns)
    }

    /// Capture an existing topology as a serializable spec.
    pub fn from_topology(topo: &Topology) -> TopologySpec {
        TopologySpec {
            num_ranks: topo.num_ranks(),
            ports_per_rank: topo.ports_per_rank(),
            connections: topo
                .connections()
                .iter()
                .map(|c| (c.a.to_string(), c.b.to_string()))
                .collect(),
        }
    }
}

impl Topology {
    /// Parse a topology from its JSON description.
    pub fn from_json(json: &str) -> Result<Topology, TopologyError> {
        let spec: TopologySpec = serde_json::from_str(json)
            .map_err(|e| TopologyError::BadSpec(format!("JSON parse error: {e}")))?;
        spec.build()
    }

    /// Serialize to the JSON description format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&TopologySpec::from_topology(self))
            .expect("topology spec serializes")
    }

    /// Parse the compact text form of Fig. 8: one cable per line,
    /// `A:0 - B:0` (letters or decimal ranks). `num_ranks` is inferred as
    /// max rank + 1; blank lines and `#` comments are ignored.
    pub fn from_text(text: &str) -> Result<Topology, TopologyError> {
        let mut conns = Vec::new();
        let mut max_rank = 0usize;
        let mut max_port = 0usize;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (a, b) = line
                .split_once('-')
                .ok_or_else(|| TopologyError::BadSpec(format!("line '{line}' missing '-'")))?;
            let a = parse_endpoint(a)?;
            let b = parse_endpoint(b)?;
            max_rank = max_rank.max(a.rank).max(b.rank);
            max_port = max_port.max(a.qsfp).max(b.qsfp);
            conns.push(Connection { a, b });
        }
        let ports = DEFAULT_PORTS_PER_RANK.max(max_port + 1);
        Topology::new(max_rank + 1, ports, conns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let topo = Topology::torus2d(2, 4);
        let json = topo.to_json();
        let back = Topology::from_json(&json).unwrap();
        assert_eq!(topo, back);
    }

    #[test]
    fn json_with_default_ports() {
        let json = r#"{ "num_ranks": 2, "connections": [["0:0", "1:0"]] }"#;
        let topo = Topology::from_json(json).unwrap();
        assert_eq!(topo.ports_per_rank(), DEFAULT_PORTS_PER_RANK);
        assert_eq!(topo.peer(0, 0), Some(Endpoint::new(1, 0)));
    }

    #[test]
    fn text_format_with_letters() {
        // The Fig. 8 example: "A:0 - B:0, A:1 - C:1, B:1 - C:2".
        let text = "A:0 - B:0\nA:1 - C:1\nB:1 - C:2\n";
        let topo = Topology::from_text(text).unwrap();
        assert_eq!(topo.num_ranks(), 3);
        assert_eq!(topo.peer(0, 0), Some(Endpoint::new(1, 0)));
        assert_eq!(topo.peer(2, 2), Some(Endpoint::new(1, 1)));
    }

    #[test]
    fn text_format_with_numbers_and_comments() {
        let text = "# my cluster\n0:1 - 1:0\n\n1:1 - 2:0\n";
        let topo = Topology::from_text(text).unwrap();
        assert_eq!(topo.num_ranks(), 3);
        assert_eq!(topo.degree(1), 2);
    }

    #[test]
    fn text_form_roundtrips_at_scale() {
        // A 40-rank chain in the paper's Fig. 8 text form: the first 26
        // ranks written as letters (`A:0 - B:0`), the rest as decimals —
        // exercising both endpoint grammars well past the 8-rank fixtures.
        let rank_name = |r: usize| {
            if r < 26 {
                ((b'A' + r as u8) as char).to_string()
            } else {
                r.to_string()
            }
        };
        let n = 40;
        let text: String = (0..n - 1)
            .map(|r| format!("{}:1 - {}:0\n", rank_name(r), rank_name(r + 1)))
            .collect();
        let topo = Topology::from_text(&text).unwrap();
        assert_eq!(topo.num_ranks(), n);
        for r in 0..n - 1 {
            assert_eq!(topo.peer(r, 1), Some(Endpoint::new(r + 1, 0)));
        }
        // JSON round-trip preserves the scale topology exactly.
        let back = Topology::from_json(&topo.to_json()).unwrap();
        assert_eq!(topo, back);
    }

    #[test]
    fn json_roundtrip_64_rank_torus() {
        let topo = Topology::torus2d(8, 8);
        assert_eq!(topo.num_ranks(), 64);
        let back = Topology::from_json(&topo.to_json()).unwrap();
        assert_eq!(topo, back);
    }

    #[test]
    fn bad_specs_are_reported() {
        assert!(Topology::from_json("{").is_err());
        assert!(Topology::from_text("0:0 1:0").is_err()); // missing '-'
        assert!(parse_endpoint("abc").is_err());
        assert!(parse_endpoint("1:x").is_err());
        // Port clash via text form:
        let text = "0:0 - 1:0\n0:0 - 2:0";
        assert!(matches!(
            Topology::from_text(text),
            Err(TopologyError::PortInUse { rank: 0, port: 0 })
        ));
    }

    #[test]
    fn spec_build_checks_bounds() {
        let spec = TopologySpec {
            num_ranks: 2,
            ports_per_rank: 1,
            connections: vec![("0:0".into(), "1:5".into())],
        };
        assert!(matches!(
            spec.build(),
            Err(TopologyError::PortOutOfBounds { port: 5, .. })
        ));
    }
}
