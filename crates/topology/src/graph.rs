//! The interconnect description: devices, QSFP ports, and cables.

use serde::{Deserialize, Serialize};

use crate::TopologyError;

/// One end of a cable: a physical QSFP network port on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Endpoint {
    /// The device (SMI rank — one rank per FPGA, as in the paper).
    pub rank: usize,
    /// The QSFP port index on that device (0..ports_per_rank).
    pub qsfp: usize,
}

impl Endpoint {
    /// Convenience constructor.
    pub const fn new(rank: usize, qsfp: usize) -> Self {
        Endpoint { rank, qsfp }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.rank, self.qsfp)
    }
}

/// A bidirectional point-to-point cable between two QSFP ports.
///
/// Physically a QSFP cable carries independent lanes in both directions, so
/// one `Connection` provides a full-duplex link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Connection {
    /// One end.
    pub a: Endpoint,
    /// The other end.
    pub b: Endpoint,
}

impl Connection {
    /// Convenience constructor from `(rank, qsfp)` pairs.
    pub const fn new(a_rank: usize, a_qsfp: usize, b_rank: usize, b_qsfp: usize) -> Self {
        Connection {
            a: Endpoint::new(a_rank, a_qsfp),
            b: Endpoint::new(b_rank, b_qsfp),
        }
    }

    /// The far end as seen from `rank`, if this cable touches `rank`.
    pub fn peer_of(&self, rank: usize) -> Option<Endpoint> {
        if self.a.rank == rank {
            Some(self.b)
        } else if self.b.rank == rank {
            Some(self.a)
        } else {
            None
        }
    }
}

/// A validated multi-FPGA interconnect: `num_ranks` devices, each with
/// `ports_per_rank` QSFP ports, and a list of cables.
///
/// Invariants enforced at construction:
/// * every endpoint is in bounds,
/// * no physical port has two cables,
/// * no device is cabled to itself,
/// * the graph is connected (every rank reachable from rank 0),
/// * at most 256 ranks (the wire header's 8-bit rank field).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    num_ranks: usize,
    ports_per_rank: usize,
    connections: Vec<Connection>,
    /// adj[rank][qsfp] = far end of the cable plugged into that port.
    adj: Vec<Vec<Option<Endpoint>>>,
}

impl Topology {
    /// Build and validate a topology from a connection list.
    pub fn new(
        num_ranks: usize,
        ports_per_rank: usize,
        connections: Vec<Connection>,
    ) -> Result<Self, TopologyError> {
        if num_ranks > smi_wire::MAX_RANKS {
            return Err(TopologyError::TooManyRanks(num_ranks));
        }
        let mut adj = vec![vec![None; ports_per_rank]; num_ranks];
        for c in &connections {
            for ep in [c.a, c.b] {
                if ep.rank >= num_ranks {
                    return Err(TopologyError::RankOutOfBounds {
                        rank: ep.rank,
                        num_ranks,
                    });
                }
                if ep.qsfp >= ports_per_rank {
                    return Err(TopologyError::PortOutOfBounds {
                        port: ep.qsfp,
                        ports_per_rank,
                    });
                }
            }
            if c.a.rank == c.b.rank {
                return Err(TopologyError::SelfLoop { rank: c.a.rank });
            }
            for (ep, far) in [(c.a, c.b), (c.b, c.a)] {
                let slot = &mut adj[ep.rank][ep.qsfp];
                if slot.is_some() {
                    return Err(TopologyError::PortInUse {
                        rank: ep.rank,
                        port: ep.qsfp,
                    });
                }
                *slot = Some(far);
            }
        }
        let topo = Topology {
            num_ranks,
            ports_per_rank,
            connections,
            adj,
        };
        if num_ranks > 1 {
            if let Some(unreachable) = topo.first_unreachable() {
                return Err(TopologyError::Disconnected {
                    unreachable_rank: unreachable,
                });
            }
        }
        Ok(topo)
    }

    fn first_unreachable(&self) -> Option<usize> {
        let mut seen = vec![false; self.num_ranks];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(r) = stack.pop() {
            for peer in self.adj[r].iter().flatten() {
                if !seen[peer.rank] {
                    seen[peer.rank] = true;
                    stack.push(peer.rank);
                }
            }
        }
        seen.iter().position(|&s| !s)
    }

    /// Number of devices (ranks).
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// QSFP ports per device.
    #[inline]
    pub fn ports_per_rank(&self) -> usize {
        self.ports_per_rank
    }

    /// The cable list this topology was built from.
    #[inline]
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// The far end of the cable plugged into `rank`:`qsfp`, if any.
    #[inline]
    pub fn peer(&self, rank: usize, qsfp: usize) -> Option<Endpoint> {
        self.adj[rank][qsfp]
    }

    /// Iterate over the connected ports of `rank` as `(qsfp, far_end)`.
    pub fn neighbors(&self, rank: usize) -> impl Iterator<Item = (usize, Endpoint)> + '_ {
        self.adj[rank]
            .iter()
            .enumerate()
            .filter_map(|(q, ep)| ep.map(|e| (q, e)))
    }

    /// Neighbour ranks of `rank` (deduplicated, in qsfp order).
    pub fn neighbor_ranks(&self, rank: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for (_, ep) in self.neighbors(rank) {
            if !out.contains(&ep.rank) {
                out.push(ep.rank);
            }
        }
        out
    }

    /// Degree (number of cabled ports) of `rank`.
    pub fn degree(&self, rank: usize) -> usize {
        self.adj[rank].iter().flatten().count()
    }

    /// A copy of this topology with connection `idx` removed — used for
    /// failure-injection tests ("if the interconnection topology changes …
    /// the routing scheme merely needs to be recomputed", §4.3).
    ///
    /// Fails if removing the cable disconnects the graph.
    pub fn without_connection(&self, idx: usize) -> Result<Topology, TopologyError> {
        let mut conns = self.connections.clone();
        assert!(idx < conns.len(), "connection index out of range");
        conns.remove(idx);
        Topology::new(self.num_ranks, self.ports_per_rank, conns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_two_rank_topology() {
        let t = Topology::new(2, 4, vec![Connection::new(0, 0, 1, 0)]).unwrap();
        assert_eq!(t.num_ranks(), 2);
        assert_eq!(t.peer(0, 0), Some(Endpoint::new(1, 0)));
        assert_eq!(t.peer(0, 1), None);
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.neighbor_ranks(0), vec![1]);
    }

    #[test]
    fn port_reuse_rejected() {
        let err = Topology::new(
            3,
            4,
            vec![Connection::new(0, 0, 1, 0), Connection::new(0, 0, 2, 0)],
        )
        .unwrap_err();
        assert_eq!(err, TopologyError::PortInUse { rank: 0, port: 0 });
    }

    #[test]
    fn self_loop_rejected() {
        let err = Topology::new(2, 4, vec![Connection::new(0, 0, 0, 1)]).unwrap_err();
        assert_eq!(err, TopologyError::SelfLoop { rank: 0 });
    }

    #[test]
    fn out_of_bounds_rejected() {
        let err = Topology::new(2, 4, vec![Connection::new(0, 0, 2, 0)]).unwrap_err();
        assert!(matches!(
            err,
            TopologyError::RankOutOfBounds { rank: 2, .. }
        ));
        let err = Topology::new(2, 4, vec![Connection::new(0, 5, 1, 0)]).unwrap_err();
        assert!(matches!(
            err,
            TopologyError::PortOutOfBounds { port: 5, .. }
        ));
    }

    #[test]
    fn disconnected_rejected() {
        let err = Topology::new(4, 4, vec![Connection::new(0, 0, 1, 0)]).unwrap_err();
        assert!(matches!(err, TopologyError::Disconnected { .. }));
    }

    #[test]
    fn too_many_ranks_rejected() {
        let err = Topology::new(300, 4, vec![]).unwrap_err();
        assert_eq!(err, TopologyError::TooManyRanks(300));
    }

    #[test]
    fn without_connection_failure_injection() {
        // Triangle: removing one edge keeps it connected.
        let t = Topology::new(
            3,
            4,
            vec![
                Connection::new(0, 0, 1, 0),
                Connection::new(1, 1, 2, 0),
                Connection::new(2, 1, 0, 1),
            ],
        )
        .unwrap();
        let t2 = t.without_connection(2).unwrap();
        assert_eq!(t2.connections().len(), 2);
        // Removing a bridge of the remaining line disconnects.
        assert!(t2.without_connection(0).is_err());
    }

    #[test]
    fn peer_of_connection() {
        let c = Connection::new(3, 1, 5, 2);
        assert_eq!(c.peer_of(3), Some(Endpoint::new(5, 2)));
        assert_eq!(c.peer_of(5), Some(Endpoint::new(3, 1)));
        assert_eq!(c.peer_of(4), None);
    }
}
