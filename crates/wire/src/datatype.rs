//! SMI datatypes and their mapping onto Rust element types.
//!
//! SMI channels are opened with an explicit datatype (`SMI_INT`, `SMI_FLOAT`,
//! …) and every `Push`/`Pop` must use the same type. The datatype determines
//! how many elements fit into the 28-byte packet payload.

use serde::{Deserialize, Serialize};

use crate::PAYLOAD_BYTES;

/// The element datatypes defined by the SMI interface specification.
///
/// Mirrors the paper's `SMI_Datatype` (`SMI_CHAR`, `SMI_SHORT`, `SMI_INT`,
/// `SMI_FLOAT`, `SMI_DOUBLE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Datatype {
    /// 1-byte character / byte (`SMI_CHAR`).
    Char,
    /// 2-byte signed integer (`SMI_SHORT`).
    Short,
    /// 4-byte signed integer (`SMI_INT`).
    Int,
    /// 4-byte IEEE-754 float (`SMI_FLOAT`).
    Float,
    /// 8-byte IEEE-754 float (`SMI_DOUBLE`).
    Double,
}

impl Datatype {
    /// All datatypes, in wire-encoding order.
    pub const ALL: [Datatype; 5] = [
        Datatype::Char,
        Datatype::Short,
        Datatype::Int,
        Datatype::Float,
        Datatype::Double,
    ];

    /// Size of one element in bytes.
    #[inline]
    pub const fn size_bytes(self) -> usize {
        match self {
            Datatype::Char => 1,
            Datatype::Short => 2,
            Datatype::Int => 4,
            Datatype::Float => 4,
            Datatype::Double => 8,
        }
    }

    /// How many elements of this type fit in one packet payload.
    ///
    /// E.g. 7 for `Int`/`Float` (28 B / 4 B), 3 for `Double`.
    #[inline]
    pub const fn elems_per_packet(self) -> usize {
        PAYLOAD_BYTES / self.size_bytes()
    }

    /// Number of packets needed to carry `count` elements of this type.
    #[inline]
    pub const fn packets_for(self, count: usize) -> usize {
        count.div_ceil(self.elems_per_packet())
    }

    /// Total payload bytes for `count` elements.
    #[inline]
    pub const fn bytes_for(self, count: usize) -> usize {
        count * self.size_bytes()
    }
}

/// Rust element types that can travel over SMI channels.
///
/// The trait ties a Rust type to its SMI [`Datatype`] and provides the
/// little-endian byte codec used to place elements into packet payloads.
/// Implemented for `u8` (char), `i16` (short), `i32` (int), `f32` (float) and
/// `f64` (double).
pub trait SmiType: Copy + PartialEq + std::fmt::Debug + Send + 'static {
    /// The SMI datatype tag corresponding to `Self`.
    const DATATYPE: Datatype;

    /// Serialize `self` into `dst` (exactly `DATATYPE.size_bytes()` bytes).
    fn write_le(&self, dst: &mut [u8]);

    /// Deserialize an element from `src` (exactly `DATATYPE.size_bytes()` bytes).
    fn read_le(src: &[u8]) -> Self;
}

macro_rules! impl_smi_type {
    ($ty:ty, $dt:expr) => {
        impl SmiType for $ty {
            const DATATYPE: Datatype = $dt;

            #[inline]
            fn write_le(&self, dst: &mut [u8]) {
                dst.copy_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn read_le(src: &[u8]) -> Self {
                <$ty>::from_le_bytes(src.try_into().expect("element slice of exact size"))
            }
        }
    };
}

impl_smi_type!(u8, Datatype::Char);
impl_smi_type!(i16, Datatype::Short);
impl_smi_type!(i32, Datatype::Int);
impl_smi_type!(f32, Datatype::Float);
impl_smi_type!(f64, Datatype::Double);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper() {
        assert_eq!(Datatype::Char.size_bytes(), 1);
        assert_eq!(Datatype::Short.size_bytes(), 2);
        assert_eq!(Datatype::Int.size_bytes(), 4);
        assert_eq!(Datatype::Float.size_bytes(), 4);
        assert_eq!(Datatype::Double.size_bytes(), 8);
    }

    #[test]
    fn elems_per_packet() {
        // 28-byte payload.
        assert_eq!(Datatype::Char.elems_per_packet(), 28);
        assert_eq!(Datatype::Short.elems_per_packet(), 14);
        assert_eq!(Datatype::Int.elems_per_packet(), 7);
        assert_eq!(Datatype::Float.elems_per_packet(), 7);
        assert_eq!(Datatype::Double.elems_per_packet(), 3);
    }

    #[test]
    fn packets_for_counts() {
        assert_eq!(Datatype::Float.packets_for(0), 0);
        assert_eq!(Datatype::Float.packets_for(1), 1);
        assert_eq!(Datatype::Float.packets_for(7), 1);
        assert_eq!(Datatype::Float.packets_for(8), 2);
        assert_eq!(Datatype::Double.packets_for(4), 2);
        assert_eq!(Datatype::Char.packets_for(29), 2);
    }

    #[test]
    fn roundtrip_each_type() {
        let mut buf = [0u8; 8];
        42u8.write_le(&mut buf[..1]);
        assert_eq!(u8::read_le(&buf[..1]), 42);
        (-1234i16).write_le(&mut buf[..2]);
        assert_eq!(i16::read_le(&buf[..2]), -1234);
        0x7fff_1234i32.write_le(&mut buf[..4]);
        assert_eq!(i32::read_le(&buf[..4]), 0x7fff_1234);
        3.5f32.write_le(&mut buf[..4]);
        assert_eq!(f32::read_le(&buf[..4]), 3.5);
        (-2.25e300f64).write_le(&mut buf[..8]);
        assert_eq!(f64::read_le(&buf[..8]), -2.25e300);
    }

    #[test]
    fn trait_datatype_tags() {
        assert_eq!(u8::DATATYPE, Datatype::Char);
        assert_eq!(i16::DATATYPE, Datatype::Short);
        assert_eq!(i32::DATATYPE, Datatype::Int);
        assert_eq!(f32::DATATYPE, Datatype::Float);
        assert_eq!(f64::DATATYPE, Datatype::Double);
    }
}
