//! The 32-byte network packet: header + payload, with typed element access.

use crate::{
    Datatype, Header, PacketOp, SmiType, WireError, HEADER_BYTES, PACKET_BYTES, PAYLOAD_BYTES,
};

/// One 32-byte network packet — the minimal unit of routing in the SMI
/// transport layer (§4.1: "messages are packaged in network packets, which
/// have a size equal to the width of the I/O interface to the network").
///
/// The payload holds up to [`Datatype::elems_per_packet`] elements; the
/// header's `count` field says how many are valid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkPacket {
    /// The decoded header.
    pub header: Header,
    /// Raw payload bytes (valid prefix defined by `header.count` × element size).
    pub payload: [u8; PAYLOAD_BYTES],
}

impl NetworkPacket {
    /// An empty packet with the given header fields and zeroed payload.
    pub fn new(src: u8, dst: u8, port: u8, op: PacketOp) -> Self {
        NetworkPacket {
            header: Header {
                src,
                dst,
                port,
                op,
                count: 0,
            },
            payload: [0; PAYLOAD_BYTES],
        }
    }

    /// A pure control packet (Sync/Credit). `arg` is carried in the first
    /// payload bytes (e.g. the credit amount or the tile index).
    pub fn control(src: u8, dst: u8, port: u8, op: PacketOp, arg: u32) -> Self {
        debug_assert!(!op.carries_data());
        let mut p = NetworkPacket::new(src, dst, port, op);
        p.payload[..4].copy_from_slice(&arg.to_le_bytes());
        p
    }

    /// Read the 32-bit control argument of a Sync/Credit packet.
    #[inline]
    pub fn control_arg(&self) -> u32 {
        u32::from_le_bytes(self.payload[..4].try_into().expect("4-byte prefix"))
    }

    /// Store element `idx` (of type `T`) into the payload.
    ///
    /// Does *not* update `header.count`; the framer is responsible for that.
    #[inline]
    pub fn write_elem<T: SmiType>(&mut self, idx: usize, value: &T) {
        let sz = T::DATATYPE.size_bytes();
        let off = idx * sz;
        debug_assert!(off + sz <= PAYLOAD_BYTES, "element index out of payload");
        value.write_le(&mut self.payload[off..off + sz]);
    }

    /// Load element `idx` (of type `T`) from the payload.
    #[inline]
    pub fn read_elem<T: SmiType>(&self, idx: usize) -> T {
        let sz = T::DATATYPE.size_bytes();
        let off = idx * sz;
        debug_assert!(off + sz <= PAYLOAD_BYTES, "element index out of payload");
        T::read_le(&self.payload[off..off + sz])
    }

    /// The valid payload bytes, as declared by the count field, for elements
    /// of the given datatype.
    #[inline]
    pub fn valid_payload(&self, dtype: Datatype) -> &[u8] {
        &self.payload[..dtype.bytes_for(self.header.count as usize)]
    }

    /// Serialize the full packet to its 32-byte wire representation.
    pub fn pack(&self) -> [u8; PACKET_BYTES] {
        let mut out = [0u8; PACKET_BYTES];
        out[..HEADER_BYTES].copy_from_slice(&self.header.pack());
        out[HEADER_BYTES..].copy_from_slice(&self.payload);
        out
    }

    /// Deserialize a packet from its 32-byte wire representation.
    pub fn unpack(bytes: &[u8; PACKET_BYTES]) -> Result<Self, WireError> {
        let header = Header::unpack(
            bytes[..HEADER_BYTES]
                .try_into()
                .expect("4-byte header slice"),
        )?;
        let mut payload = [0u8; PAYLOAD_BYTES];
        payload.copy_from_slice(&bytes[HEADER_BYTES..]);
        Ok(NetworkPacket { header, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_is_32_bytes() {
        let p = NetworkPacket::new(0, 1, 2, PacketOp::Send);
        assert_eq!(p.pack().len(), PACKET_BYTES);
        assert_eq!(std::mem::size_of::<[u8; PACKET_BYTES]>(), 32);
    }

    #[test]
    fn typed_element_roundtrip() {
        let mut p = NetworkPacket::new(0, 1, 0, PacketOp::Send);
        for i in 0..7 {
            p.write_elem(i, &(i as f32 * 1.5));
        }
        p.header.count = 7;
        for i in 0..7 {
            assert_eq!(p.read_elem::<f32>(i), i as f32 * 1.5);
        }
    }

    #[test]
    fn doubles_fit_three_per_packet() {
        let mut p = NetworkPacket::new(0, 1, 0, PacketOp::Send);
        for i in 0..3 {
            p.write_elem(i, &(i as f64 + 0.25));
        }
        p.header.count = 3;
        for i in 0..3 {
            assert_eq!(p.read_elem::<f64>(i), i as f64 + 0.25);
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut p = NetworkPacket::new(7, 3, 9, PacketOp::Reduce);
        for i in 0..7 {
            p.write_elem(i, &(100 + i as i32));
        }
        p.header.count = 5; // partial packet
        let bytes = p.pack();
        let back = NetworkPacket::unpack(&bytes).unwrap();
        assert_eq!(p, back);
        assert_eq!(back.valid_payload(Datatype::Int).len(), 20);
    }

    #[test]
    fn valid_payload_tracks_count_times_dtype() {
        let mut p = NetworkPacket::new(0, 1, 0, PacketOp::Send);
        // Every (dtype, count) pair within the packet bounds exposes exactly
        // count × size bytes, never spilling past the payload.
        for dtype in Datatype::ALL {
            for count in 0..=dtype.elems_per_packet() {
                p.header.count = count as u8;
                let v = p.valid_payload(dtype);
                assert_eq!(v.len(), count * dtype.size_bytes());
                assert!(v.len() <= PAYLOAD_BYTES);
            }
        }
        // An empty packet exposes no bytes regardless of dtype.
        p.header.count = 0;
        assert!(p.valid_payload(Datatype::Double).is_empty());
    }

    #[test]
    fn control_packet_arg() {
        let p = NetworkPacket::control(1, 0, 4, PacketOp::Credit, 0xdead_beef);
        assert_eq!(p.control_arg(), 0xdead_beef);
        assert_eq!(p.header.op, PacketOp::Credit);
    }
}
