//! The 4-byte packet header codec.
//!
//! Layout (little-endian byte order on the wire):
//!
//! ```text
//! byte 0: source rank       (8 bits)
//! byte 1: destination rank  (8 bits)
//! byte 2: port              (8 bits)
//! byte 3: [ op : 3 bits | valid count : 5 bits ]
//! ```
//!
//! This is the header of §4.2: "The header contains source and destination
//! ranks (1 B each), the port (1 B), the operation type (e.g., send/receive,
//! 3 bits), and the number of valid data items contained in the payload
//! (5 bits). We thus truncate the rank and port information with respect to
//! the SMI interface to 8 bit each."

use crate::{WireError, HEADER_BYTES, MAX_COUNT};

/// The 3-bit operation type carried by every packet.
///
/// `Send` is ordinary point-to-point data. The collective ops tag data
/// packets belonging to the respective collectives so that the support
/// kernels can tell them apart from p2p traffic on the same port. `Sync` and
/// `Credit` are the control messages of the collective synchronization
/// protocols of §3.3/§4.4 (ready-to-receive notifications and credit-based
/// flow control).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PacketOp {
    /// Point-to-point streaming message data.
    Send = 0,
    /// Broadcast data (root → non-root).
    Bcast = 1,
    /// Scatter data (root → non-root, per-rank slice).
    Scatter = 2,
    /// Gather data (non-root → root).
    Gather = 3,
    /// Reduce contribution data (non-root → root).
    Reduce = 4,
    /// "Ready to receive" rendezvous notification.
    Sync = 5,
    /// Credit grant (credit-based flow control).
    Credit = 6,
}

impl PacketOp {
    /// All assigned operation encodings.
    pub const ALL: [PacketOp; 7] = [
        PacketOp::Send,
        PacketOp::Bcast,
        PacketOp::Scatter,
        PacketOp::Gather,
        PacketOp::Reduce,
        PacketOp::Sync,
        PacketOp::Credit,
    ];

    /// Decode a 3-bit encoding.
    #[inline]
    pub fn from_bits(bits: u8) -> Result<Self, WireError> {
        match bits {
            0 => Ok(PacketOp::Send),
            1 => Ok(PacketOp::Bcast),
            2 => Ok(PacketOp::Scatter),
            3 => Ok(PacketOp::Gather),
            4 => Ok(PacketOp::Reduce),
            5 => Ok(PacketOp::Sync),
            6 => Ok(PacketOp::Credit),
            other => Err(WireError::BadOpEncoding(other)),
        }
    }

    /// The 3-bit encoding of this op.
    #[inline]
    pub const fn bits(self) -> u8 {
        self as u8
    }

    /// Whether this op carries message payload data (as opposed to being a
    /// pure control packet).
    #[inline]
    pub const fn carries_data(self) -> bool {
        !matches!(self, PacketOp::Sync | PacketOp::Credit)
    }
}

/// A decoded packet header.
///
/// Ranks and ports are stored as `u8` exactly as on the wire; conversion from
/// the API-level `usize` ranks happens (checked) at channel-open time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Header {
    /// Source rank (wire-truncated to 8 bits).
    pub src: u8,
    /// Destination rank (wire-truncated to 8 bits).
    pub dst: u8,
    /// Destination port (wire-truncated to 8 bits).
    pub port: u8,
    /// Operation type (3 bits on the wire).
    pub op: PacketOp,
    /// Number of valid data items in the payload (5 bits on the wire).
    pub count: u8,
}

impl Header {
    /// Build a header, checking that `count` fits the 5-bit field.
    #[inline]
    pub fn new(src: u8, dst: u8, port: u8, op: PacketOp, count: u8) -> Result<Self, WireError> {
        if count as usize > MAX_COUNT {
            return Err(WireError::CountOutOfRange(count as usize));
        }
        Ok(Header {
            src,
            dst,
            port,
            op,
            count,
        })
    }

    /// Pack into the 4-byte wire representation.
    #[inline]
    pub fn pack(&self) -> [u8; HEADER_BYTES] {
        debug_assert!(self.count as usize <= MAX_COUNT);
        [
            self.src,
            self.dst,
            self.port,
            (self.op.bits() << 5) | (self.count & 0x1f),
        ]
    }

    /// Unpack from the 4-byte wire representation.
    #[inline]
    pub fn unpack(bytes: &[u8; HEADER_BYTES]) -> Result<Self, WireError> {
        let op = PacketOp::from_bits(bytes[3] >> 5)?;
        Ok(Header {
            src: bytes[0],
            dst: bytes[1],
            port: bytes[2],
            op,
            count: bytes[3] & 0x1f,
        })
    }
}

/// Checked conversion of an API-level rank (`usize`) to the wire field.
#[inline]
pub fn rank_to_wire(rank: usize) -> Result<u8, WireError> {
    u8::try_from(rank).map_err(|_| WireError::RankOutOfRange(rank))
}

/// Checked conversion of an API-level port (`usize`) to the wire field.
#[inline]
pub fn port_to_wire(port: usize) -> Result<u8, WireError> {
    u8::try_from(port).map_err(|_| WireError::PortOutOfRange(port))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for &op in &PacketOp::ALL {
            for count in 0..=MAX_COUNT as u8 {
                let h = Header::new(3, 250, 17, op, count).unwrap();
                let packed = h.pack();
                let back = Header::unpack(&packed).unwrap();
                assert_eq!(h, back);
            }
        }
    }

    #[test]
    fn header_is_four_bytes() {
        let h = Header::new(0, 1, 0, PacketOp::Send, 7).unwrap();
        assert_eq!(h.pack().len(), HEADER_BYTES);
    }

    #[test]
    fn count_field_is_five_bits() {
        assert!(Header::new(0, 0, 0, PacketOp::Send, 31).is_ok());
        assert_eq!(
            Header::new(0, 0, 0, PacketOp::Send, 32),
            Err(WireError::CountOutOfRange(32))
        );
    }

    #[test]
    fn unassigned_op_encoding_rejected() {
        // op bits = 7 is unassigned.
        let bytes = [0u8, 0, 0, 7 << 5];
        assert_eq!(Header::unpack(&bytes), Err(WireError::BadOpEncoding(7)));
    }

    #[test]
    fn op_bits_are_three_bits() {
        for &op in &PacketOp::ALL {
            assert!(op.bits() < 8);
            assert_eq!(PacketOp::from_bits(op.bits()).unwrap(), op);
        }
    }

    #[test]
    fn control_ops_carry_no_data() {
        assert!(PacketOp::Send.carries_data());
        assert!(PacketOp::Reduce.carries_data());
        assert!(!PacketOp::Sync.carries_data());
        assert!(!PacketOp::Credit.carries_data());
    }

    #[test]
    fn wire_rank_conversion_checked() {
        assert_eq!(rank_to_wire(255).unwrap(), 255);
        assert!(rank_to_wire(256).is_err());
        assert_eq!(port_to_wire(0).unwrap(), 0);
        assert!(port_to_wire(1000).is_err());
    }
}
