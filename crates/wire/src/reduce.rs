//! Reduction operations (`SMI_ADD`, `SMI_MAX`, `SMI_MIN`).
//!
//! The Reduce support kernel (§4.4) applies the operation element-wise on
//! payload data. Reductions are defined both on typed Rust values (for the
//! application-facing API) and directly on little-endian payload bytes given
//! a [`Datatype`] (for the transport/fabric layer, which is untyped).

use serde::{Deserialize, Serialize};

use crate::{Datatype, SmiType};

/// A reduction operator, as passed to `SMI_Open_reduce_channel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceOp {
    /// Element-wise sum (`SMI_ADD`).
    Add,
    /// Element-wise maximum (`SMI_MAX`).
    Max,
    /// Element-wise minimum (`SMI_MIN`).
    Min,
}

impl ReduceOp {
    /// All reduction operators.
    pub const ALL: [ReduceOp; 3] = [ReduceOp::Add, ReduceOp::Max, ReduceOp::Min];

    /// Apply the operator to a pair of typed values.
    ///
    /// For floats, `Max`/`Min` follow IEEE `maxNum`/`minNum` semantics
    /// (`f32::max`): if one operand is NaN, the other is returned.
    #[inline]
    pub fn apply<T: SmiNumeric>(self, a: T, b: T) -> T {
        match self {
            ReduceOp::Add => a.num_add(b),
            ReduceOp::Max => a.num_max(b),
            ReduceOp::Min => a.num_min(b),
        }
    }

    /// The identity element of the operator for a datatype, as payload bytes.
    pub fn identity_bytes(self, dtype: Datatype, dst: &mut [u8]) {
        macro_rules! write_ident {
            ($ty:ty) => {{
                let v: $ty = match self {
                    ReduceOp::Add => <$ty as SmiNumeric>::ZERO,
                    ReduceOp::Max => <$ty as SmiNumeric>::MIN_VALUE,
                    ReduceOp::Min => <$ty as SmiNumeric>::MAX_VALUE,
                };
                v.write_le(dst);
            }};
        }
        match dtype {
            Datatype::Char => write_ident!(u8),
            Datatype::Short => write_ident!(i16),
            Datatype::Int => write_ident!(i32),
            Datatype::Float => write_ident!(f32),
            Datatype::Double => write_ident!(f64),
        }
    }

    /// Element-wise `acc[i] = op(acc[i], contrib[i])` on little-endian payload
    /// bytes. Both slices must hold the same whole number of elements.
    pub fn fold_bytes(self, dtype: Datatype, acc: &mut [u8], contrib: &[u8]) {
        assert_eq!(acc.len(), contrib.len(), "payload length mismatch");
        let sz = dtype.size_bytes();
        assert_eq!(acc.len() % sz, 0, "payload not a whole number of elements");
        macro_rules! fold {
            ($ty:ty) => {
                for (a, c) in acc.chunks_exact_mut(sz).zip(contrib.chunks_exact(sz)) {
                    let v = self.apply(<$ty>::read_le(a), <$ty>::read_le(c));
                    v.write_le(a);
                }
            };
        }
        match dtype {
            Datatype::Char => fold!(u8),
            Datatype::Short => fold!(i16),
            Datatype::Int => fold!(i32),
            Datatype::Float => fold!(f32),
            Datatype::Double => fold!(f64),
        }
    }
}

/// Numeric behaviour needed by [`ReduceOp`], implemented for all SMI element
/// types. Integer addition wraps (matching what fixed-width hardware adders
/// do); float max/min use IEEE `maxNum`/`minNum` semantics.
pub trait SmiNumeric: SmiType {
    /// Additive identity.
    const ZERO: Self;
    /// Smallest representable value (identity for `Max`).
    const MIN_VALUE: Self;
    /// Largest representable value (identity for `Min`).
    const MAX_VALUE: Self;

    /// Wrapping/IEEE addition.
    fn num_add(self, other: Self) -> Self;
    /// Maximum.
    fn num_max(self, other: Self) -> Self;
    /// Minimum.
    fn num_min(self, other: Self) -> Self;
}

macro_rules! impl_numeric_int {
    ($ty:ty) => {
        impl SmiNumeric for $ty {
            const ZERO: Self = 0;
            const MIN_VALUE: Self = <$ty>::MIN;
            const MAX_VALUE: Self = <$ty>::MAX;

            #[inline]
            fn num_add(self, other: Self) -> Self {
                self.wrapping_add(other)
            }
            #[inline]
            fn num_max(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline]
            fn num_min(self, other: Self) -> Self {
                self.min(other)
            }
        }
    };
}

macro_rules! impl_numeric_float {
    ($ty:ty) => {
        impl SmiNumeric for $ty {
            const ZERO: Self = 0.0;
            const MIN_VALUE: Self = <$ty>::NEG_INFINITY;
            const MAX_VALUE: Self = <$ty>::INFINITY;

            #[inline]
            fn num_add(self, other: Self) -> Self {
                self + other
            }
            #[inline]
            fn num_max(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline]
            fn num_min(self, other: Self) -> Self {
                self.min(other)
            }
        }
    };
}

impl_numeric_int!(u8);
impl_numeric_int!(i16);
impl_numeric_int!(i32);
impl_numeric_float!(f32);
impl_numeric_float!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_apply() {
        assert_eq!(ReduceOp::Add.apply(3i32, 4), 7);
        assert_eq!(ReduceOp::Max.apply(3i32, 4), 4);
        assert_eq!(ReduceOp::Min.apply(3i32, 4), 3);
        assert_eq!(ReduceOp::Add.apply(1.5f32, 2.25), 3.75);
        assert_eq!(ReduceOp::Max.apply(-1.0f64, 2.0), 2.0);
    }

    #[test]
    fn integer_add_wraps() {
        assert_eq!(ReduceOp::Add.apply(i32::MAX, 1), i32::MIN);
        assert_eq!(ReduceOp::Add.apply(255u8, 2), 1);
    }

    #[test]
    fn float_max_ignores_nan() {
        assert_eq!(ReduceOp::Max.apply(f32::NAN, 2.0), 2.0);
        assert_eq!(ReduceOp::Min.apply(3.0f32, f32::NAN), 3.0);
    }

    #[test]
    fn identities_are_identities() {
        for &op in &ReduceOp::ALL {
            for &dt in &Datatype::ALL {
                let sz = dt.size_bytes();
                let mut ident = vec![0u8; sz];
                op.identity_bytes(dt, &mut ident);
                // fold(identity, x) == x for a few sample values
                for sample in [0u8, 1, 7, 200] {
                    let mut acc = ident.clone();
                    let contrib = vec![sample; sz];
                    // NB: arbitrary bytes are valid for all our types.
                    op.fold_bytes(dt, &mut acc, &contrib);
                    let mut direct = contrib.clone();
                    // fold identity into the contribution the other way too:
                    op.fold_bytes(dt, &mut direct, &ident);
                    assert_eq!(acc, direct, "{op:?} {dt:?} not commutative on identity");
                }
            }
        }
    }

    #[test]
    fn fold_bytes_matches_typed_float() {
        let xs: Vec<f32> = vec![1.0, -2.5, 3.25];
        let ys: Vec<f32> = vec![0.5, 10.0, -1.0];
        for &op in &ReduceOp::ALL {
            let mut acc_bytes: Vec<u8> = xs.iter().flat_map(|v| v.to_le_bytes()).collect();
            let contrib: Vec<u8> = ys.iter().flat_map(|v| v.to_le_bytes()).collect();
            op.fold_bytes(Datatype::Float, &mut acc_bytes, &contrib);
            let got: Vec<f32> = acc_bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let want: Vec<f32> = xs.iter().zip(&ys).map(|(&a, &b)| op.apply(a, b)).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fold_bytes_length_checked() {
        let mut a = vec![0u8; 8];
        let b = vec![0u8; 4];
        ReduceOp::Add.fold_bytes(Datatype::Int, &mut a, &b);
    }
}
