//! Message framing: packing an element stream into packets and back.
//!
//! This is the logic inside `SMI_Push` and `SMI_Pop` (§4.2): "Push internally
//! accumulates data items until a network packet is full. The packet is then
//! forwarded to CKS […] Pop internally unpacks data returned from CKR, and
//! transmits it to the application one element at a time."

use crate::run::PayloadRun;
use crate::{Datatype, Header, NetworkPacket, PacketOp, SmiType};

/// Accumulates pushed elements into outgoing packets.
///
/// A `Framer` is created per open send-side channel with the channel's header
/// template (src/dst/port/op). Elements are appended with [`Framer::push`];
/// whenever the payload fills up, a finished packet is returned. The final,
/// possibly partial packet is obtained from [`Framer::flush`].
#[derive(Debug, Clone)]
pub struct Framer {
    dtype: Datatype,
    elems_per_packet: usize,
    current: NetworkPacket,
    filled: usize,
}

impl Framer {
    /// New framer for a channel sending `dtype` elements from `src` to
    /// `dst`:`port` tagged with `op`.
    pub fn new(dtype: Datatype, src: u8, dst: u8, port: u8, op: PacketOp) -> Self {
        Framer {
            dtype,
            elems_per_packet: dtype.elems_per_packet(),
            current: NetworkPacket::new(src, dst, port, op),
            filled: 0,
        }
    }

    /// The datatype this framer was created with.
    #[inline]
    pub fn dtype(&self) -> Datatype {
        self.dtype
    }

    /// The header template (src/dst/port/op) packets are stamped with.
    /// Zero-copy senders use this to build [`crate::PacketRun`]s that are
    /// wire-equivalent to this framer's packets.
    #[inline]
    pub fn header_template(&self) -> Header {
        self.current.header
    }

    /// Append one element. Returns a completed packet when the payload fills.
    ///
    /// Panics in debug builds if `T` does not match the channel datatype;
    /// the typed channel API makes a mismatch unrepresentable, and the
    /// untyped path ([`Framer::push_bytes`]) re-checks sizes.
    #[inline]
    pub fn push<T: SmiType>(&mut self, value: &T) -> Option<NetworkPacket> {
        debug_assert_eq!(T::DATATYPE.size_bytes(), self.dtype.size_bytes());
        self.current.write_elem(self.filled, value);
        self.filled += 1;
        self.maybe_complete()
    }

    /// Append one element given as raw little-endian bytes (used by untyped
    /// transport paths; `bytes.len()` must equal the element size).
    #[inline]
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Option<NetworkPacket> {
        let sz = self.dtype.size_bytes();
        assert_eq!(bytes.len(), sz, "element byte size mismatch");
        let off = self.filled * sz;
        self.current.payload[off..off + sz].copy_from_slice(bytes);
        self.filled += 1;
        self.maybe_complete()
    }

    /// Append up to one packet's worth of elements from `values`, returning
    /// `(consumed, completed_packet)`. The bulk analogue of [`Framer::push`]:
    /// callers loop until the slice is drained, collecting completed packets
    /// into bursts.
    #[inline]
    pub fn push_slice<T: SmiType>(&mut self, values: &[T]) -> (usize, Option<NetworkPacket>) {
        debug_assert_eq!(T::DATATYPE.size_bytes(), self.dtype.size_bytes());
        let take = (self.elems_per_packet - self.filled).min(values.len());
        for v in &values[..take] {
            self.current.write_elem(self.filled, v);
            self.filled += 1;
        }
        (take, self.maybe_complete())
    }

    #[inline]
    fn maybe_complete(&mut self) -> Option<NetworkPacket> {
        if self.filled == self.elems_per_packet {
            Some(self.take_packet())
        } else {
            None
        }
    }

    /// Emit the in-progress packet if it holds any elements (the final,
    /// partial packet of a message).
    #[inline]
    pub fn flush(&mut self) -> Option<NetworkPacket> {
        if self.filled > 0 {
            Some(self.take_packet())
        } else {
            None
        }
    }

    /// Number of elements accumulated in the unfinished packet.
    #[inline]
    pub fn pending(&self) -> usize {
        self.filled
    }

    fn take_packet(&mut self) -> NetworkPacket {
        let mut pkt = self.current;
        pkt.header.count = self.filled as u8;
        self.filled = 0;
        self.current.payload = [0; crate::PAYLOAD_BYTES];
        pkt
    }
}

/// The current element segment a [`Deframer`] is draining: one inline
/// packet's payload, or a refcounted run view of any length.
#[derive(Debug, Clone)]
enum Segment {
    /// An inline packet (the copying path: the packet struct was copied in).
    Inline(NetworkPacket),
    /// A refcounted run view (the zero-copy path: no payload bytes moved).
    Run(PayloadRun),
}

/// Unpacks received packets back into an element stream.
///
/// Elements are consumed one at a time with [`Deframer::pop`]; a new packet
/// is fed in with [`Deframer::refill`] — or a whole refcounted run with
/// [`Deframer::refill_run`] — whenever the deframer runs
/// [`Deframer::is_empty`].
#[derive(Debug, Clone)]
pub struct Deframer {
    dtype: Datatype,
    seg: Segment,
    next: usize,
    valid: usize,
}

impl Deframer {
    /// New, empty deframer for `dtype` elements.
    pub fn new(dtype: Datatype) -> Self {
        Deframer {
            dtype,
            seg: Segment::Inline(NetworkPacket::new(0, 0, 0, PacketOp::Send)),
            next: 0,
            valid: 0,
        }
    }

    /// The datatype this deframer was created with.
    #[inline]
    pub fn dtype(&self) -> Datatype {
        self.dtype
    }

    /// True when all valid elements of the current segment have been popped.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.next == self.valid
    }

    /// Load the next packet. Panics if the previous segment was not drained —
    /// SMI guarantees in-order delivery, so the transport never overwrites
    /// undelivered elements.
    pub fn refill(&mut self, packet: NetworkPacket) {
        assert!(self.is_empty(), "refill with undrained elements");
        self.valid = packet.header.count as usize;
        self.seg = Segment::Inline(packet);
        self.next = 0;
    }

    /// Load a whole payload run as the next segment (the zero-copy path:
    /// only the `Arc` handle moves). Panics if the previous segment was not
    /// drained, like [`Deframer::refill`].
    pub fn refill_run(&mut self, run: PayloadRun) {
        assert!(self.is_empty(), "refill with undrained elements");
        let sz = self.dtype.size_bytes();
        debug_assert_eq!(run.len() % sz, 0, "run not element-aligned");
        self.valid = run.len() / sz;
        self.seg = Segment::Run(run);
        self.next = 0;
    }

    /// Read element `i` of the current segment.
    #[inline]
    fn read_elem<T: SmiType>(&self, i: usize) -> T {
        match &self.seg {
            Segment::Inline(p) => p.read_elem::<T>(i),
            Segment::Run(r) => {
                let sz = self.dtype.size_bytes();
                T::read_le(&r.as_slice()[i * sz..(i + 1) * sz])
            }
        }
    }

    /// Pop the next element, or `None` if the current segment is drained.
    #[inline]
    pub fn pop<T: SmiType>(&mut self) -> Option<T> {
        debug_assert_eq!(T::DATATYPE.size_bytes(), self.dtype.size_bytes());
        if self.is_empty() {
            return None;
        }
        let v = self.read_elem::<T>(self.next);
        self.next += 1;
        Some(v)
    }

    /// Pop up to `out.len()` elements into `out`, returning how many were
    /// written (bounded by the valid remainder of the current segment). The
    /// bulk analogue of [`Deframer::pop`].
    #[inline]
    pub fn pop_slice<T: SmiType>(&mut self, out: &mut [T]) -> usize {
        debug_assert_eq!(T::DATATYPE.size_bytes(), self.dtype.size_bytes());
        let n = (self.valid - self.next).min(out.len());
        for slot in out[..n].iter_mut() {
            *slot = self.read_elem::<T>(self.next);
            self.next += 1;
        }
        n
    }

    /// Pop the next element as raw little-endian bytes into `dst`.
    #[inline]
    pub fn pop_bytes(&mut self, dst: &mut [u8]) -> bool {
        let sz = self.dtype.size_bytes();
        assert_eq!(dst.len(), sz, "element byte size mismatch");
        if self.is_empty() {
            return false;
        }
        let off = self.next * sz;
        match &self.seg {
            Segment::Inline(p) => dst.copy_from_slice(&p.payload[off..off + sz]),
            Segment::Run(r) => dst.copy_from_slice(&r.as_slice()[off..off + sz]),
        }
        self.next += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_all<T: SmiType>(elems: &[T]) -> Vec<NetworkPacket> {
        let mut fr = Framer::new(T::DATATYPE, 0, 1, 0, PacketOp::Send);
        let mut pkts = Vec::new();
        for e in elems {
            if let Some(p) = fr.push(e) {
                pkts.push(p);
            }
        }
        if let Some(p) = fr.flush() {
            pkts.push(p);
        }
        pkts
    }

    fn deframe_all<T: SmiType>(pkts: &[NetworkPacket], n: usize) -> Vec<T> {
        let mut df = Deframer::new(T::DATATYPE);
        let mut out = Vec::with_capacity(n);
        let mut it = pkts.iter();
        while out.len() < n {
            if df.is_empty() {
                df.refill(*it.next().expect("enough packets"));
            }
            out.push(df.pop::<T>().expect("element available"));
        }
        out
    }

    #[test]
    fn floats_pack_seven_per_packet() {
        let elems: Vec<f32> = (0..23).map(|i| i as f32).collect();
        let pkts = frame_all(&elems);
        // 23 floats -> 3 full packets of 7 + 1 partial of 2.
        assert_eq!(pkts.len(), 4);
        assert_eq!(pkts[0].header.count, 7);
        assert_eq!(pkts[3].header.count, 2);
        assert_eq!(deframe_all::<f32>(&pkts, 23), elems);
    }

    #[test]
    fn exact_multiple_has_no_partial_packet() {
        let elems: Vec<i32> = (0..14).collect();
        let pkts = frame_all(&elems);
        assert_eq!(pkts.len(), 2);
        assert!(pkts.iter().all(|p| p.header.count == 7));
    }

    #[test]
    fn single_element_message() {
        let elems = [42.0f64];
        let pkts = frame_all(&elems);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].header.count, 1);
        assert_eq!(deframe_all::<f64>(&pkts, 1), elems);
    }

    #[test]
    fn header_fields_propagate() {
        let mut fr = Framer::new(Datatype::Int, 5, 2, 9, PacketOp::Gather);
        let p = loop {
            if let Some(p) = fr.push(&1i32) {
                break p;
            }
        };
        assert_eq!(p.header.src, 5);
        assert_eq!(p.header.dst, 2);
        assert_eq!(p.header.port, 9);
        assert_eq!(p.header.op, PacketOp::Gather);
    }

    #[test]
    fn bytes_interface_matches_typed() {
        let mut fr_t = Framer::new(Datatype::Short, 0, 1, 0, PacketOp::Send);
        let mut fr_b = Framer::new(Datatype::Short, 0, 1, 0, PacketOp::Send);
        let mut out_t = Vec::new();
        let mut out_b = Vec::new();
        for i in 0..30i16 {
            if let Some(p) = fr_t.push(&i) {
                out_t.push(p);
            }
            if let Some(p) = fr_b.push_bytes(&i.to_le_bytes()) {
                out_b.push(p);
            }
        }
        out_t.extend(fr_t.flush());
        out_b.extend(fr_b.flush());
        assert_eq!(out_t, out_b);
    }

    #[test]
    fn slice_framing_matches_elementwise() {
        let elems: Vec<i32> = (0..40).collect();
        let mut fr = Framer::new(Datatype::Int, 0, 1, 0, PacketOp::Send);
        let mut pkts = Vec::new();
        let mut i = 0;
        while i < elems.len() {
            let (k, p) = fr.push_slice(&elems[i..]);
            assert!(k > 0);
            i += k;
            pkts.extend(p);
        }
        pkts.extend(fr.flush());
        assert_eq!(pkts, frame_all(&elems));
        // Bulk deframing round-trips too.
        let mut df = Deframer::new(Datatype::Int);
        let mut out = vec![0i32; 40];
        let mut filled = 0;
        let mut it = pkts.iter();
        while filled < out.len() {
            if df.is_empty() {
                df.refill(*it.next().expect("enough packets"));
            }
            filled += df.pop_slice(&mut out[filled..]);
        }
        assert_eq!(out, elems);
    }

    #[test]
    #[should_panic(expected = "undrained")]
    fn refill_undrained_panics() {
        let mut df = Deframer::new(Datatype::Float);
        let mut fr = Framer::new(Datatype::Float, 0, 1, 0, PacketOp::Send);
        fr.push(&1.0f32);
        let p = fr.flush().unwrap();
        df.refill(p);
        df.refill(p); // still holds one element
    }

    #[test]
    fn zero_length_slices_are_noops() {
        let mut fr = Framer::new(Datatype::Int, 0, 1, 0, PacketOp::Send);
        let (consumed, pkt) = fr.push_slice::<i32>(&[]);
        assert_eq!(consumed, 0);
        assert!(pkt.is_none());
        assert_eq!(fr.pending(), 0);
        assert!(fr.flush().is_none(), "nothing staged, nothing flushed");

        let mut df = Deframer::new(Datatype::Int);
        let mut out: [i32; 0] = [];
        assert_eq!(df.pop_slice(&mut out), 0);
        // A partially-filled deframer also writes nothing into an empty out.
        df.refill(frame_all(&[5i32])[0]);
        assert_eq!(df.pop_slice(&mut out), 0);
        assert_eq!(df.pop::<i32>(), Some(5));
    }

    #[test]
    fn partial_final_packet_bounds_valid_elements() {
        // 16 ints -> 7 + 7 + 2: the final partial packet must deliver
        // exactly 2 elements even though the payload has room for 7.
        let elems: Vec<i32> = (100..116).collect();
        let pkts = frame_all(&elems);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[2].header.count, 2);
        let mut df = Deframer::new(Datatype::Int);
        df.refill(pkts[2]);
        let mut out = vec![0i32; 7];
        assert_eq!(df.pop_slice(&mut out), 2);
        assert_eq!(&out[..2], &elems[14..16]);
        assert!(df.is_empty());
        assert_eq!(df.pop::<i32>(), None);
    }

    #[test]
    fn run_refill_matches_packet_refill() {
        let elems: Vec<f32> = (0..23).map(|i| i as f32 * 1.5).collect();
        let pkts = frame_all(&elems);
        let run = crate::PacketRun::from_elems(0, 1, 0, PacketOp::Send, &elems);
        let via_pkts = deframe_all::<f32>(&pkts, 23);
        let mut df = Deframer::new(Datatype::Float);
        df.refill_run(run.payload);
        let mut via_run = vec![0.0f32; 23];
        let mut filled = 0;
        while filled < via_run.len() {
            filled += df.pop_slice(&mut via_run[filled..]);
        }
        assert_eq!(via_run, via_pkts);
    }

    #[test]
    #[should_panic(expected = "undrained")]
    fn refill_run_undrained_panics() {
        let mut df = Deframer::new(Datatype::Char);
        df.refill_run(crate::PayloadRun::from_bytes(&[1, 2, 3]));
        df.refill_run(crate::PayloadRun::from_bytes(&[4]));
    }

    #[test]
    fn chars_pack_28_per_packet() {
        let elems: Vec<u8> = (0..57).collect();
        let pkts = frame_all(&elems);
        assert_eq!(pkts.len(), 3); // 28 + 28 + 1
        assert_eq!(pkts[2].header.count, 1);
        assert_eq!(deframe_all::<u8>(&pkts, 57), elems);
    }
}
