//! Message framing: packing an element stream into packets and back.
//!
//! This is the logic inside `SMI_Push` and `SMI_Pop` (§4.2): "Push internally
//! accumulates data items until a network packet is full. The packet is then
//! forwarded to CKS […] Pop internally unpacks data returned from CKR, and
//! transmits it to the application one element at a time."

use crate::{Datatype, NetworkPacket, PacketOp, SmiType};

/// Accumulates pushed elements into outgoing packets.
///
/// A `Framer` is created per open send-side channel with the channel's header
/// template (src/dst/port/op). Elements are appended with [`Framer::push`];
/// whenever the payload fills up, a finished packet is returned. The final,
/// possibly partial packet is obtained from [`Framer::flush`].
#[derive(Debug, Clone)]
pub struct Framer {
    dtype: Datatype,
    elems_per_packet: usize,
    current: NetworkPacket,
    filled: usize,
}

impl Framer {
    /// New framer for a channel sending `dtype` elements from `src` to
    /// `dst`:`port` tagged with `op`.
    pub fn new(dtype: Datatype, src: u8, dst: u8, port: u8, op: PacketOp) -> Self {
        Framer {
            dtype,
            elems_per_packet: dtype.elems_per_packet(),
            current: NetworkPacket::new(src, dst, port, op),
            filled: 0,
        }
    }

    /// The datatype this framer was created with.
    #[inline]
    pub fn dtype(&self) -> Datatype {
        self.dtype
    }

    /// Append one element. Returns a completed packet when the payload fills.
    ///
    /// Panics in debug builds if `T` does not match the channel datatype;
    /// the typed channel API makes a mismatch unrepresentable, and the
    /// untyped path ([`Framer::push_bytes`]) re-checks sizes.
    #[inline]
    pub fn push<T: SmiType>(&mut self, value: &T) -> Option<NetworkPacket> {
        debug_assert_eq!(T::DATATYPE.size_bytes(), self.dtype.size_bytes());
        self.current.write_elem(self.filled, value);
        self.filled += 1;
        self.maybe_complete()
    }

    /// Append one element given as raw little-endian bytes (used by untyped
    /// transport paths; `bytes.len()` must equal the element size).
    #[inline]
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Option<NetworkPacket> {
        let sz = self.dtype.size_bytes();
        assert_eq!(bytes.len(), sz, "element byte size mismatch");
        let off = self.filled * sz;
        self.current.payload[off..off + sz].copy_from_slice(bytes);
        self.filled += 1;
        self.maybe_complete()
    }

    /// Append up to one packet's worth of elements from `values`, returning
    /// `(consumed, completed_packet)`. The bulk analogue of [`Framer::push`]:
    /// callers loop until the slice is drained, collecting completed packets
    /// into bursts.
    #[inline]
    pub fn push_slice<T: SmiType>(&mut self, values: &[T]) -> (usize, Option<NetworkPacket>) {
        debug_assert_eq!(T::DATATYPE.size_bytes(), self.dtype.size_bytes());
        let take = (self.elems_per_packet - self.filled).min(values.len());
        for v in &values[..take] {
            self.current.write_elem(self.filled, v);
            self.filled += 1;
        }
        (take, self.maybe_complete())
    }

    #[inline]
    fn maybe_complete(&mut self) -> Option<NetworkPacket> {
        if self.filled == self.elems_per_packet {
            Some(self.take_packet())
        } else {
            None
        }
    }

    /// Emit the in-progress packet if it holds any elements (the final,
    /// partial packet of a message).
    #[inline]
    pub fn flush(&mut self) -> Option<NetworkPacket> {
        if self.filled > 0 {
            Some(self.take_packet())
        } else {
            None
        }
    }

    /// Number of elements accumulated in the unfinished packet.
    #[inline]
    pub fn pending(&self) -> usize {
        self.filled
    }

    fn take_packet(&mut self) -> NetworkPacket {
        let mut pkt = self.current;
        pkt.header.count = self.filled as u8;
        self.filled = 0;
        self.current.payload = [0; crate::PAYLOAD_BYTES];
        pkt
    }
}

/// Unpacks received packets back into an element stream.
///
/// Elements are consumed one at a time with [`Deframer::pop`]; a new packet is
/// fed in with [`Deframer::refill`] whenever the deframer runs [`Deframer::is_empty`].
#[derive(Debug, Clone)]
pub struct Deframer {
    dtype: Datatype,
    packet: NetworkPacket,
    next: usize,
    valid: usize,
}

impl Deframer {
    /// New, empty deframer for `dtype` elements.
    pub fn new(dtype: Datatype) -> Self {
        Deframer {
            dtype,
            packet: NetworkPacket::new(0, 0, 0, PacketOp::Send),
            next: 0,
            valid: 0,
        }
    }

    /// The datatype this deframer was created with.
    #[inline]
    pub fn dtype(&self) -> Datatype {
        self.dtype
    }

    /// True when all valid elements of the current packet have been popped.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.next == self.valid
    }

    /// Load the next packet. Panics if the previous one was not drained —
    /// SMI guarantees in-order delivery, so the transport never overwrites
    /// undelivered elements.
    pub fn refill(&mut self, packet: NetworkPacket) {
        assert!(self.is_empty(), "refill with undrained elements");
        self.valid = packet.header.count as usize;
        self.packet = packet;
        self.next = 0;
    }

    /// Pop the next element, or `None` if the current packet is drained.
    #[inline]
    pub fn pop<T: SmiType>(&mut self) -> Option<T> {
        debug_assert_eq!(T::DATATYPE.size_bytes(), self.dtype.size_bytes());
        if self.is_empty() {
            return None;
        }
        let v = self.packet.read_elem::<T>(self.next);
        self.next += 1;
        Some(v)
    }

    /// Pop up to `out.len()` elements into `out`, returning how many were
    /// written (bounded by the valid remainder of the current packet). The
    /// bulk analogue of [`Deframer::pop`].
    #[inline]
    pub fn pop_slice<T: SmiType>(&mut self, out: &mut [T]) -> usize {
        debug_assert_eq!(T::DATATYPE.size_bytes(), self.dtype.size_bytes());
        let n = (self.valid - self.next).min(out.len());
        for slot in out[..n].iter_mut() {
            *slot = self.packet.read_elem::<T>(self.next);
            self.next += 1;
        }
        n
    }

    /// Pop the next element as raw little-endian bytes into `dst`.
    #[inline]
    pub fn pop_bytes(&mut self, dst: &mut [u8]) -> bool {
        let sz = self.dtype.size_bytes();
        assert_eq!(dst.len(), sz, "element byte size mismatch");
        if self.is_empty() {
            return false;
        }
        let off = self.next * sz;
        dst.copy_from_slice(&self.packet.payload[off..off + sz]);
        self.next += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_all<T: SmiType>(elems: &[T]) -> Vec<NetworkPacket> {
        let mut fr = Framer::new(T::DATATYPE, 0, 1, 0, PacketOp::Send);
        let mut pkts = Vec::new();
        for e in elems {
            if let Some(p) = fr.push(e) {
                pkts.push(p);
            }
        }
        if let Some(p) = fr.flush() {
            pkts.push(p);
        }
        pkts
    }

    fn deframe_all<T: SmiType>(pkts: &[NetworkPacket], n: usize) -> Vec<T> {
        let mut df = Deframer::new(T::DATATYPE);
        let mut out = Vec::with_capacity(n);
        let mut it = pkts.iter();
        while out.len() < n {
            if df.is_empty() {
                df.refill(*it.next().expect("enough packets"));
            }
            out.push(df.pop::<T>().expect("element available"));
        }
        out
    }

    #[test]
    fn floats_pack_seven_per_packet() {
        let elems: Vec<f32> = (0..23).map(|i| i as f32).collect();
        let pkts = frame_all(&elems);
        // 23 floats -> 3 full packets of 7 + 1 partial of 2.
        assert_eq!(pkts.len(), 4);
        assert_eq!(pkts[0].header.count, 7);
        assert_eq!(pkts[3].header.count, 2);
        assert_eq!(deframe_all::<f32>(&pkts, 23), elems);
    }

    #[test]
    fn exact_multiple_has_no_partial_packet() {
        let elems: Vec<i32> = (0..14).collect();
        let pkts = frame_all(&elems);
        assert_eq!(pkts.len(), 2);
        assert!(pkts.iter().all(|p| p.header.count == 7));
    }

    #[test]
    fn single_element_message() {
        let elems = [42.0f64];
        let pkts = frame_all(&elems);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].header.count, 1);
        assert_eq!(deframe_all::<f64>(&pkts, 1), elems);
    }

    #[test]
    fn header_fields_propagate() {
        let mut fr = Framer::new(Datatype::Int, 5, 2, 9, PacketOp::Gather);
        let p = loop {
            if let Some(p) = fr.push(&1i32) {
                break p;
            }
        };
        assert_eq!(p.header.src, 5);
        assert_eq!(p.header.dst, 2);
        assert_eq!(p.header.port, 9);
        assert_eq!(p.header.op, PacketOp::Gather);
    }

    #[test]
    fn bytes_interface_matches_typed() {
        let mut fr_t = Framer::new(Datatype::Short, 0, 1, 0, PacketOp::Send);
        let mut fr_b = Framer::new(Datatype::Short, 0, 1, 0, PacketOp::Send);
        let mut out_t = Vec::new();
        let mut out_b = Vec::new();
        for i in 0..30i16 {
            if let Some(p) = fr_t.push(&i) {
                out_t.push(p);
            }
            if let Some(p) = fr_b.push_bytes(&i.to_le_bytes()) {
                out_b.push(p);
            }
        }
        out_t.extend(fr_t.flush());
        out_b.extend(fr_b.flush());
        assert_eq!(out_t, out_b);
    }

    #[test]
    fn slice_framing_matches_elementwise() {
        let elems: Vec<i32> = (0..40).collect();
        let mut fr = Framer::new(Datatype::Int, 0, 1, 0, PacketOp::Send);
        let mut pkts = Vec::new();
        let mut i = 0;
        while i < elems.len() {
            let (k, p) = fr.push_slice(&elems[i..]);
            assert!(k > 0);
            i += k;
            pkts.extend(p);
        }
        pkts.extend(fr.flush());
        assert_eq!(pkts, frame_all(&elems));
        // Bulk deframing round-trips too.
        let mut df = Deframer::new(Datatype::Int);
        let mut out = vec![0i32; 40];
        let mut filled = 0;
        let mut it = pkts.iter();
        while filled < out.len() {
            if df.is_empty() {
                df.refill(*it.next().expect("enough packets"));
            }
            filled += df.pop_slice(&mut out[filled..]);
        }
        assert_eq!(out, elems);
    }

    #[test]
    #[should_panic(expected = "undrained")]
    fn refill_undrained_panics() {
        let mut df = Deframer::new(Datatype::Float);
        let mut fr = Framer::new(Datatype::Float, 0, 1, 0, PacketOp::Send);
        fr.push(&1.0f32);
        let p = fr.flush().unwrap();
        df.refill(p);
        df.refill(p); // still holds one element
    }

    #[test]
    fn chars_pack_28_per_packet() {
        let elems: Vec<u8> = (0..57).collect();
        let pkts = frame_all(&elems);
        assert_eq!(pkts.len(), 3); // 28 + 28 + 1
        assert_eq!(pkts[2].header.count, 1);
        assert_eq!(deframe_all::<u8>(&pkts, 57), elems);
    }
}
