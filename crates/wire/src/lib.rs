//! # smi-wire — the SMI wire format
//!
//! This crate implements the network-packet layer of the Streaming Message
//! Interface (SMI) reference implementation, as described in §4.1–§4.2 of
//! *De Matteis et al., "Streaming Message Interface", SC 2019*:
//!
//! > "network packets in our implementation are composed of 4 Bytes of header
//! > data, and a payload of 28 Bytes. The header contains source and
//! > destination ranks (1 B each), the port (1 B), the operation type
//! > (e.g., send/receive, 3 bits), and the number of valid data items
//! > contained in the payload (5 bits)."
//!
//! A [`NetworkPacket`] is exactly 32 bytes — the width of the 256-bit I/O
//! channels exposed by the board support package on the paper's Nallatech
//! 520N boards. The packet is the minimal unit of routing; it may carry one
//! or more data elements of a given [`Datatype`].
//!
//! The crate provides:
//!
//! * [`Header`] — the 4-byte packet header codec (pack/unpack, checked).
//! * [`NetworkPacket`] — header + 28-byte payload, with typed element access.
//! * [`Datatype`] / [`SmiType`] — the SMI datatypes (`SMI_CHAR` … `SMI_DOUBLE`)
//!   and their mapping onto Rust types.
//! * [`Framer`] / [`Deframer`] — packing a stream of elements into packets and
//!   back, as done inside `SMI_Push` / `SMI_Pop` ("Push internally accumulates
//!   data items until a network packet is full").
//! * [`ReduceOp`] — the reduction operations (`SMI_ADD`, `SMI_MAX`, `SMI_MIN`)
//!   applied element-wise on payloads by the Reduce support kernel.
//! * [`PayloadRun`] / [`PacketRun`] / [`Frame`] — refcounted run buffers: the
//!   zero-copy payload plane's unit, standing for a run of consecutive
//!   packets whose payload is shared by reference instead of copied per hop.
//!
//! Everything here is plain data and codecs: no I/O, no threads, no clocks.
//! Both the functional runtime (`smi`) and the cycle-level simulator
//! (`smi-fabric`) speak this exact format, so a packet produced by one can be
//! decoded by the other.

#![warn(missing_docs)]

pub mod datatype;
pub mod error;
pub mod framing;
pub mod header;
pub mod packet;
pub mod reduce;
pub mod run;

pub use datatype::{Datatype, SmiType};
pub use error::WireError;
pub use framing::{Deframer, Framer};
pub use header::{Header, PacketOp};
pub use packet::NetworkPacket;
pub use reduce::ReduceOp;
pub use run::{Frame, PacketRun, PayloadRun};

/// Total size of a network packet in bytes (256-bit I/O channel width).
pub const PACKET_BYTES: usize = 32;
/// Size of the packet header in bytes.
pub const HEADER_BYTES: usize = 4;
/// Size of the packet payload in bytes.
pub const PAYLOAD_BYTES: usize = PACKET_BYTES - HEADER_BYTES;
/// Maximum value representable in the 5-bit valid-count header field.
pub const MAX_COUNT: usize = 31;
/// Maximum number of ranks addressable on the wire (8-bit rank field).
pub const MAX_RANKS: usize = 256;
/// Maximum number of ports addressable on the wire (8-bit port field).
pub const MAX_PORTS: usize = 256;
