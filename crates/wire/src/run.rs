//! Refcounted payload runs: the zero-copy unit of the payload plane.
//!
//! The paper sizes [`NetworkPacket`]s to the network I/O width precisely so
//! payload data streams through the fabric without staging (§4.1). A software
//! reproduction that memcpys 32-byte packets at every hop loses that
//! property, so bulk senders wrap a whole slice of elements into one
//! refcounted buffer — a [`PayloadRun`] — and the fabric forwards
//! [`PacketRun`] *views* of it (`Arc` clones) instead of packet-by-packet
//! copies. Only the boundaries that semantically require a copy touch the
//! bytes again: draining elements into the consumer's slice, serializing
//! onto a socket, or materializing individual packets for packet-oriented
//! consumers.
//!
//! A [`Frame`] is what transport bursts actually carry: either a single
//! inline packet (control traffic, legacy copying path) or a run view.

use std::sync::Arc;

use crate::{Datatype, Header, NetworkPacket, PacketOp, SmiType, MAX_COUNT};

/// An immutable, refcounted byte buffer holding the little-endian payload of
/// a contiguous element run, with an offset/length view. Cloning (and
/// sub-slicing via [`PayloadRun::slice`]) is O(1) and copies no payload
/// bytes; the single copy happens when the run is created from caller data.
#[derive(Debug, Clone)]
pub struct PayloadRun {
    buf: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl PayloadRun {
    /// Wrap a byte slice into a fresh refcounted buffer (one copy — the
    /// last one the in-memory plane needs).
    pub fn from_bytes(bytes: &[u8]) -> PayloadRun {
        PayloadRun {
            buf: Arc::from(bytes),
            off: 0,
            len: bytes.len(),
        }
    }

    /// Serialize a slice of elements into a fresh refcounted buffer
    /// (little-endian, tightly packed — no per-packet padding).
    pub fn from_elems<T: SmiType>(values: &[T]) -> PayloadRun {
        let sz = T::DATATYPE.size_bytes();
        let mut buf = vec![0u8; values.len() * sz];
        for (i, v) in values.iter().enumerate() {
            v.write_le(&mut buf[i * sz..(i + 1) * sz]);
        }
        PayloadRun {
            buf: buf.into(),
            off: 0,
            len: values.len() * sz,
        }
    }

    /// Number of payload bytes in this view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view holds no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The viewed bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }

    /// View `len` bytes starting at `off` of an existing shared buffer —
    /// no copy at all. This is the receive-side zero-copy constructor: a
    /// socket pump that read a frame into a pooled `Arc<[u8]>` block hands
    /// the payload span straight to the deframer as a run view, pinning the
    /// block alive until every consumer drained it.
    pub fn from_shared(buf: Arc<[u8]>, off: usize, len: usize) -> PayloadRun {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= buf.len()),
            "shared view out of bounds"
        );
        PayloadRun { buf, off, len }
    }

    /// A sub-view of `len` bytes starting at `off` (relative to this view).
    /// Shares the underlying buffer — no copy.
    pub fn slice(&self, off: usize, len: usize) -> PayloadRun {
        assert!(off + len <= self.len, "sub-view out of bounds");
        PayloadRun {
            buf: self.buf.clone(),
            off: self.off + off,
            len,
        }
    }
}

/// A run of data packets sharing one header template and one refcounted
/// payload buffer: the zero-copy equivalent of `packet_count()` consecutive
/// [`NetworkPacket`]s from the same sender to the same destination.
///
/// The header's `count` field is ignored; per-packet valid counts are
/// derived from the payload length when a packet is materialized with
/// [`PacketRun::packet`]. Payload bytes are tightly packed (element `i`
/// lives at byte `i × size`), which is equivalent to the packet layout
/// because packets never split elements.
#[derive(Debug, Clone)]
pub struct PacketRun {
    /// Header template stamped onto every materialized packet.
    pub header: Header,
    /// Element type of the payload.
    pub dtype: Datatype,
    /// The shared payload bytes.
    pub payload: PayloadRun,
}

impl PacketRun {
    /// Build a run carrying `values` with the given routing header fields.
    pub fn from_elems<T: SmiType>(
        src: u8,
        dst: u8,
        port: u8,
        op: PacketOp,
        values: &[T],
    ) -> PacketRun {
        debug_assert!(op.carries_data(), "control ops never form runs");
        PacketRun {
            header: Header {
                src,
                dst,
                port,
                op,
                count: 0,
            },
            dtype: T::DATATYPE,
            payload: PayloadRun::from_elems(values),
        }
    }

    /// Number of elements carried by the run.
    #[inline]
    pub fn elems(&self) -> usize {
        self.payload.len() / self.dtype.size_bytes()
    }

    /// Number of [`NetworkPacket`]s this run stands for.
    #[inline]
    pub fn packet_count(&self) -> usize {
        self.dtype.packets_for(self.elems())
    }

    /// Materialize packet `i` of the run (copies up to one payload's worth
    /// of bytes — the packet-oriented fallback path).
    pub fn packet(&self, i: usize) -> NetworkPacket {
        let epp = self.dtype.elems_per_packet();
        let sz = self.dtype.size_bytes();
        let total = self.elems();
        let first = i * epp;
        assert!(first < total, "run packet index out of bounds");
        let n = epp.min(total - first);
        debug_assert!(n <= MAX_COUNT);
        let mut pkt = NetworkPacket::new(
            self.header.src,
            self.header.dst,
            self.header.port,
            self.header.op,
        );
        pkt.header.count = n as u8;
        let bytes = &self.payload.as_slice()[first * sz..(first + n) * sz];
        pkt.payload[..bytes.len()].copy_from_slice(bytes);
        pkt
    }

    /// The same run re-addressed to `dst` (an `Arc` clone — no payload
    /// copy). This is what tree fan-out uses to stamp per-child routes.
    pub fn with_dst(&self, dst: u8) -> PacketRun {
        let mut run = self.clone();
        run.header.dst = dst;
        run
    }
}

/// The unit carried by transport bursts: one inline packet or one run view.
///
/// Control packets (`Sync`/`Credit`) and the copying baseline path travel as
/// [`Frame::Pkt`]; zero-copy bulk data travels as [`Frame::Run`]. Routing
/// only ever inspects the header, which both variants expose uniformly via
/// [`Frame::header`].
#[derive(Debug, Clone)]
pub enum Frame {
    /// A single inline packet (52 bytes moved per hop).
    Pkt(NetworkPacket),
    /// A refcounted run view (pointer-sized moves per hop, any length).
    Run(PacketRun),
}

impl Frame {
    /// The routing header (template header for runs).
    #[inline]
    pub fn header(&self) -> &Header {
        match self {
            Frame::Pkt(p) => &p.header,
            Frame::Run(r) => &r.header,
        }
    }

    /// Number of wire packets this frame stands for.
    #[inline]
    pub fn packet_count(&self) -> usize {
        match self {
            Frame::Pkt(_) => 1,
            Frame::Run(r) => r.packet_count(),
        }
    }

    /// Number of data elements carried (0 for control packets).
    #[inline]
    pub fn elems(&self) -> usize {
        match self {
            Frame::Pkt(p) => {
                if p.header.op.carries_data() {
                    p.header.count as usize
                } else {
                    0
                }
            }
            Frame::Run(r) => r.elems(),
        }
    }
}

impl From<NetworkPacket> for Frame {
    fn from(p: NetworkPacket) -> Frame {
        Frame::Pkt(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Deframer, Framer};

    #[test]
    fn run_materializes_same_packets_as_framer() {
        let elems: Vec<f64> = (0..10).map(|i| i as f64 * 0.5).collect();
        let run = PacketRun::from_elems(2, 5, 1, PacketOp::Send, &elems);
        assert_eq!(run.elems(), 10);
        assert_eq!(run.packet_count(), 4); // 3 + 3 + 3 + 1

        let mut fr = Framer::new(Datatype::Double, 2, 5, 1, PacketOp::Send);
        let mut pkts = Vec::new();
        for e in &elems {
            pkts.extend(fr.push(e));
        }
        pkts.extend(fr.flush());
        let from_run: Vec<NetworkPacket> = (0..run.packet_count()).map(|i| run.packet(i)).collect();
        assert_eq!(from_run, pkts);
    }

    #[test]
    fn sub_views_share_bytes_without_copy() {
        let bytes: Vec<u8> = (0..100).collect();
        let run = PayloadRun::from_bytes(&bytes);
        let view = run.slice(10, 20);
        assert_eq!(view.as_slice(), &bytes[10..30]);
        let nested = view.slice(5, 5);
        assert_eq!(nested.as_slice(), &bytes[15..20]);
    }

    #[test]
    fn re_addressing_changes_only_dst() {
        let run = PacketRun::from_elems(0, 1, 3, PacketOp::Bcast, &[7i32, 8, 9]);
        let re = run.with_dst(6);
        assert_eq!(re.header.dst, 6);
        assert_eq!(re.header.src, 0);
        assert_eq!(re.packet(0).header.dst, 6);
        assert_eq!(re.packet(0).read_elem::<i32>(2), 9);
    }

    #[test]
    fn frame_accessors_cover_both_variants() {
        let pkt = NetworkPacket::control(1, 2, 0, PacketOp::Credit, 64);
        let f: Frame = pkt.into();
        assert_eq!(f.packet_count(), 1);
        assert_eq!(f.elems(), 0); // control carries no data
        let run = Frame::Run(PacketRun::from_elems(1, 2, 0, PacketOp::Send, &[1u8; 57]));
        assert_eq!(run.header().dst, 2);
        assert_eq!(run.packet_count(), 3); // 28 + 28 + 1
        assert_eq!(run.elems(), 57);
    }

    #[test]
    fn deframer_pops_runs_without_packets() {
        let elems: Vec<i16> = (0..40).collect();
        let run = PacketRun::from_elems(0, 1, 0, PacketOp::Send, &elems);
        let mut df = Deframer::new(Datatype::Short);
        df.refill_run(run.payload);
        let mut out = vec![0i16; 40];
        let mut filled = 0;
        while filled < out.len() {
            filled += df.pop_slice(&mut out[filled..]);
        }
        assert_eq!(out, elems);
        assert!(df.is_empty());
    }

    #[test]
    fn empty_elem_slice_builds_empty_run() {
        let run = PacketRun::from_elems::<i32>(0, 1, 0, PacketOp::Send, &[]);
        assert_eq!(run.elems(), 0);
        assert_eq!(run.packet_count(), 0);
    }
}
