//! Error type for wire-level encoding and decoding.

use std::fmt;

/// Errors produced while encoding or decoding SMI wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A rank did not fit the 8-bit wire field.
    ///
    /// The paper truncates ranks to 8 bits "to mitigate the penalty of packet
    /// switching"; larger logical ranks are a checked error at channel-open
    /// time rather than silent truncation.
    RankOutOfRange(usize),
    /// A port did not fit the 8-bit wire field.
    PortOutOfRange(usize),
    /// A valid-count did not fit the 5-bit header field, or exceeded the
    /// payload capacity for the element type.
    CountOutOfRange(usize),
    /// The 3-bit operation field held an encoding not assigned to any
    /// [`PacketOp`](crate::PacketOp).
    BadOpEncoding(u8),
    /// An element type other than the one the channel was opened with was
    /// pushed or popped (`SMI_Push`/`SMI_Pop` "must match the ones defined in
    /// the Open_Channel primitives").
    TypeMismatch {
        /// Datatype the channel was opened with.
        expected: crate::Datatype,
        /// Datatype of the element that was pushed/popped.
        got: crate::Datatype,
    },
    /// A payload slice had the wrong length for the requested operation.
    BadPayloadLength {
        /// Expected length in bytes.
        expected: usize,
        /// Provided length in bytes.
        got: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::RankOutOfRange(r) => {
                write!(f, "rank {r} does not fit the 8-bit wire rank field")
            }
            WireError::PortOutOfRange(p) => {
                write!(f, "port {p} does not fit the 8-bit wire port field")
            }
            WireError::CountOutOfRange(c) => {
                write!(
                    f,
                    "valid-count {c} does not fit the 5-bit count field / payload"
                )
            }
            WireError::BadOpEncoding(b) => write!(f, "unassigned 3-bit op encoding {b:#05b}"),
            WireError::TypeMismatch { expected, got } => {
                write!(
                    f,
                    "datatype mismatch: channel opened with {expected:?}, element is {got:?}"
                )
            }
            WireError::BadPayloadLength { expected, got } => {
                write!(
                    f,
                    "bad payload length: expected {expected} bytes, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::RankOutOfRange(999);
        assert!(e.to_string().contains("999"));
        let e = WireError::TypeMismatch {
            expected: crate::Datatype::Int,
            got: crate::Datatype::Float,
        };
        assert!(e.to_string().contains("Int"));
        assert!(e.to_string().contains("Float"));
    }
}
