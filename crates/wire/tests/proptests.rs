//! Property-based tests for the SMI wire format.

use proptest::prelude::*;
use smi_wire::{Datatype, Deframer, Framer, Header, NetworkPacket, PacketOp, ReduceOp, SmiType};

fn arb_op() -> impl Strategy<Value = PacketOp> {
    prop::sample::select(PacketOp::ALL.to_vec())
}

proptest! {
    /// Header pack/unpack is a bijection on valid headers.
    #[test]
    fn header_roundtrip(src: u8, dst: u8, port: u8, op in arb_op(), count in 0u8..=31) {
        let h = Header::new(src, dst, port, op, count).unwrap();
        prop_assert_eq!(Header::unpack(&h.pack()).unwrap(), h);
    }

    /// Unpacking arbitrary 4 bytes either fails (op=7) or re-packs to the
    /// same bytes (no information loss).
    #[test]
    fn header_unpack_total(bytes in prop::array::uniform4(any::<u8>())) {
        match Header::unpack(&bytes) {
            Ok(h) => prop_assert_eq!(h.pack(), bytes),
            Err(_) => prop_assert_eq!(bytes[3] >> 5, 7),
        }
    }

    /// Full packet pack/unpack roundtrip.
    #[test]
    fn packet_roundtrip(
        src: u8, dst: u8, port: u8, op in arb_op(), count in 0u8..=31,
        payload in prop::array::uniform28(any::<u8>()),
    ) {
        let mut p = NetworkPacket::new(src, dst, port, op);
        p.header.count = count;
        p.payload = payload;
        let bytes = p.pack();
        prop_assert_eq!(NetworkPacket::unpack(&bytes).unwrap(), p);
    }

    /// Framing then deframing any f32 message reproduces it exactly, and
    /// uses exactly ceil(n/7) packets with correct counts.
    #[test]
    fn frame_deframe_f32(elems in prop::collection::vec(any::<f32>(), 0..200)) {
        let mut fr = Framer::new(Datatype::Float, 3, 4, 1, PacketOp::Send);
        let mut pkts = Vec::new();
        for e in &elems {
            pkts.extend(fr.push(e));
        }
        pkts.extend(fr.flush());
        prop_assert_eq!(pkts.len(), Datatype::Float.packets_for(elems.len()));
        let total: usize = pkts.iter().map(|p| p.header.count as usize).sum();
        prop_assert_eq!(total, elems.len());

        let mut df = Deframer::new(Datatype::Float);
        let mut out = Vec::with_capacity(elems.len());
        for p in &pkts {
            df.refill(*p);
            while let Some(v) = df.pop::<f32>() {
                out.push(v);
            }
        }
        // Compare bit patterns so NaNs round-trip too.
        let a: Vec<u32> = elems.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    /// Same framing roundtrip for doubles (3 per packet, exercises the
    /// packet-boundary arithmetic for the odd element size).
    #[test]
    fn frame_deframe_f64(elems in prop::collection::vec(any::<f64>(), 0..100)) {
        let mut fr = Framer::new(Datatype::Double, 0, 1, 0, PacketOp::Bcast);
        let mut pkts = Vec::new();
        for e in &elems {
            pkts.extend(fr.push(e));
        }
        pkts.extend(fr.flush());
        let mut df = Deframer::new(Datatype::Double);
        let mut out = Vec::new();
        for p in &pkts {
            df.refill(*p);
            while let Some(v) = df.pop::<f64>() {
                out.push(v);
            }
        }
        let a: Vec<u64> = elems.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    /// Byte-level reduce fold agrees with the typed apply for i32.
    #[test]
    fn reduce_bytes_matches_typed_i32(
        xs in prop::collection::vec(any::<i32>(), 1..50),
        ys_seed in prop::collection::vec(any::<i32>(), 1..50),
        op in prop::sample::select(ReduceOp::ALL.to_vec()),
    ) {
        let n = xs.len().min(ys_seed.len());
        let xs = &xs[..n];
        let ys = &ys_seed[..n];
        let mut acc: Vec<u8> = xs.iter().flat_map(|v| v.to_le_bytes()).collect();
        let contrib: Vec<u8> = ys.iter().flat_map(|v| v.to_le_bytes()).collect();
        op.fold_bytes(Datatype::Int, &mut acc, &contrib);
        let got: Vec<i32> = acc.chunks_exact(4).map(i32::read_le).collect();
        let want: Vec<i32> = xs.iter().zip(ys).map(|(&a, &b)| op.apply(a, b)).collect();
        prop_assert_eq!(got, want);
    }

    /// Reduce is associative on integers (hardware tiling order must not
    /// change the result).
    #[test]
    fn reduce_i32_associative(a: i32, b: i32, c: i32, op in prop::sample::select(ReduceOp::ALL.to_vec())) {
        prop_assert_eq!(
            op.apply(op.apply(a, b), c),
            op.apply(a, op.apply(b, c))
        );
    }
}
