//! Communicators.
//!
//! "Analogously to MPI, communicators can be established at runtime, and
//! allow communication to be further organized into logical groups" (§3.1.1).
//! A [`Communicator`] is an ordered set of world ranks; collective channels
//! and peer arguments are expressed in communicator-relative ranks and
//! translated to world ranks (which is what the transport routes on).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::SmiError;

/// Rendezvous board used to implement `split` without network traffic — the
/// host-side coordination that `SMI_Init`-style host code performs in the
/// paper's workflow (communicator setup happens from the host program).
#[derive(Debug, Default)]
pub(crate) struct SplitBoard {
    state: Mutex<HashMap<u64, SplitGather>>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct SplitGather {
    /// (color, key, world_rank) of each member that has arrived.
    entries: Vec<(i64, i64, usize)>,
    expected: usize,
    /// Computed groups, keyed by color (set by the last arriver).
    result: Option<HashMap<i64, Vec<usize>>>,
    readers: usize,
}

/// Deterministic derived-communicator id: every member must compute the same
/// id locally (it keys future split rendezvous), so it is a hash of the
/// parent id, the split epoch, and the member's color — never a global
/// counter.
fn derive_comm_id(parent: u64, epoch: u64, color: i64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [parent, epoch, color as u64] {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h | 1 // 0 is reserved for the world communicator
}

/// An ordered group of ranks, MPI-communicator style.
#[derive(Debug, Clone)]
pub struct Communicator {
    /// Unique id (world = 0; every split product gets a fresh id).
    id: u64,
    /// World ranks of the members, in communicator order.
    ranks: Arc<Vec<usize>>,
    /// This process's index within `ranks`.
    my_index: usize,
    /// Split epoch counter (shared by all clones at the same member).
    epoch: Arc<AtomicU64>,
    board: Arc<SplitBoard>,
}

impl Communicator {
    pub(crate) fn world(num_ranks: usize, my_rank: usize, board: Arc<SplitBoard>) -> Communicator {
        Communicator {
            id: 0,
            ranks: Arc::new((0..num_ranks).collect()),
            my_index: my_rank,
            epoch: Arc::new(AtomicU64::new(0)),
            board,
        }
    }

    /// This member's rank within the communicator (`SMI_Comm_rank`).
    #[inline]
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Number of members (`SMI_Comm_size`).
    #[inline]
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// Translate a communicator rank to the world rank the transport routes on.
    pub fn world_rank(&self, comm_rank: usize) -> Result<usize, SmiError> {
        self.ranks.get(comm_rank).copied().ok_or(SmiError::BadRank {
            rank: comm_rank,
            size: self.size(),
        })
    }

    /// The member world ranks in communicator order.
    pub fn world_ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Find the communicator rank of a world rank.
    pub fn comm_rank_of_world(&self, world: usize) -> Option<usize> {
        self.ranks.iter().position(|&r| r == world)
    }

    /// Split the communicator into disjoint groups by `color`, ordering each
    /// group by `(key, world rank)` — the MPI_Comm_split contract. Every
    /// member must call `split` (collectively, like MPI).
    pub fn split(&self, color: i64, key: i64) -> Result<Communicator, SmiError> {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst);
        // Key the gather by (comm id, epoch): same-comm same-epoch calls meet.
        let gather_key = self.id.wrapping_mul(1_000_003).wrapping_add(epoch);
        let my_world = self.ranks[self.my_index];
        let expected = self.size();
        let mut st = self.board.state.lock();
        let gather = st.entry(gather_key).or_insert_with(|| SplitGather {
            entries: Vec::new(),
            expected,
            result: None,
            readers: 0,
        });
        gather.entries.push((color, key, my_world));
        if gather.entries.len() == gather.expected {
            // Last arriver computes the groups.
            let mut groups: HashMap<i64, Vec<(i64, usize)>> = HashMap::new();
            for &(c, k, w) in &gather.entries {
                groups.entry(c).or_default().push((k, w));
            }
            let mut result = HashMap::new();
            for (c, mut members) in groups {
                members.sort();
                result.insert(c, members.into_iter().map(|(_, w)| w).collect());
            }
            gather.result = Some(result);
            self.board.cv.notify_all();
        }
        // Wait for the result.
        while st.get(&gather_key).expect("gather exists").result.is_none() {
            self.board.cv.wait(&mut st);
        }
        let gather = st.get_mut(&gather_key).expect("gather exists");
        let group = gather.result.as_ref().expect("result set")[&color].clone();
        gather.readers += 1;
        if gather.readers == gather.expected {
            st.remove(&gather_key);
        }
        drop(st);
        let my_index = group
            .iter()
            .position(|&w| w == my_world)
            .expect("self is in own color group");
        Ok(Communicator {
            id: derive_comm_id(self.id, epoch, color),
            ranks: Arc::new(group),
            my_index,
            epoch: Arc::new(AtomicU64::new(0)),
            board: self.board.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_basics() {
        let board = Arc::new(SplitBoard::default());
        let c = Communicator::world(4, 2, board);
        assert_eq!(c.rank(), 2);
        assert_eq!(c.size(), 4);
        assert_eq!(c.world_rank(3).unwrap(), 3);
        assert!(c.world_rank(4).is_err());
        assert_eq!(c.comm_rank_of_world(1), Some(1));
    }

    #[test]
    fn split_groups_by_color_and_orders_by_key() {
        let board = Arc::new(SplitBoard::default());
        let comms: Vec<Communicator> = (0..4)
            .map(|r| Communicator::world(4, r, board.clone()))
            .collect();
        // Even/odd split; key reverses order within the odd group.
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(r, c)| {
                std::thread::spawn(move || {
                    let color = (r % 2) as i64;
                    let key = if color == 1 { -(r as i64) } else { r as i64 };
                    let sub = c.split(color, key).unwrap();
                    (r, sub.world_ranks().to_vec(), sub.rank())
                })
            })
            .collect();
        let mut results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort();
        assert_eq!(results[0].1, vec![0, 2]); // evens by key asc
        assert_eq!(results[1].1, vec![3, 1]); // odds by key desc
        assert_eq!(results[3].1, vec![3, 1]);
        assert_eq!(results[3].2, 0); // key -3 sorts first: world rank 3 is index 0
        assert_eq!(results[1].2, 1); // world rank 1 at index 1 of [3,1]
    }

    #[test]
    fn consecutive_splits_use_fresh_epochs() {
        let board = Arc::new(SplitBoard::default());
        let comms: Vec<Communicator> = (0..2)
            .map(|r| Communicator::world(2, r, board.clone()))
            .collect();
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                std::thread::spawn(move || {
                    let a = c.split(0, 0).unwrap();
                    let b = c.split(0, 0).unwrap();
                    (a.world_ranks().to_vec(), b.world_ranks().to_vec())
                })
            })
            .collect();
        for h in handles {
            let (a, b) = h.join().unwrap();
            assert_eq!(a, vec![0, 1]);
            assert_eq!(b, vec![0, 1]);
        }
    }
}
