//! Runtime configuration.

use std::time::Duration;

use crate::collectives::CollectiveScheme;

/// What a socket transport backend does when a peer connection cannot be
/// established or breaks. Used in two places: connect-time dialing during
/// bootstrap ([`crate::RuntimeParams::socket_reconnect`]) and mid-stream
/// recovery after an established data connection fails
/// ([`crate::RuntimeParams::stream_reconnect`]). Mid-stream recovery is
/// lossless: the session/replay layer of the socket transport re-handshakes
/// with the last acknowledged sequence number and replays unacked frames,
/// so a healed connection delivers every frame exactly once and in order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReconnectPolicy {
    /// Fail on the first connect error (or, mid-stream, turn the first I/O
    /// fault directly into [`crate::SmiError::PeerDisconnected`]).
    Fail,
    /// Retry up to `attempts` times with jittered exponential backoff, then
    /// fail. Attempt 0 never sleeps; attempt `k >= 1` sleeps a uniformly
    /// jittered duration in `[d/2, d]` where
    /// `d = min(backoff * multiplier^(k-1), max_backoff)`. At connect time
    /// this is also the knob that lets a child process start before its
    /// peers have bound their listeners.
    Retry {
        /// Maximum attempts (>= 1).
        attempts: u32,
        /// Base sleep before the second attempt.
        backoff: Duration,
        /// Ceiling on the exponentially grown sleep.
        max_backoff: Duration,
        /// Growth factor per attempt (values <= 1.0 degenerate to a fixed
        /// jittered sleep of `backoff`).
        multiplier: f64,
    },
}

impl ReconnectPolicy {
    /// A fixed-sleep retry policy (no exponential growth): the historical
    /// shape, still what bootstrap dialing wants.
    pub fn retry_fixed(attempts: u32, backoff: Duration) -> Self {
        ReconnectPolicy::Retry {
            attempts,
            backoff,
            max_backoff: backoff,
            multiplier: 1.0,
        }
    }

    /// Maximum number of attempts this policy allows (1 for [`Fail`]).
    ///
    /// [`Fail`]: ReconnectPolicy::Fail
    pub fn max_attempts(&self) -> u32 {
        match self {
            ReconnectPolicy::Fail => 1,
            ReconnectPolicy::Retry { attempts, .. } => (*attempts).max(1),
        }
    }

    /// Jittered sleep to take *before* attempt `attempt` (0-based).
    /// Attempt 0 never sleeps. `seed` decorrelates concurrent dialers;
    /// pass anything stable-ish (rank, peer index, a counter).
    pub fn delay_for(&self, attempt: u32, seed: u64) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let (backoff, max_backoff, multiplier) = match self {
            ReconnectPolicy::Fail => return Duration::ZERO,
            ReconnectPolicy::Retry {
                backoff,
                max_backoff,
                multiplier,
                ..
            } => (*backoff, *max_backoff, *multiplier),
        };
        let base = backoff.as_nanos() as f64;
        let cap = max_backoff.max(backoff).as_nanos() as f64;
        let grown = if multiplier > 1.0 {
            (base * multiplier.powi(attempt as i32 - 1)).min(cap)
        } else {
            base
        };
        // Uniform jitter in [grown/2, grown] so concurrent dialers spread out.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(
            seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(attempt),
        );
        let lo = grown / 2.0;
        let jittered = lo + rng.gen_range(0.0..1.0) * (grown - lo);
        Duration::from_nanos(jittered as u64)
    }
}

/// Configuration of the thread-based SMI runtime.
#[derive(Debug, Clone)]
pub struct RuntimeParams {
    /// Capacity (in packets) of the FIFOs between application endpoints and
    /// CK modules — the asynchronicity degree *k* of §3.3 in packet units.
    /// Programs must not rely on it for correctness.
    pub endpoint_fifo_depth: usize,
    /// Capacity (in packets) of the inter-CK and link FIFOs.
    pub ck_fifo_depth: usize,
    /// CKS/CKR polling persistence `R` (§4.3).
    pub poll_persistence: u32,
    /// Reduce flow-control credits `C` in elements (§4.4).
    pub reduce_credits: u64,
    /// How long a blocking pop / credit wait may stall before reporting
    /// [`crate::SmiError::Timeout`] (guards tests against mismatched
    /// programs hanging forever).
    pub blocking_timeout: Duration,
    /// Optional *overall* bound on each blocking collective call. The
    /// stall bound above resets on every bit of progress, so a peer that
    /// trickles one packet per poll can extend a blocking collective far
    /// past `blocking_timeout`; when set, this caps the total elapsed time
    /// of one blocking call regardless of progress
    /// ([`crate::SmiError::DeadlineExceeded`]). `None` keeps calls
    /// stall-bounded only.
    pub blocking_deadline: Option<Duration>,
    /// How collectives route traffic between members
    /// ([`CollectiveScheme`]): `Linear` (the paper's root-centric shape,
    /// the regression baseline) or `Tree` (binomial-tree forwarding, the
    /// scaling scheme past ~16 ranks). Per-open overrides are available
    /// via the `open_*_channel_poll_with_scheme` context methods; the
    /// scheme must be uniform across all members of one collective.
    pub collective_scheme: CollectiveScheme,
    /// Maximum packets moved per burst on the hot path: bulk channel
    /// operations (`push_slice`/`pop_slice`) and CK forwarding hand over up
    /// to this many packets under a single queue operation, amortizing
    /// synchronization cost. `1` degenerates to per-packet handover.
    pub burst_packets: usize,
    /// Worker threads of the work-stealing transport executor that drives
    /// all CK state machines (and, in task mode, the rank tasks). `0` means
    /// `std::thread::available_parallelism()`.
    pub transport_workers: usize,
    /// Work stealing on the executor: when `true` (default) an idle worker
    /// steals half of a victim's run queue, and machines that stay idle for
    /// [`RuntimeParams::cold_idle_threshold`] consecutive polls are parked
    /// in a shared cold set so hot machines are not diluted by sweeps over
    /// quiescent ones. `false` pins every machine to the worker it was
    /// seeded on — the historical static sharding, kept as a measurable
    /// baseline (`bench_scaling` runs both on its skewed workload).
    pub work_stealing: bool,
    /// Maximum machines a worker drains from a run queue (its own or a
    /// victim's) per lock acquisition. Larger batches amortize queue locks;
    /// smaller ones migrate load at a finer grain.
    pub steal_batch: usize,
    /// Consecutive idle polls after which a machine is evicted from its run
    /// queue into the shared cold set (re-offered to idle workers, and at a
    /// trickle to busy ones). Ignored when `work_stealing` is off.
    pub cold_idle_threshold: u32,
    /// Initial (and minimum) condvar park timeout of a fully idle executor
    /// worker. Parking replaces the historical 50 µs sleep loop: a
    /// quiescent pool sits on the condvar and is woken by sibling progress
    /// hints or this timeout (the backstop for progress produced outside
    /// the pool — blocking-plane rank threads, socket peers).
    pub park_timeout_min: Duration,
    /// Cap of the park timeout, which doubles per consecutive fruitless
    /// park. Bounds the poll cadence — and thus the added wake latency —
    /// of a long-quiescent cluster.
    pub park_timeout_max: Duration,
    /// Connect-time behavior of socket transport backends
    /// ([`ReconnectPolicy`]): retry-with-backoff or fail on the first
    /// refused connection. Ignored by the in-memory backend.
    pub socket_reconnect: ReconnectPolicy,
    /// Mid-stream recovery policy of socket transport backends: what a
    /// process-pair connection does when an *established* data stream
    /// suffers an I/O fault. `Retry` re-dials with jittered exponential
    /// backoff and losslessly replays unacked frames (the peer stays in a
    /// `Reconnecting` health state and channel ops keep polling); `Fail`
    /// turns the first mid-stream fault into
    /// [`crate::SmiError::PeerDisconnected`]. Ignored by the in-memory
    /// backend.
    pub stream_reconnect: ReconnectPolicy,
    /// Byte budget of the per-connection replay ring that holds encoded,
    /// not-yet-acknowledged frames for mid-stream replay. A full ring is
    /// ordinary backpressure (sends report `Full`); a single frame larger
    /// than the whole budget is a configuration error surfaced as
    /// [`crate::SmiError::ReplayOverflow`].
    pub stream_replay_budget: usize,
    /// Zero-copy payload plane: when `true` (default), bulk senders wrap
    /// whole-packet element spans into refcounted run frames that in-memory
    /// hops forward as `Arc` handles (the socket backend still serializes
    /// at the process boundary). `false` restores the packet-by-packet
    /// copying path — wire-identical to the historical baseline and the
    /// reference point for [`crate::env::RunReport::payload_copies`].
    pub zero_copy: bool,
    /// Socket-plane fast path: when `true` (default), socket connections
    /// encode frames into pooled buffers recycled on ack, drain the replay
    /// ring with one `write_vectored` syscall spanning many frames (acks
    /// piggybacked), cork small same-pair bursts under one frame header,
    /// and decode data frames as zero-copy run views into pooled receive
    /// blocks. `false` restores the per-frame allocate/stage/copy path —
    /// observationally identical results, kept as the A/B baseline for
    /// [`crate::env::RunReport::wire_stats`]. Both ends of a connection
    /// must agree (the knob rides the shared `RuntimeParams`). Ignored by
    /// the in-memory backend.
    pub socket_pooling: bool,
    /// How many child-runs ahead of the in-order gather schedule the
    /// tree-gather combiner grants credits (pipelined multi-window grants).
    /// `1` degenerates to strictly serial per-child windows; the default
    /// keeps one extra child's window in flight to hide the grant
    /// round-trip. Early packets from granted-ahead children are parked
    /// until the schedule reaches them.
    pub gather_grant_ahead: usize,
}

impl Default for RuntimeParams {
    fn default() -> Self {
        RuntimeParams {
            endpoint_fifo_depth: 16,
            ck_fifo_depth: 64,
            poll_persistence: 8,
            reduce_credits: 512,
            blocking_timeout: Duration::from_secs(10),
            blocking_deadline: None,
            collective_scheme: CollectiveScheme::Linear,
            burst_packets: 16,
            transport_workers: 0,
            work_stealing: true,
            steal_batch: 16,
            cold_idle_threshold: 64,
            park_timeout_min: Duration::from_micros(100),
            park_timeout_max: Duration::from_millis(2),
            socket_reconnect: ReconnectPolicy::retry_fixed(100, Duration::from_millis(20)),
            stream_reconnect: ReconnectPolicy::Retry {
                attempts: 10,
                backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(500),
                multiplier: 2.0,
            },
            stream_replay_budget: 4 << 20,
            zero_copy: true,
            socket_pooling: true,
            gather_grant_ahead: 2,
        }
    }
}

impl RuntimeParams {
    /// A tight-buffer configuration for stress-testing backpressure (tiny
    /// FIFOs everywhere, per-packet handover).
    pub fn tight() -> Self {
        RuntimeParams {
            endpoint_fifo_depth: 1,
            ck_fifo_depth: 2,
            poll_persistence: 1,
            reduce_credits: 4,
            blocking_timeout: Duration::from_secs(10),
            blocking_deadline: None,
            collective_scheme: CollectiveScheme::Linear,
            burst_packets: 1,
            transport_workers: 0,
            work_stealing: true,
            steal_batch: 1,
            cold_idle_threshold: 64,
            park_timeout_min: Duration::from_micros(100),
            park_timeout_max: Duration::from_millis(2),
            socket_reconnect: ReconnectPolicy::retry_fixed(100, Duration::from_millis(20)),
            stream_reconnect: ReconnectPolicy::Retry {
                attempts: 10,
                backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(500),
                multiplier: 2.0,
            },
            stream_replay_budget: 4 << 20,
            zero_copy: true,
            socket_pooling: true,
            gather_grant_ahead: 2,
        }
    }

    /// The resolved executor worker count (`transport_workers`, with `0`
    /// mapped to the machine's available parallelism).
    pub fn resolved_workers(&self) -> usize {
        if self.transport_workers > 0 {
            self.transport_workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let p = RuntimeParams::default();
        assert!(p.endpoint_fifo_depth >= 1);
        assert!(p.reduce_credits >= 1);
        assert!(p.stream_replay_budget > 0);
        let t = RuntimeParams::tight();
        assert_eq!(t.endpoint_fifo_depth, 1);
    }

    #[test]
    fn attempt_zero_never_sleeps() {
        let policies = [
            ReconnectPolicy::Fail,
            ReconnectPolicy::retry_fixed(5, Duration::from_secs(10)),
            ReconnectPolicy::Retry {
                attempts: 5,
                backoff: Duration::from_secs(10),
                max_backoff: Duration::from_secs(60),
                multiplier: 2.0,
            },
        ];
        for (i, p) in policies.iter().enumerate() {
            assert_eq!(p.delay_for(0, i as u64), Duration::ZERO, "policy {i}");
        }
    }

    #[test]
    fn backoff_grows_exponentially_with_jitter_and_cap() {
        let p = ReconnectPolicy::Retry {
            attempts: 10,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            multiplier: 2.0,
        };
        // Attempt k sleeps within [d/2, d], d = min(10ms * 2^(k-1), 80ms).
        for (attempt, cap_ms) in [(1u32, 10u64), (2, 20), (3, 40), (4, 80), (5, 80), (9, 80)] {
            let d = p.delay_for(attempt, 7);
            let cap = Duration::from_millis(cap_ms);
            assert!(d <= cap, "attempt {attempt}: {d:?} > {cap:?}");
            assert!(d >= cap / 2, "attempt {attempt}: {d:?} < {:?}", cap / 2);
        }
    }

    #[test]
    fn fixed_policy_never_grows() {
        let p = ReconnectPolicy::retry_fixed(100, Duration::from_millis(20));
        for attempt in 1..20u32 {
            let d = p.delay_for(attempt, 3);
            assert!(d <= Duration::from_millis(20));
            assert!(d >= Duration::from_millis(10));
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_spreads_across_seeds() {
        let p = ReconnectPolicy::Retry {
            attempts: 8,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
            multiplier: 2.0,
        };
        assert_eq!(p.delay_for(3, 42), p.delay_for(3, 42));
        let distinct: std::collections::HashSet<Duration> =
            (0..16u64).map(|s| p.delay_for(3, s)).collect();
        assert!(distinct.len() > 1, "jitter never varied across seeds");
    }
}
