//! Runtime configuration.

use std::time::Duration;

use crate::collectives::CollectiveScheme;

/// What a socket transport backend does when a peer connection cannot be
/// established (or breaks during the bootstrap handshake).
///
/// Mid-stream reconnection is deliberately not offered: transient channels
/// carry protocol state (credits, handshakes) that a fresh socket cannot
/// resume, so a peer that dies mid-stream always surfaces as
/// [`crate::SmiError::PeerDisconnected`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconnectPolicy {
    /// Fail the launch on the first connect error.
    Fail,
    /// Retry the connect up to `attempts` times, sleeping `backoff` between
    /// tries, then fail. This is also the knob that lets a child process
    /// start before its peers have bound their listeners.
    Retry {
        /// Maximum connect attempts (>= 1).
        attempts: u32,
        /// Sleep between attempts.
        backoff: Duration,
    },
}

/// Configuration of the thread-based SMI runtime.
#[derive(Debug, Clone)]
pub struct RuntimeParams {
    /// Capacity (in packets) of the FIFOs between application endpoints and
    /// CK modules — the asynchronicity degree *k* of §3.3 in packet units.
    /// Programs must not rely on it for correctness.
    pub endpoint_fifo_depth: usize,
    /// Capacity (in packets) of the inter-CK and link FIFOs.
    pub ck_fifo_depth: usize,
    /// CKS/CKR polling persistence `R` (§4.3).
    pub poll_persistence: u32,
    /// Reduce flow-control credits `C` in elements (§4.4).
    pub reduce_credits: u64,
    /// How long a blocking pop / credit wait may stall before reporting
    /// [`crate::SmiError::Timeout`] (guards tests against mismatched
    /// programs hanging forever).
    pub blocking_timeout: Duration,
    /// Optional *overall* bound on each blocking collective call. The
    /// stall bound above resets on every bit of progress, so a peer that
    /// trickles one packet per poll can extend a blocking collective far
    /// past `blocking_timeout`; when set, this caps the total elapsed time
    /// of one blocking call regardless of progress
    /// ([`crate::SmiError::DeadlineExceeded`]). `None` keeps calls
    /// stall-bounded only.
    pub blocking_deadline: Option<Duration>,
    /// How collectives route traffic between members
    /// ([`CollectiveScheme`]): `Linear` (the paper's root-centric shape,
    /// the regression baseline) or `Tree` (binomial-tree forwarding, the
    /// scaling scheme past ~16 ranks). Per-open overrides are available
    /// via the `open_*_channel_poll_with_scheme` context methods; the
    /// scheme must be uniform across all members of one collective.
    pub collective_scheme: CollectiveScheme,
    /// Maximum packets moved per burst on the hot path: bulk channel
    /// operations (`push_slice`/`pop_slice`) and CK forwarding hand over up
    /// to this many packets under a single queue operation, amortizing
    /// synchronization cost. `1` degenerates to per-packet handover.
    pub burst_packets: usize,
    /// Worker threads of the sharded transport executor that drives all CK
    /// state machines (and, in task mode, the rank tasks). `0` means
    /// `std::thread::available_parallelism()`.
    pub transport_workers: usize,
    /// Connect-time behavior of socket transport backends
    /// ([`ReconnectPolicy`]): retry-with-backoff or fail on the first
    /// refused connection. Ignored by the in-memory backend.
    pub socket_reconnect: ReconnectPolicy,
}

impl Default for RuntimeParams {
    fn default() -> Self {
        RuntimeParams {
            endpoint_fifo_depth: 16,
            ck_fifo_depth: 64,
            poll_persistence: 8,
            reduce_credits: 512,
            blocking_timeout: Duration::from_secs(10),
            blocking_deadline: None,
            collective_scheme: CollectiveScheme::Linear,
            burst_packets: 16,
            transport_workers: 0,
            socket_reconnect: ReconnectPolicy::Retry {
                attempts: 100,
                backoff: Duration::from_millis(20),
            },
        }
    }
}

impl RuntimeParams {
    /// A tight-buffer configuration for stress-testing backpressure (tiny
    /// FIFOs everywhere, per-packet handover).
    pub fn tight() -> Self {
        RuntimeParams {
            endpoint_fifo_depth: 1,
            ck_fifo_depth: 2,
            poll_persistence: 1,
            reduce_credits: 4,
            blocking_timeout: Duration::from_secs(10),
            blocking_deadline: None,
            collective_scheme: CollectiveScheme::Linear,
            burst_packets: 1,
            transport_workers: 0,
            socket_reconnect: ReconnectPolicy::Retry {
                attempts: 100,
                backoff: Duration::from_millis(20),
            },
        }
    }

    /// The resolved executor worker count (`transport_workers`, with `0`
    /// mapped to the machine's available parallelism).
    pub fn resolved_workers(&self) -> usize {
        if self.transport_workers > 0 {
            self.transport_workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let p = RuntimeParams::default();
        assert!(p.endpoint_fifo_depth >= 1);
        assert!(p.reduce_credits >= 1);
        let t = RuntimeParams::tight();
        assert_eq!(t.endpoint_fifo_depth, 1);
    }
}
