//! `smi-launch`: run one SMI cluster split across OS processes.
//!
//! Reads a hostfile-style JSON process plan (backend, topology, rank
//! partition), spawns one child process per plan entry, bootstraps the
//! socket mesh, runs the rooted-collective workload, and reaps children —
//! naming the failed process and exiting non-zero on any fault. See
//! [`smi::proc`] for the plan schema and protocol.

fn main() {
    std::process::exit(smi::proc::launch_cli(std::env::args().skip(1).collect()));
}
