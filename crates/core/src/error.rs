//! Error type of the SMI runtime.

use std::fmt;

use smi_wire::Datatype;

/// Errors surfaced by the SMI runtime API.
#[derive(Debug, Clone, PartialEq)]
pub enum SmiError {
    /// Wire-level failure (rank/port out of range, bad encoding).
    Wire(smi_wire::WireError),
    /// The requested port/kind has no endpoint in this rank's generated
    /// design — the op metadata did not declare it ("all ports must be known
    /// at compile time", §2.2).
    NoSuchEndpoint {
        /// Requested port.
        port: usize,
        /// What kind of endpoint was requested.
        kind: &'static str,
    },
    /// The port's endpoint is already held by an open channel; transient
    /// channels on one port must be sequential.
    EndpointBusy {
        /// The contested port.
        port: usize,
    },
    /// Element type of the channel does not match the declared datatype.
    TypeMismatch {
        /// Declared in the op metadata.
        declared: Datatype,
        /// Requested by the generic channel type.
        requested: Datatype,
    },
    /// More elements pushed/popped than the channel was opened with.
    CountExceeded {
        /// The channel's element count.
        count: u64,
    },
    /// A peer rank index is outside the communicator.
    BadRank {
        /// The offending communicator rank.
        rank: usize,
        /// Size of the communicator.
        size: usize,
    },
    /// A blocking pop/credit wait timed out — almost always a mismatched
    /// program (peer never sent) or a count mismatch.
    Timeout {
        /// What the channel was waiting for.
        waiting_for: &'static str,
    },
    /// A blocking collective call exceeded its overall deadline
    /// ([`crate::RuntimeParams::blocking_deadline`]). Unlike
    /// [`SmiError::Timeout`] this fires even while progress trickles in:
    /// it bounds total elapsed time, not the stall.
    DeadlineExceeded {
        /// What the channel was waiting for.
        waiting_for: &'static str,
    },
    /// The cooperative task watchdog observed this rank making no progress
    /// for a whole stall window while nothing else remained to wait for —
    /// a livelocked or deadlocked rank task.
    Stalled {
        /// The rank whose task made no progress.
        rank: usize,
    },
    /// The transport layer shut down while the channel still needed it.
    TransportClosed,
    /// An operating-system I/O failure in a socket transport backend
    /// (connect, bind, read or write). Carries the formatted
    /// [`std::io::Error`]; convert with the `From<std::io::Error>` impl.
    Io {
        /// `ErrorKind` plus the OS error message.
        detail: String,
    },
    /// A peer process's socket link died (EOF or a hard I/O error) while
    /// channels still depended on it. Unlike [`SmiError::Timeout`] this
    /// names which peer is gone; `rank` is the lowest world rank hosted by
    /// the dead process.
    PeerDisconnected {
        /// Lowest world rank of the disconnected peer process.
        rank: usize,
    },
    /// A packet with an unexpected op arrived on this channel's port.
    ProtocolViolation {
        /// Human-readable description.
        detail: String,
    },
    /// A single encoded frame exceeded the whole replay-ring byte budget
    /// ([`crate::RuntimeParams::stream_replay_budget`]), so mid-stream
    /// recovery could never replay it. A merely *full* ring is ordinary
    /// backpressure; this fires only when the budget is smaller than one
    /// frame — a configuration error, reported instead of growing memory
    /// without bound.
    ReplayOverflow {
        /// Bytes the frame needed.
        needed: usize,
        /// The configured replay budget in bytes.
        budget: usize,
    },
}

impl fmt::Display for SmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmiError::Wire(e) => write!(f, "wire error: {e}"),
            SmiError::NoSuchEndpoint { port, kind } => {
                write!(f, "no {kind} endpoint generated for port {port}")
            }
            SmiError::EndpointBusy { port } => {
                write!(f, "port {port} already has an open channel")
            }
            SmiError::TypeMismatch {
                declared,
                requested,
            } => {
                write!(
                    f,
                    "channel datatype mismatch: declared {declared:?}, requested {requested:?}"
                )
            }
            SmiError::CountExceeded { count } => {
                write!(f, "channel count {count} exceeded")
            }
            SmiError::BadRank { rank, size } => {
                write!(f, "rank {rank} outside communicator of size {size}")
            }
            SmiError::Timeout { waiting_for } => {
                write!(f, "timed out waiting for {waiting_for}")
            }
            SmiError::DeadlineExceeded { waiting_for } => {
                write!(
                    f,
                    "overall deadline exceeded while waiting for {waiting_for}"
                )
            }
            SmiError::Stalled { rank } => {
                write!(f, "rank {rank} made no progress for a full stall window")
            }
            SmiError::TransportClosed => write!(f, "transport layer closed"),
            SmiError::Io { detail } => write!(f, "transport I/O error: {detail}"),
            SmiError::PeerDisconnected { rank } => {
                write!(f, "peer rank {rank} disconnected (process link lost)")
            }
            SmiError::ProtocolViolation { detail } => write!(f, "protocol violation: {detail}"),
            SmiError::ReplayOverflow { needed, budget } => write!(
                f,
                "replay ring overflow: one frame needs {needed} bytes but the replay budget is {budget} bytes"
            ),
        }
    }
}

impl std::error::Error for SmiError {}

impl From<smi_wire::WireError> for SmiError {
    fn from(e: smi_wire::WireError) -> Self {
        SmiError::Wire(e)
    }
}

impl From<std::io::Error> for SmiError {
    fn from(e: std::io::Error) -> Self {
        SmiError::Io {
            detail: format!("{:?}: {e}", e.kind()),
        }
    }
}
