//! The `smi-launch` process launcher.
//!
//! `smi-launch --plan plan.json` reads a [`super::ProcessPlan`], spawns one
//! OS process per plan entry (re-executing the current binary in `--child`
//! mode), bootstraps the inter-process socket mesh, runs a rooted-collective
//! workload on every rank, and reaps the children — naming the failed
//! process and its ranks, and exiting non-zero, when anything dies.
//!
//! Bootstrap runs over a line-based TCP control connection per child:
//!
//! ```text
//! child  -> launcher   hello <proc> <data_listen_addr>
//! launcher -> children peers <addr0> <addr1> ...
//! (children dial each other's data listeners; hello frames identify them)
//! child  -> launcher   wired <proc>
//! launcher -> children go
//! (workload runs)
//! child  -> launcher   done <proc>
//! launcher -> children halt          (the fabric-wide completion barrier)
//! ```
//!
//! The `done`/`halt` exchange is the cross-process completion barrier (see
//! [`crate::env::run_group_threaded`]): no child drops its data sockets
//! until the launcher has heard `done` from every process, so a peer still
//! draining its final bursts never sees a false disconnect. Fault injection
//! comes in two flavours: `--kill <proc>:<bootstrap|stream>` makes the
//! named child exit abruptly at that phase (survivors report
//! [`SmiError::PeerDisconnected`] within the blocking deadline and the
//! launcher names the dead process), while `--fault
//! <from>-<to>:<action>=<frame>` injects deterministic wire-level faults
//! (drop, duplicate, delay, sever) on a directed process-pair link via the
//! plan's [`FaultPlan`] — severed links heal through the mid-stream
//! reconnect/replay layer unless `:norestore` forbids it.
//!
//! [`SmiError::PeerDisconnected`]: crate::SmiError::PeerDisconnected

use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::process::ExitStatusExt;
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use smi_codegen::{OpSpec, ProgramMeta};
use smi_wire::{Datatype, ReduceOp};

use super::{
    bind_data_listener, build_group_fabric, crossing_pairs, GroupWiring, PeerStream, ProcessPlan,
    StreamRole, TransportBackend,
};
use crate::collectives::CollectiveScheme;
use crate::env::{prepare_with, run_group_threaded, SmiCtx};
use crate::params::{ReconnectPolicy, RuntimeParams};
use crate::transport::faults::{DelaySpec, FaultPlan, LinkFault, SeverSpec};
use crate::transport::socket::{
    fresh_session_id, recv_hello, send_hello, Hello, ReconnectHub, Redial, SocketListener,
    SocketStream,
};
use crate::transport::TransportStats;

const USAGE: &str = "usage: smi-launch --plan <plan.json> [--scheme linear|tree] [--count N] \
                     [--deadline-ms N] [--timeout-secs N] [--kill <proc>:<bootstrap|stream>] \
                     [--fault <from>-<to>:<drop|dup>=<frame>|delay=<frame>+<by>|sever=<frame>\
                     [:norestore]]...";

/// At which bootstrap phase the `--kill` target aborts itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KillPhase {
    /// After its control hello, before the data mesh is wired.
    Bootstrap,
    /// Partway through the first collective of the workload.
    Stream,
}

struct Opts {
    child: bool,
    plan_path: String,
    proc_idx: usize,
    bootstrap: String,
    scheme: CollectiveScheme,
    count: u64,
    deadline_ms: u64,
    timeout_secs: u64,
    kill: Option<(usize, KillPhase)>,
    faults: Vec<LinkFault>,
}

/// Parse one `--fault` spec:
/// `<from>-<to>:<action>[:<action>...][:norestore]` where an action is
/// `drop=<frame>`, `dup=<frame>`, `delay=<frame>+<by>` or `sever=<frame>`
/// (frames are 1-based emission ordinals on the directed link).
fn parse_fault_spec(spec: &str) -> Result<LinkFault, String> {
    let mut parts = spec.split(':');
    let link = parts.next().unwrap_or_default();
    let (from, to) = link
        .split_once('-')
        .ok_or_else(|| format!("bad --fault link '{link}' (want <from>-<to>)"))?;
    let from = from
        .parse()
        .map_err(|_| format!("bad --fault sender '{from}'"))?;
    let to = to
        .parse()
        .map_err(|_| format!("bad --fault receiver '{to}'"))?;
    let mut lf = LinkFault::clean(from, to);
    let mut actions = 0usize;
    for part in parts {
        if part == "norestore" {
            lf.restore = false;
            continue;
        }
        let (kind, arg) = part
            .split_once('=')
            .ok_or_else(|| format!("bad --fault action '{part}' (want <kind>=<frame>)"))?;
        let frame = |s: &str| -> Result<u64, String> {
            s.parse().map_err(|_| format!("bad --fault frame '{s}'"))
        };
        match kind {
            "drop" => lf.drop.push(frame(arg)?),
            "dup" => lf.duplicate.push(frame(arg)?),
            "delay" => {
                let (f, by) = arg
                    .split_once('+')
                    .ok_or_else(|| format!("bad --fault delay '{arg}' (want <frame>+<by>)"))?;
                lf.delay.push(DelaySpec {
                    frame: frame(f)?,
                    by: frame(by)?,
                });
            }
            "sever" => lf.sever.push(SeverSpec {
                after_frame: frame(arg)?,
            }),
            other => return Err(format!("unknown fault action '{other}'")),
        }
        actions += 1;
    }
    if actions == 0 {
        return Err(format!("--fault '{spec}' names no action"));
    }
    Ok(lf)
}

impl Opts {
    fn parse(args: Vec<String>) -> Result<Opts, String> {
        let mut o = Opts {
            child: false,
            plan_path: String::new(),
            proc_idx: usize::MAX,
            bootstrap: String::new(),
            scheme: CollectiveScheme::Linear,
            count: 256,
            deadline_ms: 3000,
            timeout_secs: 60,
            kill: None,
            faults: Vec::new(),
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            let mut val = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
            match a.as_str() {
                "--child" => o.child = true,
                "--plan" => o.plan_path = val("--plan")?,
                "--proc" => {
                    o.proc_idx = val("--proc")?
                        .parse()
                        .map_err(|_| "bad --proc".to_string())?
                }
                "--bootstrap" => o.bootstrap = val("--bootstrap")?,
                "--scheme" => {
                    o.scheme = match val("--scheme")?.as_str() {
                        "linear" => CollectiveScheme::Linear,
                        "tree" => CollectiveScheme::Tree,
                        s => return Err(format!("unknown scheme '{s}'")),
                    }
                }
                "--count" => {
                    o.count = val("--count")?
                        .parse()
                        .map_err(|_| "bad --count".to_string())?
                }
                "--deadline-ms" => {
                    o.deadline_ms = val("--deadline-ms")?
                        .parse()
                        .map_err(|_| "bad --deadline-ms".to_string())?
                }
                "--timeout-secs" => {
                    o.timeout_secs = val("--timeout-secs")?
                        .parse()
                        .map_err(|_| "bad --timeout-secs".to_string())?
                }
                "--kill" => {
                    let spec = val("--kill")?;
                    let (idx, phase) = spec
                        .split_once(':')
                        .ok_or_else(|| "bad --kill (want <proc>:<phase>)".to_string())?;
                    let idx = idx.parse().map_err(|_| "bad --kill process".to_string())?;
                    let phase = match phase {
                        "bootstrap" => KillPhase::Bootstrap,
                        "stream" => KillPhase::Stream,
                        p => return Err(format!("unknown kill phase '{p}'")),
                    };
                    o.kill = Some((idx, phase));
                }
                "--fault" => o.faults.push(parse_fault_spec(&val("--fault")?)?),
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        if o.plan_path.is_empty() {
            return Err("--plan is required".into());
        }
        if o.child && (o.proc_idx == usize::MAX || o.bootstrap.is_empty()) {
            return Err("--child requires --proc and --bootstrap".into());
        }
        Ok(o)
    }

    fn scheme_name(&self) -> &'static str {
        match self.scheme {
            CollectiveScheme::Linear => "linear",
            CollectiveScheme::Tree => "tree",
        }
    }
}

/// Entry point of the `smi-launch` binary: parse `args` (without the
/// program name) and run launcher or child mode. Returns the process exit
/// code: `0` on success, `1` when a child failed (the failed process and
/// its ranks are named on stderr), `2` on usage/setup errors.
pub fn launch_cli(args: Vec<String>) -> i32 {
    let opts = match Opts::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("smi-launch: {e}\n{USAGE}");
            return 2;
        }
    };
    if opts.child {
        match child_run(&opts) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("smi-launch[child {}]: {e}", opts.proc_idx);
                4
            }
        }
    } else {
        match launcher_run(&opts) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("smi-launch: {e}");
                2
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// The op metadata of the standard workload: all four rooted collectives,
/// one port each.
fn workload_meta() -> ProgramMeta {
    ProgramMeta::new()
        .with(OpSpec::bcast(0, Datatype::Int))
        .with(OpSpec::reduce(1, Datatype::Int, ReduceOp::Add))
        .with(OpSpec::scatter(2, Datatype::Int))
        .with(OpSpec::gather(3, Datatype::Int))
}

/// The standard self-verifying workload: bcast (root 0), reduce-add
/// (root 0), scatter (root N-1), gather (root 0), `count` elements each,
/// deterministic rank-derived data. `kill_at` makes the process abort
/// after moving that many bcast elements (fault injection).
fn workload_program(
    count: u64,
    kill_at: Option<u64>,
) -> impl Fn(SmiCtx) -> Result<(), String> + Send + Sync + Clone + 'static {
    move |ctx: SmiCtx| {
        let comm = ctx.world();
        let n = ctx.num_ranks() as i32;
        let me = ctx.rank() as i32;
        let c = count;

        let mut bc = ctx
            .open_bcast_channel::<i32>(c, 0, 0, &comm)
            .map_err(|e| format!("bcast open: {e}"))?;
        for i in 0..c as i32 {
            if kill_at == Some(i as u64) {
                std::process::exit(42);
            }
            let mut v = if me == 0 { i * 3 + 1 } else { 0 };
            bc.bcast(&mut v).map_err(|e| format!("bcast: {e}"))?;
            if v != i * 3 + 1 {
                return Err(format!("bcast elem {i}: got {v}, want {}", i * 3 + 1));
            }
        }

        let mut rd = ctx
            .open_reduce_channel::<i32>(c, 1, 0, &comm)
            .map_err(|e| format!("reduce open: {e}"))?;
        for i in 0..c as i32 {
            let contrib = me * 1000 + i;
            if let Some(v) = rd.reduce(&contrib).map_err(|e| format!("reduce: {e}"))? {
                let want: i32 = (0..n).map(|r| r * 1000 + i).sum();
                if v != want {
                    return Err(format!("reduce elem {i}: got {v}, want {want}"));
                }
            }
        }

        let sroot = (n - 1) as usize;
        let mut sc = ctx
            .open_scatter_channel::<i32>(c, 2, sroot, &comm)
            .map_err(|e| format!("scatter open: {e}"))?;
        if me as usize == sroot {
            for i in 0..c * n as u64 {
                sc.push(&(i as i32 * 2 - 7))
                    .map_err(|e| format!("scatter push: {e}"))?;
            }
        }
        for i in 0..c as i32 {
            let v = sc.pop().map_err(|e| format!("scatter pop: {e}"))?;
            let want = (me * c as i32 + i) * 2 - 7;
            if v != want {
                return Err(format!("scatter elem {i}: got {v}, want {want}"));
            }
        }

        let mut gt = ctx
            .open_gather_channel::<i32>(c, 3, 0, &comm)
            .map_err(|e| format!("gather open: {e}"))?;
        for i in 0..c as i32 {
            gt.push(&(me * 100 + i))
                .map_err(|e| format!("gather push: {e}"))?;
        }
        if me == 0 {
            for r in 0..n {
                for i in 0..c as i32 {
                    let v = gt.pop().map_err(|e| format!("gather pop: {e}"))?;
                    let want = r * 100 + i;
                    if v != want {
                        return Err(format!("gather elem {r}/{i}: got {v}, want {want}"));
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Bootstrap plumbing
// ---------------------------------------------------------------------------

/// Line-based control connection to the launcher.
struct BootstrapConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl BootstrapConn {
    fn connect(addr: &str, timeout: Duration) -> io::Result<BootstrapConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        let writer = stream.try_clone()?;
        Ok(BootstrapConn {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send_line(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "launcher closed the control connection",
            ));
        }
        Ok(line.trim().to_string())
    }
}

/// Accept one data-plane connection before `deadline`.
fn accept_data(listener: &SocketListener, deadline: Instant) -> io::Result<SocketStream> {
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok(s) => {
                s.set_nonblocking(false)?;
                return Ok(s);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "timed out waiting for a peer data connection",
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
}

/// The [`Redial`] for a peer's advertised data-listener address.
fn redial_for(backend: TransportBackend, addr: &str) -> io::Result<Redial> {
    match backend {
        TransportBackend::Tcp => Ok(Redial::Tcp(addr.to_string())),
        TransportBackend::Uds => Ok(Redial::Uds(addr.to_string())),
        TransportBackend::InMem => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "inmem backend has no addresses",
        )),
    }
}

/// Dial a peer's data listener, honouring the connect-time
/// [`ReconnectPolicy`] (peers race through bootstrap, so the first dials
/// may land before the listener exists). Attempt 0 dials immediately;
/// attempt `k >= 1` sleeps the policy's jittered backoff first, `seed`
/// decorrelating concurrent dialers.
pub(crate) fn connect_with_retry(
    redial: &Redial,
    policy: &ReconnectPolicy,
    seed: u64,
) -> io::Result<SocketStream> {
    let mut last = None;
    for i in 0..policy.max_attempts() {
        let delay = policy.delay_for(i, seed);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        match redial.connect() {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("at least one attempt"))
}

// ---------------------------------------------------------------------------
// Child mode
// ---------------------------------------------------------------------------

fn child_run(o: &Opts) -> Result<i32, String> {
    let timeout = Duration::from_secs(o.timeout_secs);
    let plan_json =
        fs::read_to_string(&o.plan_path).map_err(|e| format!("read {}: {e}", o.plan_path))?;
    let plan = ProcessPlan::from_json(&plan_json).map_err(|e| e.to_string())?;
    let topo = plan.build_topology().map_err(|e| e.to_string())?;
    let backend = plan.parse_backend().map_err(|e| e.to_string())?;
    let procs = plan.rank_sets();
    let me = o.proc_idx;
    if me >= procs.len() {
        return Err(format!("--proc {me} out of range"));
    }

    let params = RuntimeParams {
        collective_scheme: o.scheme,
        blocking_timeout: Duration::from_millis(o.deadline_ms),
        ..RuntimeParams::default()
    };

    let (listener, my_redial) = bind_data_listener(backend, &format!("launch{me}"))
        .map_err(|e| format!("data listener: {e}"))?;
    let my_addr = my_redial.addr().to_string();
    let mut boot = BootstrapConn::connect(&o.bootstrap, timeout)
        .map_err(|e| format!("bootstrap connect {}: {e}", o.bootstrap))?;
    boot.send_line(&format!("hello {me} {my_addr}"))
        .map_err(|e| format!("bootstrap hello: {e}"))?;
    if o.kill == Some((me, KillPhase::Bootstrap)) {
        std::process::exit(42);
    }

    let line = boot
        .read_line()
        .map_err(|e| format!("awaiting peers: {e}"))?;
    let addrs: Vec<String> = match line.split_whitespace().collect::<Vec<_>>().as_slice() {
        ["peers", rest @ ..] => rest.iter().map(|s| s.to_string()).collect(),
        ["halt", ..] => return Err("halted by launcher during bootstrap".into()),
        other => return Err(format!("expected peers, got '{}'", other.join(" "))),
    };
    if addrs.len() != procs.len() {
        return Err(format!(
            "peers list has {} entries for {} processes",
            addrs.len(),
            procs.len()
        ));
    }

    // Data mesh: for each crossing process pair, the higher index dials the
    // lower index's listener and identifies itself — and names the session —
    // with a hello frame. The same orientation is reused by mid-stream
    // recovery: the dialer re-dials, the acceptor's listener stays open.
    let deadline = Instant::now() + timeout;
    let pairs = crossing_pairs(&topo, &procs);
    let mut streams: Vec<PeerStream> = Vec::new();
    for &(lo, hi) in &pairs {
        if hi == me {
            let redial = redial_for(backend, &addrs[lo]).map_err(|e| e.to_string())?;
            let mut s = connect_with_retry(&redial, &params.socket_reconnect, lo as u64)
                .map_err(|e| format!("dial process {lo} at {}: {e}", addrs[lo]))?;
            let session = fresh_session_id();
            send_hello(&mut s, &Hello::initial(me, session))
                .map_err(|e| format!("hello to process {lo}: {e}"))?;
            streams.push(PeerStream {
                proc: lo,
                stream: s,
                session,
                role: StreamRole::Dial { redial },
            });
        }
    }
    let accepts = pairs.iter().filter(|&&(lo, _)| lo == me).count();
    for _ in 0..accepts {
        let mut s = accept_data(&listener, deadline).map_err(|e| e.to_string())?;
        s.set_read_timeout(Some(timeout))
            .map_err(|e| e.to_string())?;
        let hello = recv_hello(&mut s).map_err(|e| format!("peer hello: {e}"))?;
        if hello.resume {
            return Err(format!(
                "process {} sent a resume hello during bootstrap",
                hello.proc
            ));
        }
        streams.push(PeerStream {
            proc: hello.proc,
            stream: s,
            session: hello.session,
            role: StreamRole::Accept,
        });
    }

    boot.send_line(&format!("wired {me}"))
        .map_err(|e| format!("bootstrap wired: {e}"))?;
    let line = boot.read_line().map_err(|e| format!("awaiting go: {e}"))?;
    if line != "go" {
        return Err(format!("expected go, got '{line}'"));
    }

    // The data listener stays open for the whole run (inside an acceptor
    // pump) so faulted peers can re-dial mid-stream.
    let wiring = GroupWiring {
        backend,
        streams,
        listener: Some(listener),
        hub: ReconnectHub::new(),
    };
    let stats = TransportStats::default();
    let fabric = build_group_fabric(
        &topo,
        &procs,
        me,
        wiring,
        &params,
        plan.faults.as_ref(),
        &stats,
    )
    .map_err(|e| format!("fabric: {e}"))?;
    let metas = vec![workload_meta(); topo.num_ranks()];
    let mut transport =
        prepare_with(&topo, &metas, &params, stats, fabric.links).map_err(|e| e.to_string())?;
    transport.machines.extend(fabric.pumps);

    let kill_at = (o.kill == Some((me, KillPhase::Stream))).then(|| (o.count / 4).max(1));
    let prog = workload_program(o.count, kill_at);
    type RankProg = Box<dyn FnOnce(SmiCtx) -> Result<(), String> + Send>;
    let programs: Vec<RankProg> = procs[me]
        .iter()
        .map(|_| {
            let f = prog.clone();
            Box::new(move |ctx: SmiCtx| f(ctx)) as RankProg
        })
        .collect();

    // The done/halt exchange is this process's leg of the fabric-wide
    // completion barrier: sockets stay pumped until everyone finished.
    let outcome = run_group_threaded(
        transport.tables,
        programs,
        topo.num_ranks(),
        transport.machines,
        &params,
        Box::new(move || {
            let _ = boot.send_line(&format!("done {me}"));
            loop {
                match boot.read_line() {
                    Ok(l) if l == "halt" => break,
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }
        }),
    );

    let mut failed = false;
    for (rank, res) in outcome.results {
        if let Err(e) = res {
            eprintln!("smi-launch[child {me}]: rank {rank} failed: {e}");
            failed = true;
        }
    }
    Ok(if failed { 3 } else { 0 })
}

// ---------------------------------------------------------------------------
// Launcher mode
// ---------------------------------------------------------------------------

/// Control-plane events parsed by the per-child reader threads.
enum Event {
    Hello(usize, String, TcpStream),
    Wired(usize),
    Done(usize),
    Closed,
}

fn reader_thread(stream: TcpStream, tx: mpsc::Sender<Event>) {
    let mut writer = Some(stream.try_clone().ok());
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                let _ = tx.send(Event::Closed);
                return;
            }
            Ok(_) => {
                let fields: Vec<&str> = line.split_whitespace().collect();
                let ev = match fields.as_slice() {
                    ["hello", idx, addr] => idx.parse().ok().and_then(|i| {
                        writer
                            .take()
                            .flatten()
                            .map(|w| Event::Hello(i, addr.to_string(), w))
                    }),
                    ["wired", idx] => idx.parse().ok().map(Event::Wired),
                    ["done", idx] => idx.parse().ok().map(Event::Done),
                    _ => None,
                };
                if let Some(ev) = ev {
                    if tx.send(ev).is_err() {
                        return;
                    }
                }
            }
        }
    }
}

/// Describe a child's exit status, naming the signal when one killed it.
fn status_desc(st: &ExitStatus) -> String {
    match st.code() {
        Some(c) => format!("exit code {c}"),
        None => match st.signal() {
            Some(sig) => format!("killed by signal {sig}"),
            None => "killed by signal".to_string(),
        },
    }
}

fn launcher_run(o: &Opts) -> Result<i32, String> {
    let plan_json =
        fs::read_to_string(&o.plan_path).map_err(|e| format!("read {}: {e}", o.plan_path))?;
    let mut plan = ProcessPlan::from_json(&plan_json).map_err(|e| e.to_string())?;
    plan.build_topology().map_err(|e| e.to_string())?;
    let backend = plan.parse_backend().map_err(|e| e.to_string())?;
    if backend == TransportBackend::InMem {
        return Err("inmem backend needs no launcher; use the in-process runners".into());
    }
    let nproc = plan.processes.len();
    for lf in &o.faults {
        if lf.from >= nproc || lf.to >= nproc || lf.from == lf.to {
            return Err(format!(
                "--fault link {}-{} outside the plan's {nproc} processes",
                lf.from, lf.to
            ));
        }
    }

    // `--fault` specs merge into the plan's fault schedule; children read
    // the merged plan, so the injected faults reach every process the same
    // way plan-embedded ones do.
    let mut merged_plan_path: Option<PathBuf> = None;
    let child_plan_path = if o.faults.is_empty() {
        o.plan_path.clone()
    } else {
        plan.faults
            .get_or_insert_with(FaultPlan::default)
            .links
            .extend(o.faults.iter().cloned());
        let path =
            std::env::temp_dir().join(format!("smi-launch-plan-{}.json", std::process::id()));
        fs::write(&path, plan.to_json()).map_err(|e| format!("write merged plan: {e}"))?;
        merged_plan_path = Some(path.clone());
        path.display().to_string()
    };

    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bootstrap listener: {e}"))?;
    let baddr = listener
        .local_addr()
        .map_err(|e| e.to_string())?
        .to_string();
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;

    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut children: Vec<Child> = Vec::with_capacity(nproc);
    for i in 0..nproc {
        let mut cmd = Command::new(&exe);
        cmd.arg("--child")
            .arg("--plan")
            .arg(&child_plan_path)
            .arg("--proc")
            .arg(i.to_string())
            .arg("--bootstrap")
            .arg(&baddr)
            .arg("--scheme")
            .arg(o.scheme_name())
            .arg("--count")
            .arg(o.count.to_string())
            .arg("--deadline-ms")
            .arg(o.deadline_ms.to_string())
            .arg("--timeout-secs")
            .arg(o.timeout_secs.to_string());
        if let Some((idx, phase)) = o.kill {
            let phase = match phase {
                KillPhase::Bootstrap => "bootstrap",
                KillPhase::Stream => "stream",
            };
            cmd.arg("--kill").arg(format!("{idx}:{phase}"));
        }
        let child = cmd.spawn().map_err(|e| format!("spawn child {i}: {e}"))?;
        children.push(child);
    }

    let (tx, rx) = mpsc::channel::<Event>();
    let deadline = Instant::now() + Duration::from_secs(o.timeout_secs);
    let mut writers: Vec<Option<TcpStream>> = (0..nproc).map(|_| None).collect();
    let mut addrs: Vec<Option<String>> = vec![None; nproc];
    let mut wired = vec![false; nproc];
    let mut done = vec![false; nproc];
    let mut accepted = 0usize;
    let mut peers_sent = false;
    let mut go_sent = false;
    let mut failure: Option<String> = None;

    let broadcast = |writers: &mut [Option<TcpStream>], msg: &str| {
        for w in writers.iter_mut().flatten() {
            let _ = writeln!(w, "{msg}");
            let _ = w.flush();
        }
    };

    while !done.iter().all(|&d| d) {
        if Instant::now() >= deadline {
            failure = Some("timed out waiting for children".into());
            break;
        }
        while accepted < nproc {
            match listener.accept() {
                Ok((s, _)) => {
                    let tx = tx.clone();
                    std::thread::spawn(move || reader_thread(s, tx));
                    accepted += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(format!("bootstrap accept: {e}")),
            }
        }
        let mut early_exit = None;
        for (i, c) in children.iter_mut().enumerate() {
            if done[i] {
                continue;
            }
            if let Ok(Some(st)) = c.try_wait() {
                early_exit = Some(format!(
                    "process {i} hosting ranks {:?} died before completion ({})",
                    plan.processes[i].ranks,
                    status_desc(&st)
                ));
                break;
            }
        }
        if let Some(msg) = early_exit {
            failure = Some(msg);
            break;
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(Event::Hello(i, addr, w)) if i < nproc => {
                addrs[i] = Some(addr);
                writers[i] = Some(w);
                if !peers_sent && addrs.iter().all(|a| a.is_some()) {
                    let list: Vec<String> =
                        addrs.iter().map(|a| a.clone().expect("all set")).collect();
                    broadcast(&mut writers, &format!("peers {}", list.join(" ")));
                    peers_sent = true;
                }
            }
            Ok(Event::Wired(i)) if i < nproc => {
                wired[i] = true;
                if !go_sent && wired.iter().all(|&w| w) {
                    broadcast(&mut writers, "go");
                    go_sent = true;
                }
            }
            Ok(Event::Done(i)) if i < nproc => done[i] = true,
            Ok(Event::Closed) => { /* matched with try_wait next loop */ }
            Ok(_) => { /* out-of-range index: ignore */ }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                failure.get_or_insert_with(|| "all control connections lost".into());
                break;
            }
        }
    }

    // Completion barrier release — or, on failure, the signal that lets
    // survivors tear down and report their own PeerDisconnected errors.
    broadcast(&mut writers, "halt");

    // Reap: give children a grace window to exit on their own (survivors
    // need up to a blocking deadline to notice a dead peer), then kill.
    let grace = Duration::from_millis(o.deadline_ms * 3 + 2000);
    let grace_deadline = Instant::now() + grace;
    let mut statuses: Vec<Option<ExitStatus>> = vec![None; nproc];
    while statuses.iter().any(|s| s.is_none()) {
        for (i, c) in children.iter_mut().enumerate() {
            if statuses[i].is_none() {
                if let Ok(Some(st)) = c.try_wait() {
                    statuses[i] = Some(st);
                }
            }
        }
        if statuses.iter().all(|s| s.is_some()) {
            break;
        }
        if Instant::now() >= grace_deadline {
            for (i, c) in children.iter_mut().enumerate() {
                if statuses[i].is_none() {
                    let _ = c.kill();
                    statuses[i] = c.wait().ok();
                    failure.get_or_insert_with(|| {
                        format!(
                            "process {i} hosting ranks {:?} hung and was killed",
                            plan.processes[i].ranks
                        )
                    });
                }
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    for (i, st) in statuses.iter().enumerate() {
        match st {
            Some(st) if st.success() => {}
            st => {
                let desc = st
                    .as_ref()
                    .map(status_desc)
                    .unwrap_or_else(|| "no exit status".into());
                failure.get_or_insert_with(|| {
                    format!(
                        "process {i} hosting ranks {:?} failed ({desc})",
                        plan.processes[i].ranks
                    )
                });
            }
        }
    }

    if let Some(path) = merged_plan_path {
        let _ = fs::remove_file(path);
    }

    if let Some(msg) = failure {
        eprintln!("smi-launch: {msg}");
        return Ok(1);
    }
    println!(
        "smi-launch: {nproc} processes × {} ranks completed over {} ({} scheme, {} elements/collective)",
        plan.processes.iter().map(|p| p.ranks.len()).sum::<usize>(),
        backend.name(),
        o.scheme_name(),
        o.count
    );
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_specs_parse() {
        let lf = parse_fault_spec("1-0:drop=3:dup=5:delay=7+2:sever=9:norestore").unwrap();
        assert_eq!((lf.from, lf.to), (1, 0));
        assert_eq!(lf.drop, vec![3]);
        assert_eq!(lf.duplicate, vec![5]);
        assert_eq!(lf.delay, vec![DelaySpec { frame: 7, by: 2 }]);
        assert_eq!(lf.sever, vec![SeverSpec { after_frame: 9 }]);
        assert!(!lf.restore);
        assert!(parse_fault_spec("0-1:sever=40").unwrap().restore);
        assert!(parse_fault_spec("nonsense").is_err());
        assert!(parse_fault_spec("1-0").is_err());
        assert!(parse_fault_spec("1-0:norestore").is_err());
        assert!(parse_fault_spec("1-0:explode=3").is_err());
        assert!(parse_fault_spec("1-0:delay=3").is_err());
    }

    #[test]
    fn status_desc_names_signals() {
        assert_eq!(status_desc(&ExitStatus::from_raw(9)), "killed by signal 9");
        assert_eq!(status_desc(&ExitStatus::from_raw(2 << 8)), "exit code 2");
    }

    #[test]
    fn connect_with_retry_attempt_zero_never_sleeps() {
        // Huge backoff, but the listener is already up: attempt 0 dials
        // immediately, so success must not wait out the backoff.
        let (listener, redial) = bind_data_listener(TransportBackend::Uds, "cwr0").unwrap();
        let policy = ReconnectPolicy::retry_fixed(3, Duration::from_secs(30));
        let t0 = Instant::now();
        let s = connect_with_retry(&redial, &policy, 1).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5));
        drop(s);
        drop(listener);
    }

    #[test]
    fn connect_with_retry_counts_attempts() {
        // Nowhere to connect: Fail makes exactly one attempt (no sleep at
        // all); Retry{3} makes three, sleeping a jittered [20, 40] ms
        // before each of attempts 1 and 2.
        let redial = Redial::Uds("/nonexistent/smi-cwr-test.sock".into());
        let t0 = Instant::now();
        assert!(connect_with_retry(&redial, &ReconnectPolicy::Fail, 1).is_err());
        assert!(t0.elapsed() < Duration::from_secs(1));
        let policy = ReconnectPolicy::retry_fixed(3, Duration::from_millis(40));
        let t0 = Instant::now();
        assert!(connect_with_retry(&redial, &policy, 1).is_err());
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(40), "{elapsed:?}");
    }

    #[test]
    fn connect_with_retry_succeeds_once_listener_appears() {
        let path = super::super::fresh_uds_path("cwr-late");
        let redial = Redial::Uds(path.display().to_string());
        let binder = {
            let path = path.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                let (listener, _) = SocketListener::bind_uds(path).unwrap();
                listener.accept().unwrap()
            })
        };
        let policy = ReconnectPolicy::retry_fixed(200, Duration::from_millis(10));
        let s = connect_with_retry(&redial, &policy, 9).unwrap();
        drop(s);
        let _ = binder.join();
    }
}
