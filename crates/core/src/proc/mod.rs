//! Multi-process fabrics: one SMI cluster split across OS processes.
//!
//! The paper's cluster is a set of FPGAs joined by serial cables; this
//! reproduction's default fabric is a set of in-memory FIFOs inside one
//! process. This module generalizes the fabric to span OS processes: the
//! topology edges that cross a process boundary are carried by byte
//! streams — Unix-domain sockets or TCP — multiplexing length-prefixed
//! [`NetworkPacket`](smi_wire::NetworkPacket) bursts, while everything
//! within a process stays on the zero-copy in-memory fast path.
//!
//! Two entry points:
//!
//! * [`run_split_mpmd`]/[`run_split_spmd`]/[`run_split_mpmd_tasks`]: run
//!   the whole "cluster of processes" inside the calling process, one
//!   thread group per planned process, with real sockets between groups.
//!   Deterministic — this is what the cross-backend equivalence tests and
//!   benchmarks use.
//! * The `smi-launch` binary (see [`launch_cli`]): spawns one real OS
//!   process per plan entry, bootstraps the socket mesh over TCP, runs a
//!   collective workload, and reaps children on failure.
//!
//! A [`ProcessPlan`] names the backend, the topology, and which world
//! ranks each process hosts. Every process builds only its own ranks
//! (endpoints + CK machines) from the *same* plan, so both sides of every
//! socket agree on the edge set by construction.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use smi_codegen::ProgramMeta;
use smi_topology::{Topology, TopologySpec};

use crate::env::{
    prepare_with, run_group_tasks, run_group_threaded, run_mpmd, run_mpmd_tasks, FabricDiag,
    GroupOutcome, LaunchError, RunReport, SmiCtx, TaskFactory,
};
use crate::params::RuntimeParams;
use crate::transport::executor::Pollable;
use crate::transport::faults::FaultPlan;
use crate::transport::socket::{
    fresh_session_id, AcceptorPump, ConnConfig, FabricHealth, PeerInfo, ReconnectHub,
    ReconnectRole, Redial, SocketConn, SocketListener, SocketStream,
};
use crate::transport::wiring::FabricLinks;
use crate::transport::TransportStats;
use crate::SmiError;

mod launch;

pub use launch::launch_cli;

/// Which carrier moves bursts between processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportBackend {
    /// Single process, in-memory FIFOs only (the split runners delegate to
    /// the plain runners; `smi-launch` rejects it).
    InMem,
    /// Unix-domain sockets: same-host multi-process, the low-latency
    /// default.
    Uds,
    /// TCP over loopback (or, with `smi-launch`-style bootstrap, any
    /// reachable address).
    Tcp,
}

impl TransportBackend {
    /// The name used in plans, benchmarks and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            TransportBackend::InMem => "inmem",
            TransportBackend::Uds => "uds",
            TransportBackend::Tcp => "tcp",
        }
    }

    /// Inverse of [`TransportBackend::name`].
    pub fn parse(s: &str) -> Option<TransportBackend> {
        match s {
            "inmem" => Some(TransportBackend::InMem),
            "uds" => Some(TransportBackend::Uds),
            "tcp" => Some(TransportBackend::Tcp),
            _ => None,
        }
    }
}

impl std::fmt::Display for TransportBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One process's share of the cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessSpec {
    /// World ranks this process hosts.
    pub ranks: Vec<usize>,
}

/// A hostfile-style description of how one cluster maps onto OS
/// processes: the transport backend, the FPGA topology (same JSON schema
/// as [`TopologySpec`]), and the rank set of each process.
///
/// ```json
/// {
///   "backend": "uds",
///   "topology": {
///     "num_ranks": 4,
///     "ports_per_rank": 4,
///     "connections": [["0:1","1:0"], ["1:1","2:0"], ["2:1","3:0"], ["3:1","0:0"]]
///   },
///   "processes": [ { "ranks": [0, 1] }, { "ranks": [2, 3] } ]
/// }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessPlan {
    /// Backend name: `"inmem"`, `"uds"` or `"tcp"`.
    pub backend: String,
    /// The cluster topology (what the paper's JSON file describes).
    pub topology: TopologySpec,
    /// The rank partition; together the processes must cover every world
    /// rank exactly once.
    pub processes: Vec<ProcessSpec>,
    /// Optional deterministic fault-injection plan
    /// ([`crate::transport::faults::FaultPlan`]): per-directed-process-pair
    /// drop/duplicate/delay/sever schedules applied to outbound frames at
    /// the wire level. Omitted (or `null`) means a clean fabric.
    #[serde(default)]
    pub faults: Option<FaultPlan>,
}

impl ProcessPlan {
    /// A contiguous block partition of `topo` over `nproc` processes.
    pub fn split(topo: &Topology, backend: TransportBackend, nproc: usize) -> ProcessPlan {
        assert!(nproc >= 1, "at least one process");
        let n = topo.num_ranks();
        assert!(nproc <= n, "more processes than ranks");
        let base = n / nproc;
        let extra = n % nproc;
        let mut next = 0usize;
        let processes = (0..nproc)
            .map(|p| {
                let len = base + usize::from(p < extra);
                let ranks = (next..next + len).collect();
                next += len;
                ProcessSpec { ranks }
            })
            .collect();
        ProcessPlan {
            backend: backend.name().to_string(),
            topology: TopologySpec::from_topology(topo),
            processes,
            faults: None,
        }
    }

    /// Parse a plan from its JSON description.
    pub fn from_json(json: &str) -> Result<ProcessPlan, LaunchError> {
        serde_json::from_str(json).map_err(|e| LaunchError::Plan(format!("JSON parse error: {e}")))
    }

    /// Serialize to the JSON description format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("process plan serializes")
    }

    /// The parsed backend.
    pub fn parse_backend(&self) -> Result<TransportBackend, LaunchError> {
        TransportBackend::parse(&self.backend).ok_or_else(|| {
            LaunchError::Plan(format!(
                "unknown backend '{}' (expected inmem, uds or tcp)",
                self.backend
            ))
        })
    }

    /// Build the topology and check the processes partition its ranks.
    pub fn build_topology(&self) -> Result<Topology, LaunchError> {
        let topo = self.topology.build().map_err(LaunchError::Topology)?;
        let n = topo.num_ranks();
        if self.processes.is_empty() {
            return Err(LaunchError::Plan("no processes in plan".into()));
        }
        let mut owner = vec![None; n];
        for (p, spec) in self.processes.iter().enumerate() {
            if spec.ranks.is_empty() {
                return Err(LaunchError::Plan(format!("process {p} hosts no ranks")));
            }
            for &r in &spec.ranks {
                if r >= n {
                    return Err(LaunchError::Plan(format!(
                        "process {p} hosts rank {r} but the topology has {n} ranks"
                    )));
                }
                if let Some(q) = owner[r] {
                    return Err(LaunchError::Plan(format!(
                        "rank {r} hosted by both process {q} and process {p}"
                    )));
                }
                owner[r] = Some(p);
            }
        }
        if let Some(r) = owner.iter().position(|o| o.is_none()) {
            return Err(LaunchError::Plan(format!("rank {r} hosted by no process")));
        }
        Ok(topo)
    }

    /// The rank sets, indexed by process.
    pub fn rank_sets(&self) -> Vec<Vec<usize>> {
        self.processes.iter().map(|p| p.ranks.clone()).collect()
    }
}

/// rank → hosting process index.
fn proc_of(procs: &[Vec<usize>], n: usize) -> Vec<usize> {
    let mut owner = vec![usize::MAX; n];
    for (p, ranks) in procs.iter().enumerate() {
        for &r in ranks {
            owner[r] = p;
        }
    }
    owner
}

/// Unordered process pairs `(lo, hi)` joined by at least one topology edge.
pub(crate) fn crossing_pairs(topo: &Topology, procs: &[Vec<usize>]) -> Vec<(usize, usize)> {
    let owner = proc_of(procs, topo.num_ranks());
    let mut pairs: Vec<(usize, usize)> = topo
        .connections()
        .iter()
        .filter_map(|c| {
            let (pa, pb) = (owner[c.a.rank], owner[c.b.rank]);
            (pa != pb).then(|| (pa.min(pb), pa.max(pb)))
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Everything one process needs to join the fabric: the link halves for
/// its boundary edges, the socket pumps to register with its executor,
/// and the diagnostics map for its watchdog.
pub(crate) struct GroupFabric {
    pub links: FabricLinks,
    pub pumps: Vec<Box<dyn Pollable>>,
    pub diag: FabricDiag,
}

/// Which side of an established process-pair stream this process is, for
/// mid-stream recovery purposes.
pub(crate) enum StreamRole {
    /// This process re-dials the peer's data listener after a fault.
    Dial {
        /// The peer listener's address.
        redial: Redial,
    },
    /// This process waits (through its [`ReconnectHub`]) for the peer to
    /// re-dial its data listener.
    Accept,
}

/// One established, session-negotiated stream to a peer process.
pub(crate) struct PeerStream {
    /// Peer process index in the plan.
    pub proc: usize,
    /// The connected stream.
    pub stream: SocketStream,
    /// Session id both sides agreed on at hello time.
    pub session: u64,
    /// Recovery role of *this* side.
    pub role: StreamRole,
}

/// Everything `build_group_fabric` needs beyond the plan itself: the
/// established peer streams, plus the group's persistent data listener and
/// reconnect hub for mid-stream recovery.
pub(crate) struct GroupWiring {
    pub backend: TransportBackend,
    pub streams: Vec<PeerStream>,
    /// The listener the peer-dialed streams came in on, kept open so faulted
    /// peers can re-dial mid-run. `None` when no peer dials this process.
    pub listener: Option<SocketListener>,
    /// Routes resumed streams from the acceptor to the owning pump.
    pub hub: Arc<ReconnectHub>,
}

/// Wire process `me`'s share of the fabric from established streams, one
/// per peer process it shares a topology edge with. Each stream carries
/// every edge between the two processes, demuxed by the sender-side
/// endpoint stamped in the frame headers.
pub(crate) fn build_group_fabric(
    topo: &Topology,
    procs: &[Vec<usize>],
    me: usize,
    wiring: GroupWiring,
    params: &RuntimeParams,
    faults: Option<&FaultPlan>,
    stats: &TransportStats,
) -> io::Result<GroupFabric> {
    let n = topo.num_ranks();
    let owner = proc_of(procs, n);
    let local: Vec<bool> = (0..n).map(|r| owner[r] == me).collect();
    let health = FabricHealth::default();
    let mut ext_tx = HashMap::new();
    let mut ext_rx = HashMap::new();
    let mut pumps: Vec<Box<dyn Pollable>> = Vec::new();
    let mut peer_addr: HashMap<usize, String> = HashMap::new();
    let backend = wiring.backend;

    for ps in wiring.streams {
        let peer = ps.proc;
        let addr = ps.stream.peer_label();
        peer_addr.insert(peer, addr.clone());
        // Directed boundary edges carried by this stream, as
        // (sender endpoint, direction) derived from the undirected cables.
        let mut recv_keys = Vec::new();
        let mut tx_keys = Vec::new();
        for c in topo.connections() {
            for (from, to) in [(c.a, c.b), (c.b, c.a)] {
                if owner[from.rank] == peer && owner[to.rank] == me {
                    recv_keys.push((from.rank, from.qsfp));
                } else if owner[from.rank] == me && owner[to.rank] == peer {
                    tx_keys.push((from.rank, from.qsfp));
                }
            }
        }
        let info = PeerInfo {
            rank: procs[peer]
                .iter()
                .copied()
                .min()
                .expect("non-empty process"),
            process: peer,
            backend: backend.name(),
            addr,
        };
        let role = match ps.role {
            StreamRole::Dial { redial } => ReconnectRole::Dialer { redial },
            StreamRole::Accept => ReconnectRole::Listener {
                hub: wiring.hub.clone(),
            },
        };
        let cfg = ConnConfig {
            peer: info,
            recv_keys: recv_keys.clone(),
            replay_budget: params.stream_replay_budget,
            policy: params.stream_reconnect,
            role,
            session: ps.session,
            local_proc: me,
            faults: faults.and_then(|fp| fp.injector_for(me, peer)),
            copies: stats.payload_copies.clone(),
            wire: stats.wire.clone(),
            pooling: params.socket_pooling,
        };
        let (conn, pump) = SocketConn::new(ps.stream, cfg, health.clone())?;
        for key in tx_keys {
            ext_tx.insert(key, conn.tx(key.0, key.1));
        }
        for key in recv_keys {
            ext_rx.insert(key, conn.rx(key));
        }
        pumps.push(Box::new(pump));
    }
    if let Some(listener) = wiring.listener {
        pumps.push(Box::new(AcceptorPump::new(listener, wiring.hub.clone())?));
    }

    let remote: HashMap<usize, (usize, String)> = (0..n)
        .filter(|&r| owner[r] != me)
        .map(|r| {
            let p = owner[r];
            let addr = peer_addr
                .get(&p)
                .cloned()
                .unwrap_or_else(|| format!("process {p} (no direct link)"));
            (r, (p, addr))
        })
        .collect();

    Ok(GroupFabric {
        links: FabricLinks {
            local,
            ext_tx,
            ext_rx,
            health: health.clone(),
        },
        pumps,
        diag: FabricDiag {
            backend: backend.name(),
            health,
            remote,
        },
    })
}

/// A filesystem path for a fresh Unix-domain data listener, unique within
/// this process.
pub(crate) fn fresh_uds_path(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("smi-{}-{tag}-{n}.sock", std::process::id()))
}

/// Bind a re-dialable data listener of the given backend, returning it with
/// the [`Redial`] peers use to (re)connect.
pub(crate) fn bind_data_listener(
    backend: TransportBackend,
    tag: &str,
) -> io::Result<(SocketListener, Redial)> {
    match backend {
        TransportBackend::Uds => {
            let (l, addr) = SocketListener::bind_uds(fresh_uds_path(tag))?;
            Ok((l, Redial::Uds(addr)))
        }
        TransportBackend::Tcp => {
            let (l, addr) = SocketListener::bind_tcp()?;
            Ok((l, Redial::Tcp(addr)))
        }
        TransportBackend::InMem => unreachable!("in-memory fabric has no streams"),
    }
}

/// The per-group inputs the split runners prepare before spawning group
/// threads.
struct GroupSetup {
    idx: usize,
    wiring: GroupWiring,
    ranks: Vec<usize>,
}

/// Validate the plan and establish the inter-group socket mesh. For every
/// crossing pair `(lo, hi)` the lower-indexed group listens and the higher
/// dials — the same orientation mid-stream recovery re-dials with — and the
/// listener stays open inside the lo group's wiring so faulted peers can
/// come back.
fn setup_groups(
    plan: &ProcessPlan,
    topo: &Topology,
    backend: TransportBackend,
) -> Result<Vec<GroupSetup>, LaunchError> {
    let procs = plan.rank_sets();
    let mut groups: Vec<GroupSetup> = procs
        .iter()
        .enumerate()
        .map(|(idx, ranks)| GroupSetup {
            idx,
            wiring: GroupWiring {
                backend,
                streams: Vec::new(),
                listener: None,
                hub: ReconnectHub::new(),
            },
            ranks: ranks.clone(),
        })
        .collect();
    let mut redials: HashMap<usize, Redial> = HashMap::new();
    for (g, h) in crossing_pairs(topo, &procs) {
        let mut plumb = || -> io::Result<()> {
            if let std::collections::hash_map::Entry::Vacant(e) = redials.entry(g) {
                let (listener, redial) = bind_data_listener(backend, &format!("grp{g}"))?;
                groups[g].wiring.listener = Some(listener);
                e.insert(redial);
            }
            let redial = redials[&g].clone();
            let dialed = redial.connect()?;
            let accepted = groups[g]
                .wiring
                .listener
                .as_ref()
                .expect("listener bound above")
                .accept()?;
            let session = fresh_session_id();
            groups[g].wiring.streams.push(PeerStream {
                proc: h,
                stream: accepted,
                session,
                role: StreamRole::Accept,
            });
            groups[h].wiring.streams.push(PeerStream {
                proc: g,
                stream: dialed,
                session,
                role: StreamRole::Dial { redial },
            });
            Ok(())
        };
        plumb()
            .map_err(|e| LaunchError::Plan(format!("socket setup for processes {g}/{h}: {e}")))?;
    }
    Ok(groups)
}

/// [`run_mpmd`] with the cluster split across in-process groups joined by
/// real sockets — one thread group per planned process, cross-group edges
/// on the plan's backend. Behaviourally identical to [`run_mpmd`] (the
/// collective and point-to-point semantics don't change with the carrier);
/// used to prove exactly that, deterministically, without spawning OS
/// processes. With `backend: "inmem"` it simply delegates to [`run_mpmd`].
///
/// Communicator splits ([`crate::Communicator::split`]) are not supported
/// across process boundaries — the split board is process-local. Use the
/// world communicator.
pub fn run_split_mpmd<T: Send + 'static>(
    plan: &ProcessPlan,
    metas: Vec<ProgramMeta>,
    programs: Vec<Box<dyn FnOnce(SmiCtx) -> T + Send>>,
    params: RuntimeParams,
) -> Result<RunReport<T>, LaunchError> {
    let topo = plan.build_topology()?;
    let backend = plan.parse_backend()?;
    assert_eq!(programs.len(), topo.num_ranks(), "one program per rank");
    if backend == TransportBackend::InMem {
        return run_mpmd(&topo, metas, programs, params);
    }
    let num_ranks = topo.num_ranks();
    let groups = setup_groups(plan, &topo, backend)?;
    let procs = plan.rank_sets();
    let nproc = procs.len();
    let stats = TransportStats::default();
    let barrier = Arc::new(std::sync::Barrier::new(nproc));
    let faults = plan.faults.clone();
    type Prog<T> = Box<dyn FnOnce(SmiCtx) -> T + Send>;
    let mut slots: Vec<Option<Prog<T>>> = programs.into_iter().map(Some).collect();

    let mut handles = Vec::with_capacity(nproc);
    for group in groups {
        let group_programs: Vec<Prog<T>> = group
            .ranks
            .iter()
            .map(|&r| slots[r].take().expect("each rank in exactly one process"))
            .collect();
        let topo = topo.clone();
        let metas = metas.clone();
        let params = params.clone();
        let stats = stats.clone();
        let procs = procs.clone();
        let barrier = barrier.clone();
        let faults = faults.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("smi-proc-{}", group.idx))
                .spawn(move || -> Result<GroupOutcome<T>, LaunchError> {
                    let prep = (|| {
                        let fabric = build_group_fabric(
                            &topo,
                            &procs,
                            group.idx,
                            group.wiring,
                            &params,
                            faults.as_ref(),
                            &stats,
                        )
                        .map_err(|e| {
                            LaunchError::Plan(format!("fabric for process {}: {e}", group.idx))
                        })?;
                        let health = fabric.diag.health.clone();
                        let mut transport =
                            prepare_with(&topo, &metas, &params, stats, fabric.links)?;
                        transport.machines.extend(fabric.pumps);
                        Ok((transport, health))
                    })();
                    let (transport, health) = match prep {
                        Ok(t) => t,
                        Err(e) => {
                            // Never leave peers hanging on the completion
                            // barrier this group would have joined.
                            barrier.wait();
                            return Err(e);
                        }
                    };
                    let mut outcome = run_group_threaded(
                        transport.tables,
                        group_programs,
                        num_ranks,
                        transport.machines,
                        &params,
                        Box::new(move || {
                            barrier.wait();
                        }),
                    );
                    outcome.reconnects_healed = health.healed();
                    Ok(outcome)
                })
                .expect("spawn group thread"),
        );
    }

    merge_outcomes(handles, num_ranks, &stats, |slot| {
        slot.expect("one result per rank")
    })
}

/// SPMD variant of [`run_split_mpmd`]: one closure, cloned per rank.
pub fn run_split_spmd<T, F>(
    plan: &ProcessPlan,
    meta: ProgramMeta,
    program: F,
    params: RuntimeParams,
) -> Result<RunReport<T>, LaunchError>
where
    T: Send + 'static,
    F: Fn(SmiCtx) -> T + Send + Sync + Clone + 'static,
{
    let n = plan.build_topology()?.num_ranks();
    let metas = vec![meta; n];
    let programs: Vec<Box<dyn FnOnce(SmiCtx) -> T + Send>> = (0..n)
        .map(|_| {
            let f = program.clone();
            Box::new(move |ctx: SmiCtx| f(ctx)) as Box<dyn FnOnce(SmiCtx) -> T + Send>
        })
        .collect();
    run_split_mpmd(plan, metas, programs, params)
}

/// Cooperative-task variant of [`run_split_mpmd`]: each group drives its
/// rank tasks, CK machines and socket pumps on its own sharded executor.
/// Each group's stall watchdog knows the backend and peer addresses, so a
/// dead peer process surfaces as [`SmiError::PeerDisconnected`] rather
/// than a bare stall.
pub fn run_split_mpmd_tasks(
    plan: &ProcessPlan,
    metas: Vec<ProgramMeta>,
    factories: Vec<TaskFactory>,
    params: RuntimeParams,
) -> Result<RunReport<Result<(), SmiError>>, LaunchError> {
    let topo = plan.build_topology()?;
    let backend = plan.parse_backend()?;
    assert_eq!(factories.len(), topo.num_ranks(), "one task per rank");
    if backend == TransportBackend::InMem {
        return run_mpmd_tasks(&topo, metas, factories, params);
    }
    let num_ranks = topo.num_ranks();
    let groups = setup_groups(plan, &topo, backend)?;
    let procs = plan.rank_sets();
    let nproc = procs.len();
    let stats = TransportStats::default();
    let barrier = Arc::new(std::sync::Barrier::new(nproc));
    let faults = plan.faults.clone();
    let mut slots: Vec<Option<TaskFactory>> = factories.into_iter().map(Some).collect();

    let mut handles = Vec::with_capacity(nproc);
    for group in groups {
        let group_factories: Vec<TaskFactory> = group
            .ranks
            .iter()
            .map(|&r| slots[r].take().expect("each rank in exactly one process"))
            .collect();
        let topo = topo.clone();
        let metas = metas.clone();
        let params = params.clone();
        let stats = stats.clone();
        let procs = procs.clone();
        let barrier = barrier.clone();
        let faults = faults.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("smi-proc-{}", group.idx))
                .spawn(
                    move || -> Result<GroupOutcome<Result<(), SmiError>>, LaunchError> {
                        let prep = (|| {
                            let fabric = build_group_fabric(
                                &topo,
                                &procs,
                                group.idx,
                                group.wiring,
                                &params,
                                faults.as_ref(),
                                &stats,
                            )
                            .map_err(|e| {
                                LaunchError::Plan(format!("fabric for process {}: {e}", group.idx))
                            })?;
                            let mut transport =
                                prepare_with(&topo, &metas, &params, stats, fabric.links)?;
                            transport.machines.extend(fabric.pumps);
                            Ok((transport, fabric.diag))
                        })();
                        let (transport, diag) = match prep {
                            Ok(v) => v,
                            Err(e) => {
                                barrier.wait();
                                return Err(e);
                            }
                        };
                        Ok(run_group_tasks(
                            transport.tables,
                            group_factories,
                            num_ranks,
                            transport.machines,
                            &params,
                            &diag,
                            Box::new(move || {
                                barrier.wait();
                            }),
                        ))
                    },
                )
                .expect("spawn group thread"),
        );
    }

    merge_outcomes(handles, num_ranks, &stats, |slot| {
        slot.unwrap_or(Err(SmiError::TransportClosed))
    })
}

/// Join the group threads and merge their world-rank-tagged outcomes into
/// one [`RunReport`]. Rank panics resumed by a group runner propagate;
/// the first one wins after every group has been joined.
fn merge_outcomes<T, F>(
    handles: Vec<std::thread::JoinHandle<Result<GroupOutcome<T>, LaunchError>>>,
    num_ranks: usize,
    stats: &TransportStats,
    finish: F,
) -> Result<RunReport<T>, LaunchError>
where
    F: Fn(Option<T>) -> T,
{
    let mut slots: Vec<Option<T>> = (0..num_ranks).map(|_| None).collect();
    let mut threads_spawned = 0usize;
    let mut reconnects_healed = 0usize;
    let mut worker_stats = Vec::new();
    let mut err: Option<LaunchError> = None;
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    for h in handles {
        match h.join() {
            Ok(Ok(outcome)) => {
                threads_spawned += outcome.threads_spawned;
                reconnects_healed += outcome.reconnects_healed;
                worker_stats.extend(outcome.worker_stats);
                for (rank, v) in outcome.results {
                    slots[rank] = Some(v);
                }
            }
            Ok(Err(e)) => {
                err.get_or_insert(e);
            }
            Err(p) => {
                panic.get_or_insert(p);
            }
        }
    }
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }
    if let Some(e) = err {
        return Err(e);
    }
    Ok(RunReport {
        results: slots.into_iter().map(finish).collect(),
        transport: stats.snapshot(),
        payload_copies: stats.payload_copies.count(),
        wire_stats: stats.wire.snapshot(),
        threads_spawned,
        reconnects_healed,
        worker_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_json_roundtrip() {
        let topo = Topology::ring(4);
        let plan = ProcessPlan::split(&topo, TransportBackend::Uds, 2);
        let json = plan.to_json();
        let back = ProcessPlan::from_json(&json).unwrap();
        assert_eq!(back.backend, "uds");
        assert_eq!(back.rank_sets(), vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(back.build_topology().unwrap(), topo);
    }

    #[test]
    fn plan_validation_rejects_bad_partitions() {
        let topo = Topology::ring(4);
        let mut plan = ProcessPlan::split(&topo, TransportBackend::Uds, 2);
        plan.processes[1].ranks = vec![2]; // rank 3 unhosted
        assert!(matches!(plan.build_topology(), Err(LaunchError::Plan(_))));
        plan.processes[1].ranks = vec![1, 2, 3]; // rank 1 hosted twice
        assert!(matches!(plan.build_topology(), Err(LaunchError::Plan(_))));
        plan.processes[1].ranks = vec![2, 3, 4]; // rank 4 out of range
        assert!(matches!(plan.build_topology(), Err(LaunchError::Plan(_))));
        plan.processes = vec![];
        assert!(matches!(plan.build_topology(), Err(LaunchError::Plan(_))));
    }

    #[test]
    fn crossing_pairs_finds_boundary_edges() {
        let topo = Topology::ring(4); // 0-1-2-3-0
        let procs = vec![vec![0, 1], vec![2, 3]];
        assert_eq!(crossing_pairs(&topo, &procs), vec![(0, 1)]);
        let procs4 = vec![vec![0], vec![1], vec![2], vec![3]];
        assert_eq!(
            crossing_pairs(&topo, &procs4),
            vec![(0, 1), (0, 3), (1, 2), (2, 3)]
        );
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in [
            TransportBackend::InMem,
            TransportBackend::Uds,
            TransportBackend::Tcp,
        ] {
            assert_eq!(TransportBackend::parse(b.name()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(TransportBackend::parse("quic"), None);
    }
}
