//! Point-to-point transient channels: `SMI_Open_send_channel` /
//! `SMI_Open_recv_channel` with `SMI_Push` / `SMI_Pop`.
//!
//! Channels are opened with an element count, datatype (the Rust element
//! type), peer rank and port, and are implicitly closed once `count`
//! elements have moved (§3.1.1). `push`/`pop` are blocking, pipelined to one
//! element per call, and preserve order — the paper's semantics for
//! `SMI_Push`/`SMI_Pop`.
//!
//! Two transmission protocols are provided (§3.3): **eager** (elements enter
//! the network as soon as buffer space allows; the sender stalls only on
//! backpressure — correct whenever the program does not rely on buffering)
//! and **credit-based** (the sender stays within a window granted by the
//! receiver, so a slow receiver cannot clog shared transport paths with
//! this channel's packets).

use std::marker::PhantomData;
use std::time::Duration;

use crossbeam::channel::RecvTimeoutError;
use smi_wire::{Deframer, Framer, NetworkPacket, PacketOp, SmiType};

use crate::endpoint::{send_packet, EndpointTableHandle, RecvRes, SendRes};
use crate::SmiError;

/// Transmission protocol of a point-to-point channel (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Push into the network immediately ("elements can be pushed into the
    /// network without first performing a handshake with the receiver").
    Eager,
    /// Credit-based flow control with the given element window; both ends of
    /// the channel must use the same protocol and window.
    Credit {
        /// Window size in elements.
        window: u64,
    },
}

/// The sending end of a transient channel (`SMI_Channel` from
/// `SMI_Open_send_channel`).
pub struct SendChannel<T: SmiType> {
    port: usize,
    count: u64,
    sent: u64,
    framer: Framer,
    res: Option<SendRes>,
    table: EndpointTableHandle,
    protocol: Protocol,
    credits: u64,
    timeout: Duration,
    _elem: PhantomData<T>,
}

impl<T: SmiType> SendChannel<T> {
    pub(crate) fn open(
        table: EndpointTableHandle,
        my_wire_rank: u8,
        dst_wire_rank: u8,
        port: usize,
        count: u64,
        protocol: Protocol,
        timeout: Duration,
    ) -> Result<Self, SmiError> {
        let res = table.borrow_mut().take_send(port)?;
        if res.dtype != T::DATATYPE {
            let declared = res.dtype;
            table.borrow_mut().put_send(port, res);
            return Err(SmiError::TypeMismatch {
                declared,
                requested: T::DATATYPE,
            });
        }
        let port_wire = smi_wire::header::port_to_wire(port)?;
        let credits = match protocol {
            Protocol::Eager => u64::MAX,
            Protocol::Credit { window } => window,
        };
        Ok(SendChannel {
            port,
            count,
            sent: 0,
            framer: Framer::new(
                T::DATATYPE,
                my_wire_rank,
                dst_wire_rank,
                port_wire,
                PacketOp::Send,
            ),
            res: Some(res),
            table,
            protocol,
            credits,
            timeout,
            _elem: PhantomData,
        })
    }

    /// `SMI_Push`: append one element to the message. Blocks on backpressure
    /// (and, in credit mode, on an exhausted window).
    pub fn push(&mut self, value: &T) -> Result<(), SmiError> {
        if self.sent == self.count {
            return Err(SmiError::CountExceeded { count: self.count });
        }
        let res = self.res.as_ref().expect("resource held while open");
        if matches!(self.protocol, Protocol::Credit { .. }) && self.credits == 0 {
            // Wait for the receiver's grant.
            match res.credit_rx.recv_timeout(self.timeout) {
                Ok(pkt) if pkt.header.op == PacketOp::Credit => {
                    self.credits += pkt.control_arg() as u64;
                }
                Ok(other) => {
                    return Err(SmiError::ProtocolViolation {
                        detail: format!("unexpected {:?} on credit path", other.header.op),
                    })
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(SmiError::Timeout {
                        waiting_for: "credit grant",
                    })
                }
                Err(RecvTimeoutError::Disconnected) => return Err(SmiError::TransportClosed),
            }
        }
        self.sent += 1;
        if self.credits != u64::MAX {
            self.credits -= 1;
        }
        let full = self.framer.push(value);
        // Flush the partial packet at the message end and, in credit mode,
        // when the window closes — otherwise a window smaller than the
        // packet capacity would strand elements in the framer while the
        // receiver (whose grants are driven by arriving data) waits forever.
        let must_flush = self.sent == self.count || self.credits == 0;
        let maybe_pkt = if must_flush {
            full.or_else(|| self.framer.flush())
        } else {
            full
        };
        if let Some(pkt) = maybe_pkt {
            send_packet(&res.to_cks, pkt, self.timeout, "send-channel backpressure")?;
        }
        Ok(())
    }

    /// Elements pushed so far.
    pub fn pushed(&self) -> u64 {
        self.sent
    }

    /// The channel's element count.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl<T: SmiType> Drop for SendChannel<T> {
    fn drop(&mut self) {
        // A dropped incomplete channel flushes its partial packet (the
        // elements were semantically "pushed") and frees the port.
        if let Some(res) = self.res.take() {
            if let Some(pkt) = self.framer.flush() {
                let _ = res.to_cks.send(pkt);
            }
            self.table.borrow_mut().put_send(self.port, res);
        }
    }
}

/// The receiving end of a transient channel (`SMI_Channel` from
/// `SMI_Open_recv_channel`).
pub struct RecvChannel<T: SmiType> {
    port: usize,
    count: u64,
    received: u64,
    deframer: Deframer,
    res: Option<RecvRes>,
    table: EndpointTableHandle,
    my_wire_rank: u8,
    src_wire_rank: u8,
    protocol: Protocol,
    ungranted: u64,
    timeout: Duration,
    _elem: PhantomData<T>,
}

impl<T: SmiType> RecvChannel<T> {
    pub(crate) fn open(
        table: EndpointTableHandle,
        my_wire_rank: u8,
        src_wire_rank: u8,
        port: usize,
        count: u64,
        protocol: Protocol,
        timeout: Duration,
    ) -> Result<Self, SmiError> {
        let res = table.borrow_mut().take_recv(port)?;
        if res.dtype != T::DATATYPE {
            let declared = res.dtype;
            table.borrow_mut().put_recv(port, res);
            return Err(SmiError::TypeMismatch {
                declared,
                requested: T::DATATYPE,
            });
        }
        Ok(RecvChannel {
            port,
            count,
            received: 0,
            deframer: Deframer::new(T::DATATYPE),
            res: Some(res),
            table,
            my_wire_rank,
            src_wire_rank,
            protocol,
            ungranted: 0,
            timeout,
            _elem: PhantomData,
        })
    }

    /// `SMI_Pop`: receive the next element, blocking until it arrives.
    pub fn pop(&mut self) -> Result<T, SmiError> {
        if self.received == self.count {
            return Err(SmiError::CountExceeded { count: self.count });
        }
        let res = self.res.as_ref().expect("resource held while open");
        while self.deframer.is_empty() {
            match res.from_ckr.recv_timeout(self.timeout) {
                Ok(pkt) if pkt.header.op == PacketOp::Send => self.deframer.refill(pkt),
                Ok(other) => {
                    return Err(SmiError::ProtocolViolation {
                        detail: format!("unexpected {:?} on p2p recv path", other.header.op),
                    })
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(SmiError::Timeout {
                        waiting_for: "message data",
                    })
                }
                Err(RecvTimeoutError::Disconnected) => return Err(SmiError::TransportClosed),
            }
        }
        let v = self.deframer.pop::<T>().expect("non-empty deframer");
        self.received += 1;
        if let Protocol::Credit { window } = self.protocol {
            self.ungranted += 1;
            // Re-grant at half-window granularity (or at message end) so the
            // sender's pipeline keeps moving.
            let batch = (window / 2).max(1);
            if self.ungranted >= batch || self.received == self.count {
                let grant = NetworkPacket::control(
                    self.my_wire_rank,
                    self.src_wire_rank,
                    self.port as u8,
                    PacketOp::Credit,
                    self.ungranted as u32,
                );
                send_packet(&res.grant_tx, grant, self.timeout, "credit grant path")?;
                self.ungranted = 0;
            }
        }
        Ok(v)
    }

    /// Elements popped so far.
    pub fn popped(&self) -> u64 {
        self.received
    }

    /// The channel's element count.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl<T: SmiType> Drop for RecvChannel<T> {
    fn drop(&mut self) {
        if let Some(res) = self.res.take() {
            self.table.borrow_mut().put_recv(self.port, res);
        }
    }
}
