//! Point-to-point transient channels: `SMI_Open_send_channel` /
//! `SMI_Open_recv_channel` with `SMI_Push` / `SMI_Pop`.
//!
//! Channels are opened with an element count, datatype (the Rust element
//! type), peer rank and port, and are implicitly closed once `count`
//! elements have moved (§3.1.1). `push`/`pop` are blocking, pipelined to one
//! element per call, and preserve order — the paper's semantics for
//! `SMI_Push`/`SMI_Pop`.
//!
//! Two transmission protocols are provided (§3.3): **eager** (elements enter
//! the network as soon as buffer space allows; the sender stalls only on
//! backpressure — correct whenever the program does not rely on buffering)
//! and **credit-based** (the sender stays within a window granted by the
//! receiver, so a slow receiver cannot clog shared transport paths with
//! this channel's packets).
//!
//! Beyond the paper's per-element API, both ends expose **bulk** operations:
//! [`SendChannel::push_slice`] / [`RecvChannel::pop_slice`] move whole
//! slices, framing directly into packets and handing packets to the
//! transport in multi-packet bursts (amortizing queue synchronization), and
//! their non-blocking variants [`SendChannel::try_push_slice`] /
//! [`RecvChannel::try_pop_slice`] make the channel usable from cooperative
//! rank tasks (see [`crate::env::run_mpmd_tasks`]). Single-element `push`
//! still forwards each completed packet immediately, preserving the paper's
//! pipelining/liveness semantics that lockstep programs rely on.

use std::marker::PhantomData;
use std::time::Duration;

use crossbeam::channel::TrySendError;
use smi_wire::{Deframer, Frame, Framer, NetworkPacket, PacketOp, PacketRun, SmiType};

use crate::endpoint::{send_burst, send_packet, EndpointTableHandle, RecvRes, SendRes};
use crate::transport::socket::FabricHealth;
use crate::transport::{Burst, CopyMeter};
use crate::SmiError;

/// Transmission protocol of a point-to-point channel (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Push into the network immediately ("elements can be pushed into the
    /// network without first performing a handshake with the receiver").
    Eager,
    /// Credit-based flow control with the given element window; both ends of
    /// the channel must use the same protocol and window.
    Credit {
        /// Window size in elements.
        window: u64,
    },
}

/// The sending end of a transient channel (`SMI_Channel` from
/// `SMI_Open_send_channel`).
pub struct SendChannel<T: SmiType> {
    port: usize,
    count: u64,
    sent: u64,
    framer: Framer,
    res: Option<SendRes>,
    table: EndpointTableHandle,
    protocol: Protocol,
    credits: u64,
    timeout: Duration,
    /// Completed packets not yet handed to the CKS (bulk paths only).
    staged: Burst,
    /// Burst size cap ([`crate::RuntimeParams::burst_packets`]).
    max_burst: usize,
    /// Whether bulk pushes wrap whole-packet spans into refcounted
    /// [`Frame::Run`]s ([`crate::RuntimeParams::zero_copy`]) instead of
    /// framing packet-by-packet.
    zero_copy: bool,
    copies: CopyMeter,
    health: FabricHealth,
    _elem: PhantomData<T>,
}

impl<T: SmiType> SendChannel<T> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn open(
        table: EndpointTableHandle,
        my_wire_rank: u8,
        dst_wire_rank: u8,
        port: usize,
        count: u64,
        protocol: Protocol,
        timeout: Duration,
        max_burst: usize,
        zero_copy: bool,
    ) -> Result<Self, SmiError> {
        let res = table.lock().take_send(port)?;
        if res.dtype != T::DATATYPE {
            let declared = res.dtype;
            table.lock().put_send(port, res);
            return Err(SmiError::TypeMismatch {
                declared,
                requested: T::DATATYPE,
            });
        }
        let port_wire = smi_wire::header::port_to_wire(port)?;
        let credits = match protocol {
            Protocol::Eager => u64::MAX,
            Protocol::Credit { window } => window,
        };
        let (health, copies) = {
            let t = table.lock();
            (t.health.clone(), t.copies.clone())
        };
        Ok(SendChannel {
            port,
            count,
            sent: 0,
            framer: Framer::new(
                T::DATATYPE,
                my_wire_rank,
                dst_wire_rank,
                port_wire,
                PacketOp::Send,
            ),
            res: Some(res),
            table,
            protocol,
            credits,
            timeout,
            staged: Vec::new(),
            max_burst: max_burst.max(1),
            zero_copy,
            copies,
            health,
            _elem: PhantomData,
        })
    }

    /// Wire packets the staged burst stands for (runs count whole).
    fn staged_packets(&self) -> usize {
        self.staged.iter().map(|f| f.packet_count()).sum()
    }

    /// Blocking wait for a credit grant (credit protocol, empty window).
    fn wait_credit(&mut self) -> Result<(), SmiError> {
        let got = {
            let res = self.res.as_mut().expect("resource held while open");
            res.credit_rx
                .recv_packet(self.timeout, "credit grant", &self.health)
        };
        let pkt = got.map_err(|e| self.health.escalate(e))?;
        if pkt.header.op != PacketOp::Credit {
            return Err(SmiError::ProtocolViolation {
                detail: format!("unexpected {:?} on credit path", pkt.header.op),
            });
        }
        self.credits += pkt.control_arg() as u64;
        Ok(())
    }

    /// Absorb any grants already delivered, without blocking.
    fn absorb_credits(&mut self) -> Result<(), SmiError> {
        let res = self.res.as_mut().expect("resource held while open");
        while let Some(pkt) = res.credit_rx.try_recv_packet()? {
            if pkt.header.op != PacketOp::Credit {
                return Err(SmiError::ProtocolViolation {
                    detail: format!("unexpected {:?} on credit path", pkt.header.op),
                });
            }
            self.credits += pkt.control_arg() as u64;
        }
        Ok(())
    }

    /// Hand the staged burst to the CKS, blocking on backpressure.
    fn flush_staged(&mut self) -> Result<(), SmiError> {
        if self.staged.is_empty() {
            return Ok(());
        }
        let burst = std::mem::take(&mut self.staged);
        let res = self.res.as_ref().expect("resource held while open");
        send_burst(
            &res.to_cks,
            burst,
            self.timeout,
            "send-channel backpressure",
            &self.health,
        )
        .map_err(|e| self.health.escalate(e))
    }

    /// Hand the staged burst to the CKS without blocking. Returns `false`
    /// (burst retained) when the FIFO is full.
    fn try_flush_staged(&mut self) -> Result<bool, SmiError> {
        if self.staged.is_empty() {
            return Ok(true);
        }
        let burst = std::mem::take(&mut self.staged);
        let res = self.res.as_ref().expect("resource held while open");
        match res.to_cks.try_send(burst) {
            Ok(()) => Ok(true),
            Err(TrySendError::Full(b)) => {
                self.staged = b;
                Ok(false)
            }
            Err(TrySendError::Disconnected(_)) => Err(SmiError::TransportClosed),
        }
    }

    /// `SMI_Push`: append one element to the message. Blocks on backpressure
    /// (and, in credit mode, on an exhausted window).
    pub fn push(&mut self, value: &T) -> Result<(), SmiError> {
        if self.sent == self.count {
            return Err(SmiError::CountExceeded { count: self.count });
        }
        if matches!(self.protocol, Protocol::Credit { .. }) && self.credits == 0 {
            self.wait_credit()?;
        }
        self.sent += 1;
        if self.credits != u64::MAX {
            self.credits -= 1;
        }
        // Framing stages the element's bytes into a packet payload.
        self.copies.add_bytes(T::DATATYPE.size_bytes());
        let full = self.framer.push(value);
        // Flush the partial packet at the message end and, in credit mode,
        // when the window closes — otherwise a window smaller than the
        // packet capacity would strand elements in the framer while the
        // receiver (whose grants are driven by arriving data) waits forever.
        let must_flush = self.sent == self.count || self.credits == 0;
        let maybe_pkt = if must_flush {
            full.or_else(|| self.framer.flush())
        } else {
            full
        };
        if let Some(pkt) = maybe_pkt {
            // Per-element pushes forward each completed packet immediately:
            // lockstep programs rely on packet-granularity progress.
            self.staged.push(pkt.into());
            self.flush_staged()?;
        }
        Ok(())
    }

    /// Bulk `SMI_Push`: append a whole slice, framing directly into packets
    /// and handing them to the transport in bursts of up to
    /// `burst_packets`. Blocks on backpressure and credit waits; when it
    /// returns, every element has been accepted by the transport layer.
    ///
    /// A slice larger than the channel's remaining count fails atomically
    /// up front: nothing is consumed.
    pub fn push_slice(&mut self, values: &[T]) -> Result<(), SmiError> {
        if values.len() as u64 > self.count - self.sent {
            return Err(SmiError::CountExceeded { count: self.count });
        }
        let mut i = 0usize;
        while i < values.len() {
            if matches!(self.protocol, Protocol::Credit { .. }) && self.credits == 0 {
                self.wait_credit()?;
            }
            i += self.frame_chunk(&values[i..]);
            if self.staged_packets() >= self.max_burst || self.must_flush_now() {
                self.flush_staged()?;
            }
        }
        self.flush_staged()
    }

    /// Non-blocking bulk push: appends as many elements as transport
    /// capacity (and, in credit mode, the granted window) currently allows
    /// and returns how many were consumed. `Ok(0)` means "try again later" —
    /// the channel never blocks. Elements already framed into a staged burst
    /// count as consumed; call [`SendChannel::try_flush`] (or just keep
    /// calling this) until [`SendChannel::fully_sent`] reports completion.
    pub fn try_push_slice(&mut self, values: &[T]) -> Result<usize, SmiError> {
        if values.len() as u64 > self.count - self.sent {
            return Err(SmiError::CountExceeded { count: self.count });
        }
        if !self.try_flush_staged()? {
            return Ok(0);
        }
        let mut consumed = 0usize;
        while consumed < values.len() {
            if matches!(self.protocol, Protocol::Credit { .. }) && self.credits == 0 {
                self.absorb_credits()?;
                if self.credits == 0 {
                    break;
                }
            }
            consumed += self.frame_chunk(&values[consumed..]);
            if (self.staged_packets() >= self.max_burst || self.must_flush_now())
                && !self.try_flush_staged()?
            {
                break;
            }
        }
        if consumed == 0 && !values.is_empty() {
            // Making no headway at all while a peer process is dead: fail
            // fast instead of letting the caller poll forever.
            if let Some(e) = self.health.error() {
                return Err(e);
            }
        }
        Ok(consumed)
    }

    /// Frame a chunk of `values` (bounded by the credit window), staging
    /// completed frames. Returns elements consumed.
    ///
    /// With `zero_copy` on and no partial packet pending, a whole span of
    /// elements (up to `max_burst` packets' worth) is wrapped into one
    /// refcounted [`Frame::Run`] — the single copy the in-memory plane pays
    /// for this data. Otherwise elements go through the packet framer, one
    /// packet per call.
    fn frame_chunk(&mut self, values: &[T]) -> usize {
        let mut avail = values.len();
        if self.credits != u64::MAX {
            avail = avail.min(self.credits as usize);
        }
        avail = avail.min((self.count - self.sent) as usize);
        let epp = T::DATATYPE.elems_per_packet();
        let taken = if self.zero_copy && self.framer.pending() == 0 && avail >= epp {
            let mut take = avail.min(self.max_burst.max(1) * epp);
            // Keep runs whole-packet aligned except at the message end, so
            // the materialized packet stream never carries a partial packet
            // mid-message.
            if (self.sent + take as u64) < self.count {
                take -= take % epp;
            }
            let h = self.framer.header_template();
            self.copies.add_bytes(take * T::DATATYPE.size_bytes());
            self.staged.push(Frame::Run(PacketRun::from_elems(
                h.src,
                h.dst,
                h.port,
                h.op,
                &values[..take],
            )));
            take
        } else {
            let (taken, maybe_pkt) = self.framer.push_slice(&values[..avail]);
            self.copies.add_bytes(taken * T::DATATYPE.size_bytes());
            if let Some(pkt) = maybe_pkt {
                self.staged.push(pkt.into());
            }
            taken
        };
        self.sent += taken as u64;
        if self.credits != u64::MAX {
            self.credits -= taken as u64;
        }
        if self.must_flush_now() {
            if let Some(pkt) = self.framer.flush() {
                self.staged.push(pkt.into());
            }
        }
        taken
    }

    /// Whether a partial packet must leave the framer now (message end or
    /// closed credit window).
    fn must_flush_now(&self) -> bool {
        self.sent == self.count || self.credits == 0
    }

    /// Non-blocking drain of any staged packets; `Ok(true)` when nothing is
    /// left staged.
    pub fn try_flush(&mut self) -> Result<bool, SmiError> {
        self.try_flush_staged()
    }

    /// True once all `count` elements have been accepted by the transport
    /// (nothing staged, nothing pending in the framer).
    pub fn fully_sent(&self) -> bool {
        self.sent == self.count && self.staged.is_empty() && self.framer.pending() == 0
    }

    /// Elements pushed so far.
    pub fn pushed(&self) -> u64 {
        self.sent
    }

    /// The channel's element count.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl<T: SmiType> Drop for SendChannel<T> {
    fn drop(&mut self) {
        // A dropped incomplete channel flushes its partial packet (the
        // elements were semantically "pushed") and frees the port. The
        // handover is best-effort (try_send): Drop may run on an executor
        // worker, and blocking there would wedge the very thread that
        // drains the FIFO.
        if let Some(res) = self.res.take() {
            if let Some(pkt) = self.framer.flush() {
                self.staged.push(pkt.into());
            }
            if !self.staged.is_empty() {
                let _ = res.to_cks.try_send(std::mem::take(&mut self.staged));
            }
            self.table.lock().put_send(self.port, res);
        }
    }
}

/// The receiving end of a transient channel (`SMI_Channel` from
/// `SMI_Open_recv_channel`).
pub struct RecvChannel<T: SmiType> {
    port: usize,
    count: u64,
    received: u64,
    deframer: Deframer,
    res: Option<RecvRes>,
    table: EndpointTableHandle,
    my_wire_rank: u8,
    src_wire_rank: u8,
    protocol: Protocol,
    /// Elements consumed but not yet granted back (credit protocol). Grants
    /// are coalesced: one grant packet per half-window (or message end),
    /// checked at packet boundaries on the bulk paths.
    ungranted: u64,
    timeout: Duration,
    copies: CopyMeter,
    health: FabricHealth,
    _elem: PhantomData<T>,
}

impl<T: SmiType> RecvChannel<T> {
    pub(crate) fn open(
        table: EndpointTableHandle,
        my_wire_rank: u8,
        src_wire_rank: u8,
        port: usize,
        count: u64,
        protocol: Protocol,
        timeout: Duration,
    ) -> Result<Self, SmiError> {
        let res = table.lock().take_recv(port)?;
        if res.dtype != T::DATATYPE {
            let declared = res.dtype;
            table.lock().put_recv(port, res);
            return Err(SmiError::TypeMismatch {
                declared,
                requested: T::DATATYPE,
            });
        }
        let (health, copies) = {
            let t = table.lock();
            (t.health.clone(), t.copies.clone())
        };
        Ok(RecvChannel {
            port,
            count,
            received: 0,
            deframer: Deframer::new(T::DATATYPE),
            res: Some(res),
            table,
            my_wire_rank,
            src_wire_rank,
            protocol,
            ungranted: 0,
            timeout,
            copies,
            health,
            _elem: PhantomData,
        })
    }

    /// Stage an arrived frame into the deframer. Inline packets cost a
    /// payload copy; run frames hand their refcounted buffer over whole.
    fn refill(&mut self, frame: Frame) -> Result<(), SmiError> {
        if frame.header().op != PacketOp::Send {
            return Err(SmiError::ProtocolViolation {
                detail: format!("unexpected {:?} on p2p recv path", frame.header().op),
            });
        }
        match frame {
            Frame::Pkt(p) => {
                self.copies.add_packets(1);
                self.deframer.refill(p);
            }
            Frame::Run(r) => self.deframer.refill_run(r.payload),
        }
        Ok(())
    }

    /// Send a coalesced credit grant if enough elements accumulated (or the
    /// message completed). `blocking` selects the transport handover mode;
    /// in non-blocking mode an un-sendable grant stays accumulated and is
    /// retried on the next call.
    fn maybe_grant(&mut self, blocking: bool) -> Result<(), SmiError> {
        let window = match self.protocol {
            Protocol::Credit { window } => window,
            Protocol::Eager => return Ok(()),
        };
        let batch = (window / 2).max(1);
        if self.ungranted < batch && self.received != self.count {
            return Ok(());
        }
        if self.ungranted == 0 {
            return Ok(());
        }
        let grant = NetworkPacket::control(
            self.my_wire_rank,
            self.src_wire_rank,
            self.port as u8,
            PacketOp::Credit,
            self.ungranted as u32,
        );
        let res = self.res.as_ref().expect("resource held while open");
        if blocking {
            send_packet(
                &res.grant_tx,
                grant,
                self.timeout,
                "credit grant path",
                &self.health,
            )?;
        } else {
            match res.grant_tx.try_send(vec![grant.into()]) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => return Ok(()), // retry later
                Err(TrySendError::Disconnected(_)) => return Err(SmiError::TransportClosed),
            }
        }
        self.ungranted = 0;
        Ok(())
    }

    /// `SMI_Pop`: receive the next element, blocking until it arrives.
    pub fn pop(&mut self) -> Result<T, SmiError> {
        if self.received == self.count {
            return Err(SmiError::CountExceeded { count: self.count });
        }
        while self.deframer.is_empty() {
            let got = {
                let res = self.res.as_mut().expect("resource held while open");
                res.from_ckr
                    .recv_frame(self.timeout, "message data", &self.health)
            };
            let frame = got.map_err(|e| self.health.escalate(e))?;
            self.refill(frame)?;
        }
        let v = self.deframer.pop::<T>().expect("non-empty deframer");
        self.copies.add_bytes(T::DATATYPE.size_bytes());
        self.received += 1;
        self.ungranted += u64::from(matches!(self.protocol, Protocol::Credit { .. }));
        self.maybe_grant(true)?;
        Ok(v)
    }

    /// Bulk `SMI_Pop`: fill the whole slice, blocking until every element
    /// arrived. Credit grants are coalesced per packet rather than per
    /// element.
    ///
    /// A slice larger than the channel's remaining count fails atomically
    /// up front: nothing is consumed.
    pub fn pop_slice(&mut self, out: &mut [T]) -> Result<(), SmiError> {
        if out.len() as u64 > self.count - self.received {
            return Err(SmiError::CountExceeded { count: self.count });
        }
        let mut filled = 0usize;
        while filled < out.len() {
            if self.deframer.is_empty() {
                let got = {
                    let res = self.res.as_mut().expect("resource held while open");
                    res.from_ckr
                        .recv_frame(self.timeout, "message data", &self.health)
                };
                let frame = got.map_err(|e| self.health.escalate(e))?;
                self.refill(frame)?;
            }
            filled += self.drain_deframer(&mut out[filled..]);
            self.maybe_grant(true)?;
        }
        Ok(())
    }

    /// Non-blocking bulk pop: drains whatever has arrived into `out` and
    /// returns how many elements were written (possibly 0).
    pub fn try_pop_slice(&mut self, out: &mut [T]) -> Result<usize, SmiError> {
        if out.len() as u64 > self.count - self.received {
            return Err(SmiError::CountExceeded { count: self.count });
        }
        // Retry a grant deferred by a full FIFO even when no data is
        // buffered — with the sender's window exhausted, this grant is the
        // only thing that can make new data arrive.
        self.maybe_grant(false)?;
        let mut filled = 0usize;
        while filled < out.len() {
            if self.deframer.is_empty() {
                let got = {
                    let res = self.res.as_mut().expect("resource held while open");
                    res.from_ckr.try_recv_frame()?
                };
                match got {
                    Some(frame) => self.refill(frame)?,
                    None => break,
                }
            }
            filled += self.drain_deframer(&mut out[filled..]);
            self.maybe_grant(false)?;
        }
        if filled == 0 && !out.is_empty() {
            // Nothing buffered and nothing can arrive from a dead peer
            // process: fail fast instead of polling forever.
            if let Some(e) = self.health.error() {
                return Err(e);
            }
        }
        Ok(filled)
    }

    /// Move elements from the deframer into `out`, bounded by the channel
    /// count; updates progress and grant accounting.
    fn drain_deframer(&mut self, out: &mut [T]) -> usize {
        let cap = out.len().min((self.count - self.received) as usize);
        let n = self.deframer.pop_slice(&mut out[..cap]);
        // The final, semantically required copy: elements land in the
        // consumer's slice.
        self.copies.add_bytes(n * T::DATATYPE.size_bytes());
        self.received += n as u64;
        if matches!(self.protocol, Protocol::Credit { .. }) {
            self.ungranted += n as u64;
        }
        n
    }

    /// Elements popped so far.
    pub fn popped(&self) -> u64 {
        self.received
    }

    /// The channel's element count.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl<T: SmiType> Drop for RecvChannel<T> {
    fn drop(&mut self) {
        if let Some(res) = self.res.take() {
            // Best-effort delivery of a final coalesced grant so a sender
            // mid-window is not stranded by an early close.
            if self.ungranted > 0 {
                let grant = NetworkPacket::control(
                    self.my_wire_rank,
                    self.src_wire_rank,
                    self.port as u8,
                    PacketOp::Credit,
                    self.ungranted as u32,
                );
                let _ = res.grant_tx.try_send(vec![grant.into()]);
            }
            self.table.lock().put_recv(self.port, res);
        }
    }
}
