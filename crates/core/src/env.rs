//! The cluster environment: launching SPMD/MPMD programs over the
//! thread-based transport.
//!
//! Mirrors the paper's workflow (Fig. 8): the op metadata (what the Clang
//! pass would extract) plus the topology produce the communication design
//! and routing tables; the "host program" — here [`run_spmd`]/[`run_mpmd`] —
//! uploads them, starts the transport, runs one application per rank, and
//! tears everything down.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use smi_codegen::{ClusterDesign, CodegenError, OpKind, ProgramMeta};
use smi_topology::{RoutingPlan, Topology, TopologyError};
use smi_wire::reduce::SmiNumeric;
use smi_wire::SmiType;

use crate::channel::{Protocol, RecvChannel, SendChannel};
use crate::collectives::{BcastChannel, GatherChannel, ReduceChannel, ScatterChannel};
use crate::comm::{Communicator, SplitBoard};
use crate::endpoint::{new_table, EndpointTableHandle};
use crate::params::RuntimeParams;
use crate::transport::wiring::build_transport;
use crate::transport::TransportStats;
use crate::SmiError;

/// Per-rank execution context: the handle through which a rank's code opens
/// channels (the role played by the generated device interface + host header
/// in the paper's workflow).
pub struct SmiCtx {
    rank: usize,
    num_ranks: usize,
    table: EndpointTableHandle,
    board: Arc<SplitBoard>,
    params: RuntimeParams,
}

impl SmiCtx {
    /// This rank (world).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// The world communicator (`SMI_COMM_WORLD`).
    pub fn world(&self) -> Communicator {
        Communicator::world(self.num_ranks, self.rank, self.board.clone())
    }

    /// The runtime configuration.
    pub fn params(&self) -> &RuntimeParams {
        &self.params
    }

    /// `SMI_Open_send_channel`: a transient channel sending `count` elements
    /// of `T` to world rank `dst` on `port` (eager protocol).
    pub fn open_send_channel<T: SmiType>(
        &self,
        count: u64,
        dst: usize,
        port: usize,
    ) -> Result<SendChannel<T>, SmiError> {
        self.open_send_channel_with(count, dst, port, Protocol::Eager)
    }

    /// `open_send_channel` with an explicit transmission protocol (§3.3).
    pub fn open_send_channel_with<T: SmiType>(
        &self,
        count: u64,
        dst: usize,
        port: usize,
        protocol: Protocol,
    ) -> Result<SendChannel<T>, SmiError> {
        let my = smi_wire::header::rank_to_wire(self.rank)?;
        if dst >= self.num_ranks {
            return Err(SmiError::BadRank {
                rank: dst,
                size: self.num_ranks,
            });
        }
        let dstw = smi_wire::header::rank_to_wire(dst)?;
        SendChannel::open(
            self.table.clone(),
            my,
            dstw,
            port,
            count,
            protocol,
            self.params.blocking_timeout,
        )
    }

    /// `SMI_Open_recv_channel`: a transient channel receiving `count`
    /// elements of `T` from world rank `src` on `port` (eager protocol).
    pub fn open_recv_channel<T: SmiType>(
        &self,
        count: u64,
        src: usize,
        port: usize,
    ) -> Result<RecvChannel<T>, SmiError> {
        self.open_recv_channel_with(count, src, port, Protocol::Eager)
    }

    /// `open_recv_channel` with an explicit transmission protocol.
    pub fn open_recv_channel_with<T: SmiType>(
        &self,
        count: u64,
        src: usize,
        port: usize,
        protocol: Protocol,
    ) -> Result<RecvChannel<T>, SmiError> {
        let my = smi_wire::header::rank_to_wire(self.rank)?;
        if src >= self.num_ranks {
            return Err(SmiError::BadRank {
                rank: src,
                size: self.num_ranks,
            });
        }
        let srcw = smi_wire::header::rank_to_wire(src)?;
        RecvChannel::open(
            self.table.clone(),
            my,
            srcw,
            port,
            count,
            protocol,
            self.params.blocking_timeout,
        )
    }

    /// `SMI_Open_bcast_channel`: `root` is a communicator rank.
    pub fn open_bcast_channel<T: SmiType>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
    ) -> Result<BcastChannel<T>, SmiError> {
        BcastChannel::open(
            self.table.clone(),
            comm,
            count,
            port,
            root,
            self.params.blocking_timeout,
        )
    }

    /// `SMI_Open_reduce_channel`: `root` is a communicator rank; the
    /// reduction operator comes from the port's op metadata.
    pub fn open_reduce_channel<T: SmiNumeric>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
    ) -> Result<ReduceChannel<T>, SmiError> {
        ReduceChannel::open(
            self.table.clone(),
            comm,
            count,
            port,
            root,
            self.params.reduce_credits,
            self.params.blocking_timeout,
        )
    }

    /// Open a scatter channel: `root` is a communicator rank; the root
    /// pushes `count × N` elements, every member pops `count`.
    pub fn open_scatter_channel<T: SmiType>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
    ) -> Result<ScatterChannel<T>, SmiError> {
        ScatterChannel::open(
            self.table.clone(),
            comm,
            count,
            port,
            root,
            self.params.blocking_timeout,
        )
    }

    /// Open a gather channel: every member pushes `count` elements, the root
    /// pops `count × N`.
    pub fn open_gather_channel<T: SmiType>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
    ) -> Result<GatherChannel<T>, SmiError> {
        GatherChannel::open(
            self.table.clone(),
            comm,
            count,
            port,
            root,
            self.params.blocking_timeout,
        )
    }
}

/// Outcome of a cluster run.
#[derive(Debug)]
pub struct RunReport<T> {
    /// Per-rank return values, in rank order.
    pub results: Vec<T>,
    /// `(cks_forwards, ckr_forwards, unroutable)` transport counters.
    pub transport: (u64, u64, u64),
}

/// Launch errors.
#[derive(Debug)]
pub enum LaunchError {
    /// Invalid op metadata / design.
    Codegen(CodegenError),
    /// Route generation failed.
    Topology(TopologyError),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Codegen(e) => write!(f, "codegen: {e}"),
            LaunchError::Topology(e) => write!(f, "topology: {e}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Run an MPMD program: one closure per rank, each with its own op metadata.
pub fn run_mpmd<T: Send + 'static>(
    topo: &Topology,
    metas: Vec<ProgramMeta>,
    programs: Vec<Box<dyn FnOnce(SmiCtx) -> T + Send>>,
    params: RuntimeParams,
) -> Result<RunReport<T>, LaunchError> {
    assert_eq!(metas.len(), topo.num_ranks(), "one ProgramMeta per rank");
    assert_eq!(programs.len(), topo.num_ranks(), "one program per rank");
    let design = ClusterDesign::mpmd(&metas, topo).map_err(LaunchError::Codegen)?;
    design
        .validate_collectives()
        .map_err(LaunchError::Codegen)?;
    let plan = RoutingPlan::compute(topo).map_err(LaunchError::Topology)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stats = TransportStats::default();
    let transport = build_transport(topo, &plan, &design, &params, stop.clone(), stats.clone());
    let board = Arc::new(SplitBoard::default());
    let num_ranks = topo.num_ranks();

    let mut app_handles = Vec::with_capacity(num_ranks);
    for (rank, (table, program)) in transport.tables.into_iter().zip(programs).enumerate() {
        let board = board.clone();
        let params = params.clone();
        app_handles.push(
            std::thread::Builder::new()
                .name(format!("smi-rank-{rank}"))
                .spawn(move || {
                    let handle = new_table();
                    *handle.borrow_mut() = table;
                    let ctx = SmiCtx {
                        rank,
                        num_ranks,
                        table: handle,
                        board,
                        params,
                    };
                    program(ctx)
                })
                .expect("spawn rank thread"),
        );
    }
    let mut results = Vec::with_capacity(num_ranks);
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    for h in app_handles {
        match h.join() {
            Ok(v) => results.push(v),
            Err(p) => {
                // Release everything so remaining joins cannot hang forever.
                stop.store(true, Ordering::SeqCst);
                panic.get_or_insert(p);
            }
        }
    }
    stop.store(true, Ordering::SeqCst);
    for h in transport.threads {
        let _ = h.join();
    }
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }
    Ok(RunReport {
        results,
        transport: stats.snapshot(),
    })
}

/// Run an SPMD program: the same op metadata and closure on every rank
/// ("only one instance of the code is generated", §4.5).
pub fn run_spmd<T, F>(
    topo: &Topology,
    meta: ProgramMeta,
    program: F,
    params: RuntimeParams,
) -> Result<RunReport<T>, LaunchError>
where
    T: Send + 'static,
    F: Fn(SmiCtx) -> T + Send + Sync + Clone + 'static,
{
    let metas = vec![meta; topo.num_ranks()];
    let programs: Vec<Box<dyn FnOnce(SmiCtx) -> T + Send>> = (0..topo.num_ranks())
        .map(|_| {
            let f = program.clone();
            Box::new(move |ctx: SmiCtx| f(ctx)) as Box<dyn FnOnce(SmiCtx) -> T + Send>
        })
        .collect();
    run_mpmd(topo, metas, programs, params)
}

// Silence an unused-import warning when the OpKind re-export is only used in
// doc examples.
#[allow(unused_imports)]
use OpKind as _OpKindUsed;
