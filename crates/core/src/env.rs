//! The cluster environment: launching SPMD/MPMD programs over the sharded
//! transport.
//!
//! Mirrors the paper's workflow (Fig. 8): the op metadata (what the Clang
//! pass would extract) plus the topology produce the communication design
//! and routing tables; the "host program" — here [`run_spmd`]/[`run_mpmd`] —
//! uploads them, starts the transport, runs one application per rank, and
//! tears everything down.
//!
//! Two execution models are provided:
//!
//! * **Thread-per-rank** ([`run_mpmd`]/[`run_spmd`]): each rank program is
//!   an arbitrary blocking closure on its own OS thread. The transport (all
//!   CKS/CKR state machines) runs on the sharded executor — a fixed pool of
//!   worker threads — instead of one thread per CK kernel, so the thread
//!   bill is `ranks + workers` rather than `ranks + 4·ranks`.
//! * **Cooperative tasks** ([`run_mpmd_tasks`]/[`run_spmd_tasks`]): rank
//!   programs are poll-mode state machines (like the paper's hardware
//!   kernels) scheduled on the *same* worker pool as the transport. A
//!   64-rank cluster then runs on `workers` threads total — this is the
//!   execution model that scales past the OS thread budget. Tasks must only
//!   use the non-blocking channel APIs ([`crate::SendChannel::try_push_slice`],
//!   [`crate::RecvChannel::try_pop_slice`], the collective `try_*` forms) and
//!   open collectives with the rendezvous-free `open_*_channel_poll`
//!   variants.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use smi_codegen::{ClusterDesign, CodegenError, OpKind, ProgramMeta};
use smi_topology::{RoutingPlan, Topology, TopologyError};
use smi_wire::reduce::SmiNumeric;
use smi_wire::SmiType;

use crate::channel::{Protocol, RecvChannel, SendChannel};
use crate::collectives::{
    BcastChannel, CollectiveScheme, GatherChannel, ReduceChannel, ScatterChannel,
};
use crate::comm::{Communicator, SplitBoard};
use crate::endpoint::{new_table, EndpointTable, EndpointTableHandle};
use crate::params::RuntimeParams;
pub use crate::transport::executor::WorkerStats;
use crate::transport::executor::{ExecutorConfig, Pollable, ShardedExecutor, Step};
use crate::transport::socket::FabricHealth;
use crate::transport::wiring::{
    build_transport, build_transport_with, FabricLinks, TransportHandle,
};
use crate::transport::{TransportStats, WireSnapshot};
use crate::SmiError;

/// Per-rank execution context: the handle through which a rank's code opens
/// channels (the role played by the generated device interface + host header
/// in the paper's workflow).
pub struct SmiCtx {
    rank: usize,
    num_ranks: usize,
    table: EndpointTableHandle,
    board: Arc<SplitBoard>,
    params: RuntimeParams,
}

impl SmiCtx {
    /// This rank (world).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// The world communicator (`SMI_COMM_WORLD`).
    pub fn world(&self) -> Communicator {
        Communicator::world(self.num_ranks, self.rank, self.board.clone())
    }

    /// The runtime configuration.
    pub fn params(&self) -> &RuntimeParams {
        &self.params
    }

    /// `SMI_Open_send_channel`: a transient channel sending `count` elements
    /// of `T` to world rank `dst` on `port` (eager protocol).
    pub fn open_send_channel<T: SmiType>(
        &self,
        count: u64,
        dst: usize,
        port: usize,
    ) -> Result<SendChannel<T>, SmiError> {
        self.open_send_channel_with(count, dst, port, Protocol::Eager)
    }

    /// `open_send_channel` with an explicit transmission protocol (§3.3).
    pub fn open_send_channel_with<T: SmiType>(
        &self,
        count: u64,
        dst: usize,
        port: usize,
        protocol: Protocol,
    ) -> Result<SendChannel<T>, SmiError> {
        let my = smi_wire::header::rank_to_wire(self.rank)?;
        if dst >= self.num_ranks {
            return Err(SmiError::BadRank {
                rank: dst,
                size: self.num_ranks,
            });
        }
        let dstw = smi_wire::header::rank_to_wire(dst)?;
        SendChannel::open(
            self.table.clone(),
            my,
            dstw,
            port,
            count,
            protocol,
            self.params.blocking_timeout,
            self.params.burst_packets,
            self.params.zero_copy,
        )
    }

    /// `SMI_Open_recv_channel`: a transient channel receiving `count`
    /// elements of `T` from world rank `src` on `port` (eager protocol).
    pub fn open_recv_channel<T: SmiType>(
        &self,
        count: u64,
        src: usize,
        port: usize,
    ) -> Result<RecvChannel<T>, SmiError> {
        self.open_recv_channel_with(count, src, port, Protocol::Eager)
    }

    /// `open_recv_channel` with an explicit transmission protocol.
    pub fn open_recv_channel_with<T: SmiType>(
        &self,
        count: u64,
        src: usize,
        port: usize,
        protocol: Protocol,
    ) -> Result<RecvChannel<T>, SmiError> {
        let my = smi_wire::header::rank_to_wire(self.rank)?;
        if src >= self.num_ranks {
            return Err(SmiError::BadRank {
                rank: src,
                size: self.num_ranks,
            });
        }
        let srcw = smi_wire::header::rank_to_wire(src)?;
        RecvChannel::open(
            self.table.clone(),
            my,
            srcw,
            port,
            count,
            protocol,
            self.params.blocking_timeout,
        )
    }

    /// `SMI_Open_bcast_channel`: `root` is a communicator rank.
    ///
    /// Blocking form: completes the §3.3 one-to-all rendezvous before
    /// returning (the root waits for every receiver's ready announcement).
    /// Cooperative tasks must use [`SmiCtx::open_bcast_channel_poll`].
    pub fn open_bcast_channel<T: SmiType>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
    ) -> Result<BcastChannel<T>, SmiError> {
        let mut chan = self.open_bcast_channel_poll(count, port, root, comm)?;
        chan.wait_open()?;
        Ok(chan)
    }

    /// Poll-mode `SMI_Open_bcast_channel`: returns immediately with the
    /// handshake in progress ([`crate::CollectiveState::Opening`]); the
    /// caller drives it with [`crate::CollectivePoll::poll`] or the `try_*`
    /// operations. This is the task-safe variant — an in-progress open
    /// never parks the calling thread, so [`RankTask`] programs on
    /// [`run_mpmd_tasks`] can open collectives cooperatively.
    pub fn open_bcast_channel_poll<T: SmiType>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
    ) -> Result<BcastChannel<T>, SmiError> {
        self.open_bcast_channel_poll_with_scheme(
            count,
            port,
            root,
            comm,
            self.params.collective_scheme,
        )
    }

    /// [`SmiCtx::open_bcast_channel_poll`] with an explicit routing scheme,
    /// overriding [`crate::RuntimeParams::collective_scheme`]. Every member
    /// of the collective must pick the same scheme.
    pub fn open_bcast_channel_poll_with_scheme<T: SmiType>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
        scheme: CollectiveScheme,
    ) -> Result<BcastChannel<T>, SmiError> {
        BcastChannel::open(
            self.table.clone(),
            comm,
            count,
            port,
            root,
            scheme,
            &self.params,
        )
    }

    /// `SMI_Open_reduce_channel`: `root` is a communicator rank; the
    /// reduction operator comes from the port's op metadata.
    ///
    /// Reduce needs no open handshake (the first credit window is
    /// implicitly granted), so this never blocks; it is identical to
    /// [`SmiCtx::open_reduce_channel_poll`] and safe from tasks when only
    /// the `try_*` operations are used afterwards.
    pub fn open_reduce_channel<T: SmiNumeric>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
    ) -> Result<ReduceChannel<T>, SmiError> {
        self.open_reduce_channel_poll(count, port, root, comm)
    }

    /// Poll-mode `SMI_Open_reduce_channel` (task-safe; see
    /// [`SmiCtx::open_bcast_channel_poll`] for the execution model).
    pub fn open_reduce_channel_poll<T: SmiNumeric>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
    ) -> Result<ReduceChannel<T>, SmiError> {
        self.open_reduce_channel_poll_with_scheme(
            count,
            port,
            root,
            comm,
            self.params.collective_scheme,
        )
    }

    /// [`SmiCtx::open_reduce_channel_poll`] with an explicit routing scheme
    /// (see [`SmiCtx::open_bcast_channel_poll_with_scheme`]).
    pub fn open_reduce_channel_poll_with_scheme<T: SmiNumeric>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
        scheme: CollectiveScheme,
    ) -> Result<ReduceChannel<T>, SmiError> {
        ReduceChannel::open(
            self.table.clone(),
            comm,
            count,
            port,
            root,
            scheme,
            &self.params,
        )
    }

    /// Open a scatter channel: `root` is a communicator rank; the root
    /// pushes `count × N` elements, every member pops `count`.
    ///
    /// Blocking form: a non-root member waits until its ready announcement
    /// left for the root. Cooperative tasks must use
    /// [`SmiCtx::open_scatter_channel_poll`].
    pub fn open_scatter_channel<T: SmiType>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
    ) -> Result<ScatterChannel<T>, SmiError> {
        let mut chan = self.open_scatter_channel_poll(count, port, root, comm)?;
        chan.wait_open()?;
        Ok(chan)
    }

    /// Poll-mode scatter open (task-safe; see
    /// [`SmiCtx::open_bcast_channel_poll`] for the execution model).
    pub fn open_scatter_channel_poll<T: SmiType>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
    ) -> Result<ScatterChannel<T>, SmiError> {
        self.open_scatter_channel_poll_with_scheme(
            count,
            port,
            root,
            comm,
            self.params.collective_scheme,
        )
    }

    /// [`SmiCtx::open_scatter_channel_poll`] with an explicit routing
    /// scheme (see [`SmiCtx::open_bcast_channel_poll_with_scheme`]).
    pub fn open_scatter_channel_poll_with_scheme<T: SmiType>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
        scheme: CollectiveScheme,
    ) -> Result<ScatterChannel<T>, SmiError> {
        ScatterChannel::open(
            self.table.clone(),
            comm,
            count,
            port,
            root,
            scheme,
            &self.params,
        )
    }

    /// Open a gather channel: every member pushes `count` elements, the root
    /// pops `count × N`.
    ///
    /// Gather's serialized grants arrive during streaming, not at open, so
    /// this never blocks; it is identical to
    /// [`SmiCtx::open_gather_channel_poll`] and safe from tasks when only
    /// the `try_*` operations are used afterwards.
    pub fn open_gather_channel<T: SmiType>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
    ) -> Result<GatherChannel<T>, SmiError> {
        self.open_gather_channel_poll(count, port, root, comm)
    }

    /// Poll-mode gather open (task-safe; see
    /// [`SmiCtx::open_bcast_channel_poll`] for the execution model).
    pub fn open_gather_channel_poll<T: SmiType>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
    ) -> Result<GatherChannel<T>, SmiError> {
        self.open_gather_channel_poll_with_scheme(
            count,
            port,
            root,
            comm,
            self.params.collective_scheme,
        )
    }

    /// [`SmiCtx::open_gather_channel_poll`] with an explicit routing
    /// scheme (see [`SmiCtx::open_bcast_channel_poll_with_scheme`]).
    pub fn open_gather_channel_poll_with_scheme<T: SmiType>(
        &self,
        count: u64,
        port: usize,
        root: usize,
        comm: &Communicator,
        scheme: CollectiveScheme,
    ) -> Result<GatherChannel<T>, SmiError> {
        GatherChannel::open(
            self.table.clone(),
            comm,
            count,
            port,
            root,
            scheme,
            &self.params,
        )
    }
}

/// Outcome of a cluster run.
#[derive(Debug)]
pub struct RunReport<T> {
    /// Per-rank return values, in rank order.
    pub results: Vec<T>,
    /// `(cks_forwards, ckr_forwards, unroutable)` transport counters.
    pub transport: (u64, u64, u64),
    /// Payload bytes copied end to end — framing, refill, fan-out
    /// duplication, socket serialization and consumer drain all count;
    /// `Arc` handovers do not (see [`crate::transport::CopyMeter`]).
    /// Dividing by the elements moved gives copies-per-element; comparing
    /// a `zero_copy: true` run against the `false` baseline quantifies
    /// what the run-buffer plane saved.
    pub payload_copies: u64,
    /// Socket-plane wire counters: syscalls and bytes in both directions,
    /// buffer-pool hits/misses and cork merges (see
    /// [`crate::transport::WireSnapshot`]). All zeros for the in-memory
    /// fabric; for split runs the counters aggregate every socket
    /// connection of the run. `send_bytes_per_syscall()` is the headline
    /// number the pooled fast path optimizes.
    pub wire_stats: WireSnapshot,
    /// OS threads the runtime spawned for this run (rank threads, if any,
    /// plus executor workers).
    pub threads_spawned: usize,
    /// Mid-stream socket reconnects that healed (replayed and resumed)
    /// during the run. Always `0` for the in-memory fabric.
    pub reconnects_healed: usize,
    /// Per-worker scheduling counters of the executor pool(s): polls,
    /// progress, steals, parks. For split (multi-process-shaped) runs the
    /// groups' workers are concatenated in process order. Imbalance shows
    /// up here — a worker whose `progress` dwarfs its siblings' while their
    /// `steals` stay zero means stealing is off or defeated.
    pub worker_stats: Vec<WorkerStats>,
}

/// Launch errors.
#[derive(Debug)]
pub enum LaunchError {
    /// Invalid op metadata / design.
    Codegen(CodegenError),
    /// Route generation failed.
    Topology(TopologyError),
    /// Invalid process plan, or the cross-process fabric could not be
    /// established (socket setup/IO failure).
    Plan(String),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Codegen(e) => write!(f, "codegen: {e}"),
            LaunchError::Topology(e) => write!(f, "topology: {e}"),
            LaunchError::Plan(e) => write!(f, "process plan: {e}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Validate the launch inputs and build the transport (all ranks local).
fn prepare(
    topo: &Topology,
    metas: &[ProgramMeta],
    params: &RuntimeParams,
    stats: TransportStats,
) -> Result<TransportHandle, LaunchError> {
    assert_eq!(metas.len(), topo.num_ranks(), "one ProgramMeta per rank");
    let design = ClusterDesign::mpmd(metas, topo).map_err(LaunchError::Codegen)?;
    design
        .validate_collectives()
        .map_err(LaunchError::Codegen)?;
    let plan = RoutingPlan::compute(topo).map_err(LaunchError::Topology)?;
    Ok(build_transport(topo, &plan, &design, params, stats))
}

/// [`prepare`] for a fabric split across OS processes: builds only the
/// ranks marked local in `links`, splicing the pre-established external
/// links (socket-backed or otherwise) into the cross-rank edges. Every
/// process must run this with the *same* topology and metas so the
/// cluster design — and therefore the edge set — agrees on both sides of
/// every socket.
pub(crate) fn prepare_with(
    topo: &Topology,
    metas: &[ProgramMeta],
    params: &RuntimeParams,
    stats: TransportStats,
    links: FabricLinks,
) -> Result<TransportHandle, LaunchError> {
    assert_eq!(metas.len(), topo.num_ranks(), "one ProgramMeta per rank");
    let design = ClusterDesign::mpmd(metas, topo).map_err(LaunchError::Codegen)?;
    design
        .validate_collectives()
        .map_err(LaunchError::Codegen)?;
    let plan = RoutingPlan::compute(topo).map_err(LaunchError::Topology)?;
    Ok(build_transport_with(
        topo, &plan, &design, params, stats, links,
    ))
}

/// Where this process's ranks live relative to the rest of the cluster —
/// what the stall watchdog and error escalation need to say something
/// useful when the other side of a socket stops talking.
pub(crate) struct FabricDiag {
    /// Transport backend carrying cross-process edges (`"inmem"`, `"uds"`,
    /// `"tcp"`).
    pub backend: &'static str,
    /// Peer-liveness board shared with the socket pumps.
    pub health: FabricHealth,
    /// World rank → (process index, peer address) for every rank hosted by
    /// another OS process. Empty when the whole fabric is in-memory.
    pub remote: HashMap<usize, (usize, String)>,
}

impl Default for FabricDiag {
    fn default() -> Self {
        FabricDiag {
            backend: "inmem",
            health: FabricHealth::default(),
            remote: HashMap::new(),
        }
    }
}

/// Render the task-plane stall report: which world ranks stopped making
/// progress, over which backend, and — when the fabric spans processes —
/// which remote peer is implicated (by address, so an operator can find
/// the dead process without cross-referencing the process plan).
pub(crate) fn stall_message(stalled: &[usize], diag: &FabricDiag) -> String {
    let mut msg = format!(
        "smi: stall watchdog: rank(s) {stalled:?} made no progress within the blocking deadline \
         (backend={})",
        diag.backend
    );
    if let Some(pd) = diag.health.peer_down() {
        msg.push_str(&format!(
            "; peer rank {} is down (process {}, {} {}): {}",
            pd.rank, pd.process, pd.backend, pd.addr, pd.detail
        ));
    } else if diag.health.any_reconnecting() {
        let peers: Vec<String> = diag
            .health
            .reconnecting_peers()
            .iter()
            .map(|r| {
                format!(
                    "process {} hosting rank {} (attempt {}: {})",
                    r.process, r.rank, r.attempt, r.detail
                )
            })
            .collect();
        msg.push_str(&format!(
            "; mid-stream reconnect in flight: {}",
            peers.join(", ")
        ));
    } else if !diag.remote.is_empty() {
        let mut peers: Vec<String> = diag
            .remote
            .iter()
            .map(|(r, (p, addr))| format!("rank {r} (process {p}, {addr})"))
            .collect();
        peers.sort();
        msg.push_str(&format!("; remote peers: {}", peers.join(", ")));
    }
    msg
}

/// Results of running one process's share of the cluster: world-rank-tagged
/// outcomes plus the thread bill.
pub(crate) struct GroupOutcome<T> {
    /// `(world_rank, result)` for every rank this process hosted.
    pub results: Vec<(usize, T)>,
    /// OS threads spawned (rank threads, if any, plus executor workers).
    pub threads_spawned: usize,
    /// Mid-stream socket reconnects that healed in this group's fabric.
    pub reconnects_healed: usize,
    /// Final per-worker scheduling counters of this group's executor.
    pub worker_stats: Vec<WorkerStats>,
}

fn make_ctx(
    rank: usize,
    num_ranks: usize,
    table: EndpointTable,
    board: Arc<SplitBoard>,
    params: RuntimeParams,
) -> SmiCtx {
    let handle = new_table();
    *handle.lock() = table;
    SmiCtx {
        rank,
        num_ranks,
        table: handle,
        board,
        params,
    }
}

/// Run one process's ranks in thread-per-rank mode: spawn a thread per
/// local rank, drive the machines (CK kernels plus any socket pumps) on
/// the sharded executor, and only tear the executor down after
/// `on_complete` returns.
///
/// `on_complete` is the fabric-wide completion barrier: when the cluster
/// is split across OS processes it must not return until *every* rank in
/// *every* process finished, so a peer still draining its final bursts
/// never observes this process's sockets closing early. A rank finishing
/// proves all data it needed arrived, so once all ranks everywhere are
/// done, anything still in flight is protocol residue and the sockets can
/// drop. Single-process callers pass a no-op. The barrier is waited even
/// when a local rank panicked — peers must not hang on a barrier this
/// process abandoned — and the panic is resumed after teardown.
///
/// `programs` aligns with `tables` (both ordered by world rank).
pub(crate) fn run_group_threaded<T: Send + 'static>(
    tables: Vec<(usize, EndpointTable)>,
    programs: Vec<Box<dyn FnOnce(SmiCtx) -> T + Send>>,
    num_ranks: usize,
    machines: Vec<Box<dyn Pollable>>,
    params: &RuntimeParams,
    on_complete: Box<dyn FnOnce() + Send>,
) -> GroupOutcome<T> {
    assert_eq!(tables.len(), programs.len(), "one program per local rank");
    let stop = Arc::new(AtomicBool::new(false));
    let executor = ShardedExecutor::spawn_with(
        machines,
        params.resolved_workers(),
        stop.clone(),
        ExecutorConfig::from_params(params),
    );
    let board = Arc::new(SplitBoard::default());

    let world: Vec<usize> = tables.iter().map(|(r, _)| *r).collect();
    let mut app_handles = Vec::with_capacity(tables.len());
    for ((rank, table), program) in tables.into_iter().zip(programs) {
        let board = board.clone();
        let params = params.clone();
        app_handles.push(
            std::thread::Builder::new()
                .name(format!("smi-rank-{rank}"))
                .spawn(move || program(make_ctx(rank, num_ranks, table, board, params)))
                .expect("spawn rank thread"),
        );
    }
    let threads_spawned = app_handles.len() + executor.num_workers();
    let mut results = Vec::with_capacity(app_handles.len());
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    for (i, h) in app_handles.into_iter().enumerate() {
        match h.join() {
            Ok(v) => results.push((world[i], v)),
            Err(p) => {
                // Release everything so remaining joins cannot hang forever.
                stop.store(true, Ordering::SeqCst);
                panic.get_or_insert(p);
            }
        }
    }
    on_complete();
    stop.store(true, Ordering::SeqCst);
    let worker_stats = executor.join();
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }
    GroupOutcome {
        results,
        threads_spawned,
        // The threaded runner has no fabric diagnostics in scope; split
        // runners overwrite this from their own health board.
        reconnects_healed: 0,
        worker_stats,
    }
}

/// Run an MPMD program: one closure per rank, each with its own op metadata.
pub fn run_mpmd<T: Send + 'static>(
    topo: &Topology,
    metas: Vec<ProgramMeta>,
    programs: Vec<Box<dyn FnOnce(SmiCtx) -> T + Send>>,
    params: RuntimeParams,
) -> Result<RunReport<T>, LaunchError> {
    assert_eq!(programs.len(), topo.num_ranks(), "one program per rank");
    let stats = TransportStats::default();
    let transport = prepare(topo, &metas, &params, stats.clone())?;
    let num_ranks = topo.num_ranks();
    let outcome = run_group_threaded(
        transport.tables,
        programs,
        num_ranks,
        transport.machines,
        &params,
        Box::new(|| {}),
    );
    let mut slots: Vec<Option<T>> = (0..num_ranks).map(|_| None).collect();
    for (rank, v) in outcome.results {
        slots[rank] = Some(v);
    }
    Ok(RunReport {
        results: slots
            .into_iter()
            .map(|s| s.expect("one result per rank"))
            .collect(),
        transport: stats.snapshot(),
        payload_copies: stats.payload_copies.count(),
        wire_stats: stats.wire.snapshot(),
        threads_spawned: outcome.threads_spawned,
        reconnects_healed: outcome.reconnects_healed,
        worker_stats: outcome.worker_stats,
    })
}

/// Run an SPMD program: the same op metadata and closure on every rank
/// ("only one instance of the code is generated", §4.5).
pub fn run_spmd<T, F>(
    topo: &Topology,
    meta: ProgramMeta,
    program: F,
    params: RuntimeParams,
) -> Result<RunReport<T>, LaunchError>
where
    T: Send + 'static,
    F: Fn(SmiCtx) -> T + Send + Sync + Clone + 'static,
{
    let metas = vec![meta; topo.num_ranks()];
    let programs: Vec<Box<dyn FnOnce(SmiCtx) -> T + Send>> = (0..topo.num_ranks())
        .map(|_| {
            let f = program.clone();
            Box::new(move |ctx: SmiCtx| f(ctx)) as Box<dyn FnOnce(SmiCtx) -> T + Send>
        })
        .collect();
    run_mpmd(topo, metas, programs, params)
}

// ---------------------------------------------------------------------------
// Cooperative task plane
// ---------------------------------------------------------------------------

/// Progress report of one cooperative poll step of a rank task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// Moved data this step; poll again promptly (keeps the worker's
    /// backoff reset — report this whenever any element was pushed/popped).
    Progress,
    /// Nothing to do until the transport accepts or supplies data.
    Pending,
    /// The rank program completed.
    Done,
}

/// A rank program as a poll-mode state machine — the software analogue of
/// the paper's pipelined hardware kernels. `poll` must never block: use the
/// `try_*` channel APIs and return [`TaskStatus::Pending`] when the
/// transport cannot accept or supply data right now.
pub trait RankTask: Send {
    /// Advance as far as currently possible.
    fn poll(&mut self) -> Result<TaskStatus, SmiError>;
}

/// Builds one rank's task from its context (runs on an executor worker).
pub type TaskFactory = Box<dyn FnOnce(SmiCtx) -> Result<Box<dyn RankTask>, SmiError> + Send>;

enum TaskState {
    Init {
        ctx: Box<SmiCtx>,
        factory: TaskFactory,
    },
    Running(Box<dyn RankTask>),
    Finished,
}

/// Executor adapter: drives one rank task and reports its outcome.
struct RankTaskItem {
    rank: usize,
    state: TaskState,
    done_tx: crossbeam::channel::Sender<(usize, Result<(), SmiError>)>,
    /// Bumped on every poll that made progress — the per-rank liveness
    /// signal the stall watchdog reads, so one livelocked rank cannot hide
    /// behind other ranks' (or the transport's) progress.
    progress: Arc<std::sync::atomic::AtomicU64>,
}

impl Pollable for RankTaskItem {
    fn poll(&mut self) -> Step {
        let state = std::mem::replace(&mut self.state, TaskState::Finished);
        match state {
            TaskState::Init { ctx, factory } => match factory(*ctx) {
                Ok(task) => {
                    self.state = TaskState::Running(task);
                    self.progress.fetch_add(1, Ordering::Relaxed);
                    Step::Progress
                }
                Err(e) => {
                    let _ = self.done_tx.send((self.rank, Err(e)));
                    Step::Done
                }
            },
            TaskState::Running(mut task) => match task.poll() {
                Ok(TaskStatus::Progress) => {
                    self.state = TaskState::Running(task);
                    self.progress.fetch_add(1, Ordering::Relaxed);
                    Step::Progress
                }
                Ok(TaskStatus::Pending) => {
                    self.state = TaskState::Running(task);
                    Step::Idle
                }
                Ok(TaskStatus::Done) => {
                    // Drop the task (returning endpoint resources) before
                    // reporting completion.
                    drop(task);
                    let _ = self.done_tx.send((self.rank, Ok(())));
                    Step::Done
                }
                Err(e) => {
                    drop(task);
                    let _ = self.done_tx.send((self.rank, Err(e)));
                    Step::Done
                }
            },
            TaskState::Finished => Step::Done,
        }
    }
}

/// Run an MPMD program in cooperative task mode: every rank task *and* every
/// CK state machine is driven by the sharded executor's worker pool, so the
/// whole cluster uses `workers` OS threads regardless of rank count.
///
/// The only restriction compared to [`run_mpmd`] is that rank tasks must be
/// non-blocking: use the `try_*` channel APIs, and open collectives with
/// the poll-mode variants ([`SmiCtx::open_bcast_channel_poll`] & friends),
/// whose rendezvous-free handshake is driven by
/// [`crate::CollectivePoll::poll`]/`try_*` instead of blocking inside open.
pub fn run_mpmd_tasks(
    topo: &Topology,
    metas: Vec<ProgramMeta>,
    factories: Vec<TaskFactory>,
    params: RuntimeParams,
) -> Result<RunReport<Result<(), SmiError>>, LaunchError> {
    assert_eq!(factories.len(), topo.num_ranks(), "one task per rank");
    let stats = TransportStats::default();
    let transport = prepare(topo, &metas, &params, stats.clone())?;
    let num_ranks = topo.num_ranks();
    let diag = FabricDiag::default();
    let outcome = run_group_tasks(
        transport.tables,
        factories,
        num_ranks,
        transport.machines,
        &params,
        &diag,
        Box::new(|| {}),
    );
    let mut results: Vec<Result<(), SmiError>> = (0..num_ranks)
        .map(|_| Err(SmiError::TransportClosed))
        .collect();
    for (rank, res) in outcome.results {
        results[rank] = res;
    }
    Ok(RunReport {
        results,
        transport: stats.snapshot(),
        payload_copies: stats.payload_copies.count(),
        wire_stats: stats.wire.snapshot(),
        threads_spawned: outcome.threads_spawned,
        reconnects_healed: outcome.reconnects_healed,
        worker_stats: outcome.worker_stats,
    })
}

/// Run one process's ranks in cooperative task mode: rank tasks and
/// machines (CK kernels plus socket pumps) all on the executor's worker
/// pool. See [`run_group_threaded`] for the `on_complete` completion
/// barrier contract; `factories` aligns with `tables`.
pub(crate) fn run_group_tasks(
    tables: Vec<(usize, EndpointTable)>,
    factories: Vec<TaskFactory>,
    num_ranks: usize,
    machines: Vec<Box<dyn Pollable>>,
    params: &RuntimeParams,
    diag: &FabricDiag,
    on_complete: Box<dyn FnOnce() + Send>,
) -> GroupOutcome<Result<(), SmiError>> {
    assert_eq!(tables.len(), factories.len(), "one task per local rank");
    let stop = Arc::new(AtomicBool::new(false));
    let board = Arc::new(SplitBoard::default());
    let locals = tables.len();
    let world: Vec<usize> = tables.iter().map(|(r, _)| *r).collect();
    let local_of: HashMap<usize, usize> = world.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let (done_tx, done_rx) = crossbeam::channel::unbounded();

    let rank_progress: Vec<Arc<std::sync::atomic::AtomicU64>> = (0..locals)
        .map(|_| Arc::new(std::sync::atomic::AtomicU64::new(0)))
        .collect();
    let mut items: Vec<Box<dyn Pollable>> = machines;
    for (i, ((rank, table), factory)) in tables.into_iter().zip(factories).enumerate() {
        items.push(Box::new(RankTaskItem {
            rank,
            state: TaskState::Init {
                ctx: Box::new(make_ctx(
                    rank,
                    num_ranks,
                    table,
                    board.clone(),
                    params.clone(),
                )),
                factory,
            },
            done_tx: done_tx.clone(),
            progress: rank_progress[i].clone(),
        }));
    }
    drop(done_tx);
    let executor = ShardedExecutor::spawn_with(
        items,
        params.resolved_workers(),
        stop.clone(),
        ExecutorConfig::from_params(params),
    );
    let threads_spawned = executor.num_workers();

    let mut results: Vec<Result<(), SmiError>> = (0..locals)
        .map(|_| Err(SmiError::TransportClosed))
        .collect();
    let mut reported = vec![false; locals];
    let mut remaining = locals;
    // Stall watchdog: the blocking plane bounds every stalled operation by
    // `blocking_timeout`; the cooperative plane's analogue is "no unfinished
    // rank task made progress for a whole timeout window" — e.g. a failed
    // rank leaving its peer polling Pending forever. Progress is tracked
    // *per rank* (not executor-wide), so a livelocked rank cannot be masked
    // by transport churn or other ranks' activity, and the stall report
    // names exactly the ranks that stopped moving. The run is only ended
    // when every unfinished local rank stalled — a single rank legitimately
    // idle while its peers stream (e.g. awaiting a serialized gather grant)
    // does not trip it. When the fabric spans processes and a peer process
    // is known dead, the stall is reported as [`SmiError::PeerDisconnected`]
    // rather than a generic [`SmiError::Stalled`].
    let snapshot = |v: &[Arc<std::sync::atomic::AtomicU64>]| -> Vec<u64> {
        v.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    };
    let mut last_progress = snapshot(&rank_progress);
    while remaining > 0 {
        match done_rx.recv_timeout(params.blocking_timeout) {
            Ok((rank, res)) => {
                let i = local_of[&rank];
                results[i] = res;
                reported[i] = true;
                remaining -= 1;
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                let now = snapshot(&rank_progress);
                if diag.health.any_reconnecting() {
                    // Mid-stream recovery in flight: reconnect attempts are
                    // bounded by their own budget (which ends in either a
                    // healed stream or a recorded peer death), so grant the
                    // fabric a fresh window instead of declaring a stall
                    // while frames are waiting to be replayed.
                    last_progress = now;
                    continue;
                }
                let stalled: Vec<usize> = (0..locals)
                    .filter(|&i| !reported[i] && now[i] == last_progress[i])
                    .map(|i| world[i])
                    .collect();
                if stalled.len() == remaining {
                    eprintln!("{}", stall_message(&stalled, diag));
                    let peer_down = diag.health.error();
                    for rank in stalled {
                        results[local_of[&rank]] = match &peer_down {
                            Some(SmiError::PeerDisconnected { rank: down }) => {
                                Err(SmiError::PeerDisconnected { rank: *down })
                            }
                            _ => Err(SmiError::Stalled { rank }),
                        };
                    }
                    break;
                }
                last_progress = now;
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
        }
    }
    on_complete();
    stop.store(true, Ordering::SeqCst);
    let worker_stats = executor.join();
    GroupOutcome {
        results: world.into_iter().zip(results).collect(),
        threads_spawned,
        reconnects_healed: diag.health.healed(),
        worker_stats,
    }
}

/// SPMD variant of [`run_mpmd_tasks`]: one factory closure, cloned per rank.
pub fn run_spmd_tasks<F>(
    topo: &Topology,
    meta: ProgramMeta,
    factory: F,
    params: RuntimeParams,
) -> Result<RunReport<Result<(), SmiError>>, LaunchError>
where
    F: Fn(SmiCtx) -> Result<Box<dyn RankTask>, SmiError> + Send + Sync + Clone + 'static,
{
    let metas = vec![meta; topo.num_ranks()];
    let factories: Vec<TaskFactory> = (0..topo.num_ranks())
        .map(|_| {
            let f = factory.clone();
            Box::new(move |ctx: SmiCtx| f(ctx)) as TaskFactory
        })
        .collect();
    run_mpmd_tasks(topo, metas, factories, params)
}

// Silence an unused-import warning when the OpKind re-export is only used in
// doc examples.
#[allow(unused_imports)]
use OpKind as _OpKindUsed;

#[cfg(test)]
mod tests {
    use super::{stall_message, FabricDiag};
    use crate::transport::socket::{FabricHealth, PeerDown, PeerDownKind, ReconnectInfo};
    use std::collections::HashMap;

    #[test]
    fn stall_message_names_backend() {
        let diag = FabricDiag::default();
        let msg = stall_message(&[0, 2], &diag);
        assert!(msg.contains("rank(s) [0, 2]"), "{msg}");
        assert!(msg.contains("backend=inmem"), "{msg}");
        assert!(!msg.contains("remote peers"), "{msg}");
    }

    #[test]
    fn stall_message_lists_remote_peer_addresses() {
        let mut remote = HashMap::new();
        remote.insert(2, (1, "uds:///tmp/peer.sock".to_string()));
        remote.insert(3, (1, "uds:///tmp/peer.sock".to_string()));
        let diag = FabricDiag {
            backend: "uds",
            health: FabricHealth::default(),
            remote,
        };
        let msg = stall_message(&[0], &diag);
        assert!(msg.contains("backend=uds"), "{msg}");
        assert!(
            msg.contains("rank 2 (process 1, uds:///tmp/peer.sock)"),
            "{msg}"
        );
        assert!(msg.contains("rank 3 (process 1"), "{msg}");
    }

    #[test]
    fn stall_message_prefers_peer_down_details() {
        let health = FabricHealth::default();
        health.mark_down(PeerDown {
            rank: 2,
            process: 1,
            backend: "tcp",
            addr: "tcp://127.0.0.1:4444".to_string(),
            detail: "connection reset by peer".to_string(),
            kind: PeerDownKind::Link,
        });
        let mut remote = HashMap::new();
        remote.insert(2, (1, "tcp://127.0.0.1:4444".to_string()));
        let diag = FabricDiag {
            backend: "tcp",
            health,
            remote,
        };
        let msg = stall_message(&[0, 1], &diag);
        assert!(
            msg.contains("peer rank 2 is down (process 1, tcp tcp://127.0.0.1:4444)"),
            "{msg}"
        );
        assert!(msg.contains("connection reset by peer"), "{msg}");
        assert!(!msg.contains("remote peers:"), "{msg}");
    }

    #[test]
    fn stall_message_reports_reconnect_in_flight() {
        let health = FabricHealth::default();
        health.mark_reconnecting(ReconnectInfo {
            rank: 2,
            process: 1,
            attempt: 3,
            detail: "broken pipe".to_string(),
        });
        let mut remote = HashMap::new();
        remote.insert(2, (1, "tcp://127.0.0.1:4444".to_string()));
        let diag = FabricDiag {
            backend: "tcp",
            health,
            remote,
        };
        let msg = stall_message(&[0], &diag);
        assert!(msg.contains("mid-stream reconnect in flight"), "{msg}");
        assert!(
            msg.contains("process 1 hosting rank 2 (attempt 3: broken pipe)"),
            "{msg}"
        );
        assert!(!msg.contains("remote peers:"), "{msg}");
    }
}
