//! # smi — the Streaming Message Interface
//!
//! A Rust implementation of **SMI**, the communication model and interface
//! of *De Matteis et al., "Streaming Message Interface: High-Performance
//! Distributed Memory Programming on Reconfigurable Hardware" (SC 2019)*.
//!
//! SMI unifies message passing and streaming: instead of bulk-transferring
//! buffers, a *streaming message* is a **transient channel** — opened with a
//! count, datatype, peer rank and port — whose elements are pushed/popped one
//! per (simulated) clock cycle, while a table-driven transport layer routes
//! 32-byte packets across the FPGA interconnect.
//!
//! This crate is the *functional plane* of the reproduction: the transport
//! layer (CKS/CKR communication kernels, §4.2–4.3) runs as cooperative
//! state machines on a sharded executor — a fixed pool of worker threads —
//! forwarding real packet *bursts* over bounded FIFO channels that honour
//! the cluster [`smi_topology::Topology`] and a deadlock-free routing plan.
//! Rank programs run either as blocking closures on their own OS threads
//! ([`run_mpmd`]/[`run_spmd`]) or as poll-mode tasks on the same worker
//! pool ([`env::run_mpmd_tasks`]), which lets 64+-rank clusters execute on
//! a handful of threads. Data, framing, headers and protocols are
//! bit-identical with the cycle-accurate `smi-fabric` plane.
//!
//! ## Point-to-point (the paper's Lst. 1)
//!
//! ```
//! use smi::prelude::*;
//!
//! let topo = Topology::bus(2);
//! // The "metadata extractor" output: rank 0 sends on port 0, rank 1 receives.
//! let metas = vec![
//!     ProgramMeta::new().with(OpSpec::send(0, Datatype::Int)),
//!     ProgramMeta::new().with(OpSpec::recv(0, Datatype::Int)),
//! ];
//! let n = 64;
//! let report = run_mpmd(
//!     &topo,
//!     metas,
//!     vec![
//!         Box::new(move |ctx: SmiCtx| {
//!             let mut ch = ctx.open_send_channel::<i32>(n, 1, 0).unwrap();
//!             for i in 0..n as i32 {
//!                 ch.push(&i).unwrap(); // pipelined loop body
//!             }
//!             0
//!         }),
//!         Box::new(move |ctx: SmiCtx| {
//!             let mut ch = ctx.open_recv_channel::<i32>(n, 0, 0).unwrap();
//!             let mut sum = 0;
//!             for _ in 0..n {
//!                 sum += ch.pop().unwrap();
//!             }
//!             sum
//!         }),
//!     ],
//!     RuntimeParams::default(),
//! )
//! .unwrap();
//! assert_eq!(report.results[1], (0..64).sum::<i32>());
//! ```
//!
//! ## SPMD broadcast (the paper's Lst. 2)
//!
//! ```
//! use smi::prelude::*;
//!
//! let topo = Topology::torus2d(2, 2);
//! let meta = ProgramMeta::new().with(OpSpec::bcast(0, Datatype::Float));
//! let report = run_spmd(
//!     &topo,
//!     meta,
//!     |ctx: SmiCtx| {
//!         let comm = ctx.world();
//!         let root = 0;
//!         let mut chan = ctx.open_bcast_channel::<f32>(8, 0, root, &comm).unwrap();
//!         let mut out = Vec::new();
//!         for i in 0..8 {
//!             let mut data = if comm.rank() == root { i as f32 * 2.0 } else { 0.0 };
//!             chan.bcast(&mut data).unwrap();
//!             out.push(data);
//!         }
//!         out
//!     },
//!     RuntimeParams::default(),
//! )
//! .unwrap();
//! for r in report.results {
//!     assert_eq!(r, (0..8).map(|i| i as f32 * 2.0).collect::<Vec<_>>());
//! }
//! ```
//!
//! ## Cooperative task-plane collective
//!
//! Collectives open rendezvous-free with the `open_*_channel_poll` variants
//! (`Opening → Streaming → Done` handshake driven by
//! [`CollectivePoll::poll`]/`try_*`), so a poll-mode [`RankTask`] can drive
//! them on the executor's worker pool — no OS thread per rank. Every
//! collective also supports binomial-tree routing
//! ([`CollectiveScheme::Tree`] via [`RuntimeParams::collective_scheme`]):
//! non-root ranks forward/combine for their subtree, so the root touches
//! `O(log N)` streams instead of `N − 1` — the scaling scheme past ~16
//! ranks (see [`collectives`] for the topology derivation):
//!
//! ```
//! use smi::prelude::*;
//!
//! struct BcastTask {
//!     ch: BcastChannel<i32>,
//!     buf: Vec<i32>,
//!     off: usize,
//! }
//!
//! impl RankTask for BcastTask {
//!     fn poll(&mut self) -> Result<TaskStatus, SmiError> {
//!         // The root consumes `buf` into fan-out bursts; leaves fill it.
//!         let moved = self.ch.try_bcast_slice(&mut self.buf[self.off..])?;
//!         self.off += moved;
//!         if self.off == self.buf.len() && self.ch.poll()? == CollectiveState::Done {
//!             assert!(self.buf.iter().enumerate().all(|(i, &v)| v == i as i32));
//!             return Ok(TaskStatus::Done);
//!         }
//!         Ok(if moved > 0 { TaskStatus::Progress } else { TaskStatus::Pending })
//!     }
//! }
//!
//! let topo = Topology::torus2d(2, 2);
//! let meta = ProgramMeta::new().with(OpSpec::bcast(0, Datatype::Int));
//! let n = 64u64;
//! let report = run_spmd_tasks(
//!     &topo,
//!     meta,
//!     move |ctx: SmiCtx| {
//!         let comm = ctx.world();
//!         let ch = ctx.open_bcast_channel_poll::<i32>(n, 0, 0, &comm)?;
//!         let buf: Vec<i32> = if comm.rank() == 0 {
//!             (0..n as i32).collect()
//!         } else {
//!             vec![0; n as usize]
//!         };
//!         Ok(Box::new(BcastTask { ch, buf, off: 0 }) as Box<dyn RankTask>)
//!     },
//!     RuntimeParams::default(),
//! )
//! .unwrap();
//! assert!(report.results.iter().all(|r| r.is_ok()));
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod collectives;
pub mod comm;
pub mod endpoint;
pub mod env;
pub mod error;
pub mod params;
pub mod proc;
pub mod transport;

pub use channel::{Protocol, RecvChannel, SendChannel};
pub use collectives::{
    BcastChannel, CollectivePoll, CollectiveScheme, CollectiveState, GatherChannel, ReduceChannel,
    ScatterChannel,
};
pub use comm::Communicator;
pub use env::{
    run_mpmd, run_mpmd_tasks, run_spmd, run_spmd_tasks, RankTask, RunReport, SmiCtx, TaskFactory,
    TaskStatus, WorkerStats,
};
pub use error::SmiError;
pub use params::{ReconnectPolicy, RuntimeParams};
pub use proc::{
    run_split_mpmd, run_split_mpmd_tasks, run_split_spmd, ProcessPlan, ProcessSpec,
    TransportBackend,
};
pub use transport::faults::{DelaySpec, FaultPlan, LinkFault, SeverSpec};
pub use transport::{WireSnapshot, WireStats};

/// Convenient glob import: the SMI API plus the re-exported foundation types.
pub mod prelude {
    pub use crate::channel::{Protocol, RecvChannel, SendChannel};
    pub use crate::collectives::{
        BcastChannel, CollectivePoll, CollectiveScheme, CollectiveState, GatherChannel,
        ReduceChannel, ScatterChannel,
    };
    pub use crate::comm::Communicator;
    pub use crate::env::{
        run_mpmd, run_mpmd_tasks, run_spmd, run_spmd_tasks, RankTask, RunReport, SmiCtx,
        TaskFactory, TaskStatus, WorkerStats,
    };
    pub use crate::error::SmiError;
    pub use crate::params::{ReconnectPolicy, RuntimeParams};
    pub use crate::proc::{
        run_split_mpmd, run_split_mpmd_tasks, run_split_spmd, ProcessPlan, ProcessSpec,
        TransportBackend,
    };
    pub use crate::transport::faults::{DelaySpec, FaultPlan, LinkFault, SeverSpec};
    pub use crate::transport::WireSnapshot;
    pub use smi_codegen::{OpSpec, ProgramMeta};
    pub use smi_topology::Topology;
    pub use smi_wire::{Datatype, ReduceOp, SmiType};
}
