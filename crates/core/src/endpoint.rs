//! Application-side endpoint resources.
//!
//! One SMI port corresponds to fixed hardware laid down at "compile time"
//! (here: at cluster startup, from the generated design). Opening a transient
//! channel *takes* the port's endpoint resource; closing the channel (drop)
//! returns it, so a port can host any number of sequential transient
//! channels but never two concurrent ones.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crossbeam::channel::{Receiver, Sender};
use smi_codegen::OpKind;
use smi_wire::{Datatype, NetworkPacket, ReduceOp};

use crate::SmiError;

/// Blocking packet send with the runtime's timeout: a permanently jammed
/// transport surfaces as an error instead of wedging the rank thread.
pub(crate) fn send_packet(
    tx: &Sender<NetworkPacket>,
    pkt: NetworkPacket,
    timeout: std::time::Duration,
    waiting_for: &'static str,
) -> Result<(), SmiError> {
    use crossbeam::channel::SendTimeoutError;
    match tx.send_timeout(pkt, timeout) {
        Ok(()) => Ok(()),
        Err(SendTimeoutError::Timeout(_)) => Err(SmiError::Timeout { waiting_for }),
        Err(SendTimeoutError::Disconnected(_)) => Err(SmiError::TransportClosed),
    }
}

/// Send-side endpoint hardware: the FIFO into the bound CKS, plus the
/// credit-return path used by the credit-based protocol.
#[derive(Debug)]
pub(crate) struct SendRes {
    pub dtype: Datatype,
    pub to_cks: Sender<NetworkPacket>,
    pub credit_rx: Receiver<NetworkPacket>,
}

/// Receive-side endpoint hardware: the FIFO the bound CKR delivers into,
/// plus a send path into the CKS for credit grants (credit-based protocol).
#[derive(Debug)]
pub(crate) struct RecvRes {
    pub dtype: Datatype,
    pub from_ckr: Receiver<NetworkPacket>,
    pub grant_tx: Sender<NetworkPacket>,
}

/// Collective endpoint hardware (the support-kernel attachment of §4.4):
/// a send path plus data and credit delivery paths.
#[derive(Debug)]
pub(crate) struct CollRes {
    /// Kept for diagnostics (the declared-kind check happens in the table).
    #[allow(dead_code)]
    pub kind: OpKind,
    pub dtype: Datatype,
    pub reduce_op: Option<ReduceOp>,
    pub to_cks: Sender<NetworkPacket>,
    pub rx: Receiver<NetworkPacket>,
    pub credit_rx: Receiver<NetworkPacket>,
}

/// All endpoint resources of one port.
#[derive(Debug, Default)]
pub(crate) struct PortEndpoints {
    pub send: Option<SendRes>,
    pub recv: Option<RecvRes>,
    pub coll: Option<CollRes>,
}

/// The per-rank endpoint table, shared between the context and the channel
/// objects (which return their resource on drop).
#[derive(Debug, Default)]
pub(crate) struct EndpointTable {
    pub ports: HashMap<usize, PortEndpoints>,
    declared_send: Vec<usize>,
    declared_recv: Vec<usize>,
    declared_coll: Vec<(usize, OpKind)>,
}

/// Shared handle to a rank's endpoint table (single-threaded per rank).
pub(crate) type EndpointTableHandle = Rc<RefCell<EndpointTable>>;

impl EndpointTable {
    /// Record a declared endpoint (wiring time).
    pub fn declare(&mut self, port: usize, kind: OpKind) {
        match kind {
            OpKind::Send => self.declared_send.push(port),
            OpKind::Recv => self.declared_recv.push(port),
            k => self.declared_coll.push((port, k)),
        }
    }

    /// Take the send resource of `port`.
    pub fn take_send(&mut self, port: usize) -> Result<SendRes, SmiError> {
        if !self.declared_send.contains(&port) {
            return Err(SmiError::NoSuchEndpoint { port, kind: "send" });
        }
        self.ports
            .get_mut(&port)
            .and_then(|p| p.send.take())
            .ok_or(SmiError::EndpointBusy { port })
    }

    /// Take the receive resource of `port`.
    pub fn take_recv(&mut self, port: usize) -> Result<RecvRes, SmiError> {
        if !self.declared_recv.contains(&port) {
            return Err(SmiError::NoSuchEndpoint { port, kind: "recv" });
        }
        self.ports
            .get_mut(&port)
            .and_then(|p| p.recv.take())
            .ok_or(SmiError::EndpointBusy { port })
    }

    /// Take the collective resource of `port`, checking the expected kind.
    pub fn take_coll(&mut self, port: usize, kind: OpKind) -> Result<CollRes, SmiError> {
        if !self.declared_coll.contains(&(port, kind)) {
            return Err(SmiError::NoSuchEndpoint {
                port,
                kind: "collective",
            });
        }
        self.ports
            .get_mut(&port)
            .and_then(|p| p.coll.take())
            .ok_or(SmiError::EndpointBusy { port })
    }

    /// Return a send resource (channel drop).
    pub fn put_send(&mut self, port: usize, res: SendRes) {
        self.ports.entry(port).or_default().send = Some(res);
    }

    /// Return a receive resource (channel drop).
    pub fn put_recv(&mut self, port: usize, res: RecvRes) {
        self.ports.entry(port).or_default().recv = Some(res);
    }

    /// Return a collective resource (channel drop).
    pub fn put_coll(&mut self, port: usize, res: CollRes) {
        self.ports.entry(port).or_default().coll = Some(res);
    }
}

/// Build a shared handle.
pub(crate) fn new_table() -> EndpointTableHandle {
    Rc::new(RefCell::new(EndpointTable::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    fn send_res() -> SendRes {
        let (tx, _rx_keep) = bounded(1);
        let (_ctx, crx) = bounded::<NetworkPacket>(1);
        // Leak the keepers: tests only exercise the table mechanics.
        std::mem::forget(_rx_keep);
        std::mem::forget(_ctx);
        SendRes {
            dtype: Datatype::Int,
            to_cks: tx,
            credit_rx: crx,
        }
    }

    #[test]
    fn take_put_cycle() {
        let t = new_table();
        t.borrow_mut().declare(0, OpKind::Send);
        t.borrow_mut().put_send(0, send_res());
        let res = t.borrow_mut().take_send(0).unwrap();
        assert!(matches!(
            t.borrow_mut().take_send(0),
            Err(SmiError::EndpointBusy { port: 0 })
        ));
        t.borrow_mut().put_send(0, res);
        assert!(t.borrow_mut().take_send(0).is_ok());
    }

    #[test]
    fn undeclared_port_is_missing_not_busy() {
        let t = new_table();
        assert!(matches!(
            t.borrow_mut().take_send(9),
            Err(SmiError::NoSuchEndpoint {
                port: 9,
                kind: "send"
            })
        ));
        assert!(matches!(
            t.borrow_mut().take_recv(9),
            Err(SmiError::NoSuchEndpoint { .. })
        ));
        assert!(matches!(
            t.borrow_mut().take_coll(9, OpKind::Bcast),
            Err(SmiError::NoSuchEndpoint { .. })
        ));
    }

    #[test]
    fn collective_kind_checked() {
        let t = new_table();
        t.borrow_mut().declare(1, OpKind::Bcast);
        assert!(matches!(
            t.borrow_mut().take_coll(1, OpKind::Reduce),
            Err(SmiError::NoSuchEndpoint { .. })
        ));
    }
}
