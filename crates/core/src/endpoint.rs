//! Application-side endpoint resources.
//!
//! One SMI port corresponds to fixed hardware laid down at "compile time"
//! (here: at cluster startup, from the generated design). Opening a transient
//! channel *takes* the port's endpoint resource; closing the channel (drop)
//! returns it, so a port can host any number of sequential transient
//! channels but never two concurrent ones.
//!
//! All endpoint FIFOs move packet [`Burst`]s: bulk channel operations hand
//! over many packets per queue operation, and receive-side resources carry a
//! [`PacketRx`] that unbatches bursts back into a packet stream (buffered
//! state lives with the resource, so it survives channel reopen cycles).

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use smi_codegen::OpKind;
use smi_wire::{Datatype, Frame, NetworkPacket, PacketRun, ReduceOp};

use crate::transport::socket::FabricHealth;
use crate::transport::{meter_inline_data, Burst, CopyMeter};
use crate::SmiError;

/// The wait slice blocking waits use so the fabric-health board is checked
/// at a useful cadence (mid-stream reconnects last tens of milliseconds to
/// seconds). Data arrival still unblocks immediately.
const HEALTH_POLL_SLICE: Duration = Duration::from_millis(20);

/// Blocking burst send with the runtime's timeout: a permanently jammed
/// transport surfaces as an error instead of wedging the rank thread.
///
/// The stall window keeps resetting while a mid-stream socket reconnect is
/// in flight (`health`): recovery must not be misreported as a timeout.
/// Reconnects are budget-bounded, so a failed one still ends the wait.
pub(crate) fn send_burst(
    tx: &Sender<Burst>,
    burst: Burst,
    timeout: std::time::Duration,
    waiting_for: &'static str,
    health: &FabricHealth,
) -> Result<(), SmiError> {
    use crossbeam::channel::SendTimeoutError;
    use std::time::Instant;
    let mut burst = burst;
    let mut deadline = Instant::now() + timeout;
    loop {
        match tx.send_timeout(burst, timeout.min(HEALTH_POLL_SLICE)) {
            Ok(()) => return Ok(()),
            Err(SendTimeoutError::Timeout(b)) => {
                burst = b;
                if health.any_reconnecting() {
                    deadline = Instant::now() + timeout;
                } else if Instant::now() >= deadline {
                    return Err(SmiError::Timeout { waiting_for });
                }
            }
            Err(SendTimeoutError::Disconnected(_)) => return Err(SmiError::TransportClosed),
        }
    }
}

/// Blocking single-packet send (control packets: syncs, grants).
pub(crate) fn send_packet(
    tx: &Sender<Burst>,
    pkt: NetworkPacket,
    timeout: std::time::Duration,
    waiting_for: &'static str,
    health: &FabricHealth,
) -> Result<(), SmiError> {
    send_burst(tx, vec![pkt.into()], timeout, waiting_for, health)
}

/// Receive side of a burst FIFO, unbatched back into a frame (or packet)
/// stream. The pending queue holds the tail of the last burst.
///
/// Frame-aware consumers ([`PacketRx::try_recv_frame`]) receive
/// [`Frame::Run`]s whole — an `Arc` handle move, no payload copy. The
/// packet-oriented receives materialize runs one packet at a time (a
/// metered copy per packet), so protocol paths that reason packet-wise
/// keep working whatever the sender staged.
#[derive(Debug)]
pub(crate) struct PacketRx {
    rx: Receiver<Burst>,
    pending: VecDeque<Frame>,
    /// A run being materialized packet-by-packet: `(run, next packet idx)`.
    partial: Option<(PacketRun, usize)>,
    meter: CopyMeter,
}

impl PacketRx {
    pub fn new(rx: Receiver<Burst>, meter: CopyMeter) -> Self {
        PacketRx {
            rx,
            pending: VecDeque::new(),
            partial: None,
            meter,
        }
    }

    /// Stage an arrived burst into the pending queue. Copying inline data
    /// packets into the queue is a real payload-plane copy and is metered;
    /// run frames move as handles.
    fn absorb(&mut self, b: Burst) {
        meter_inline_data(&self.meter, &b);
        self.pending.extend(b);
    }

    /// Next buffered packet, materializing runs packet-by-packet (metered).
    fn pop_pending_packet(&mut self) -> Option<NetworkPacket> {
        loop {
            if let Some((run, idx)) = &mut self.partial {
                let pkt = run.packet(*idx);
                *idx += 1;
                if *idx == run.packet_count() {
                    self.partial = None;
                }
                self.meter.add_packets(1);
                return Some(pkt);
            }
            match self.pending.pop_front() {
                Some(Frame::Pkt(p)) => return Some(p),
                Some(Frame::Run(r)) => {
                    if r.packet_count() > 0 {
                        self.partial = Some((r, 0));
                    }
                }
                None => return None,
            }
        }
    }

    /// Next buffered frame. A half-materialized run resumes as packets so
    /// mixed packet/frame consumption never reorders elements.
    fn pop_pending_frame(&mut self) -> Option<Frame> {
        if self.partial.is_some() {
            return self.pop_pending_packet().map(Frame::Pkt);
        }
        self.pending.pop_front()
    }

    /// Blocking packet receive with the runtime's timeout and uniform error
    /// mapping. The stall window keeps resetting while a mid-stream socket
    /// reconnect is in flight (`health`) — see [`send_burst`].
    pub fn recv_packet(
        &mut self,
        timeout: std::time::Duration,
        waiting_for: &'static str,
        health: &FabricHealth,
    ) -> Result<NetworkPacket, SmiError> {
        use crossbeam::channel::RecvTimeoutError;
        use std::time::Instant;
        let mut deadline = Instant::now() + timeout;
        loop {
            if let Some(p) = self.pop_pending_packet() {
                return Ok(p);
            }
            match self.rx.recv_timeout(timeout.min(HEALTH_POLL_SLICE)) {
                Ok(b) => self.absorb(b),
                Err(RecvTimeoutError::Timeout) => {
                    if health.any_reconnecting() {
                        deadline = Instant::now() + timeout;
                    } else if Instant::now() >= deadline {
                        return Err(SmiError::Timeout { waiting_for });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(SmiError::TransportClosed),
            }
        }
    }

    /// Non-blocking packet receive: `Ok(None)` when nothing is buffered.
    pub fn try_recv_packet(&mut self) -> Result<Option<NetworkPacket>, SmiError> {
        use crossbeam::channel::TryRecvError;
        loop {
            if let Some(p) = self.pop_pending_packet() {
                return Ok(Some(p));
            }
            match self.rx.try_recv() {
                Ok(b) => self.absorb(b),
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => return Err(SmiError::TransportClosed),
            }
        }
    }

    /// Blocking frame receive — the frame-aware twin of
    /// [`PacketRx::recv_packet`], with the same timeout/health semantics.
    pub fn recv_frame(
        &mut self,
        timeout: std::time::Duration,
        waiting_for: &'static str,
        health: &FabricHealth,
    ) -> Result<Frame, SmiError> {
        use crossbeam::channel::RecvTimeoutError;
        use std::time::Instant;
        let mut deadline = Instant::now() + timeout;
        loop {
            if let Some(f) = self.pop_pending_frame() {
                return Ok(f);
            }
            match self.rx.recv_timeout(timeout.min(HEALTH_POLL_SLICE)) {
                Ok(b) => self.absorb(b),
                Err(RecvTimeoutError::Timeout) => {
                    if health.any_reconnecting() {
                        deadline = Instant::now() + timeout;
                    } else if Instant::now() >= deadline {
                        return Err(SmiError::Timeout { waiting_for });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(SmiError::TransportClosed),
            }
        }
    }

    /// Non-blocking frame receive: run frames are delivered whole (no
    /// payload copy) — the zero-copy consumer path.
    pub fn try_recv_frame(&mut self) -> Result<Option<Frame>, SmiError> {
        use crossbeam::channel::TryRecvError;
        loop {
            if let Some(f) = self.pop_pending_frame() {
                return Ok(Some(f));
            }
            match self.rx.try_recv() {
                Ok(b) => self.absorb(b),
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => return Err(SmiError::TransportClosed),
            }
        }
    }
}

/// Send-side endpoint hardware: the FIFO into the bound CKS, plus the
/// credit-return path used by the credit-based protocol.
#[derive(Debug)]
pub(crate) struct SendRes {
    pub dtype: Datatype,
    pub to_cks: Sender<Burst>,
    pub credit_rx: PacketRx,
}

/// Receive-side endpoint hardware: the FIFO the bound CKR delivers into,
/// plus a send path into the CKS for credit grants (credit-based protocol).
#[derive(Debug)]
pub(crate) struct RecvRes {
    pub dtype: Datatype,
    pub from_ckr: PacketRx,
    pub grant_tx: Sender<Burst>,
}

/// Collective endpoint hardware (the support-kernel attachment of §4.4):
/// a send path plus data and credit delivery paths.
#[derive(Debug)]
pub(crate) struct CollRes {
    /// Kept for diagnostics (the declared-kind check happens in the table).
    #[allow(dead_code)]
    pub kind: OpKind,
    pub dtype: Datatype,
    pub reduce_op: Option<ReduceOp>,
    pub to_cks: Sender<Burst>,
    pub rx: PacketRx,
    pub credit_rx: PacketRx,
}

/// Poll-mode handle on a port's collective endpoint: the [`CollRes`] plus a
/// staging buffer for outgoing packets (data, syncs, grants, credits).
///
/// Every transmit goes through [`CollIo::stage`] + [`CollIo::try_flush`]:
/// a full transport FIFO leaves the burst staged instead of parking the
/// calling thread, which is what lets an in-progress collective open (or any
/// collective operation) run on an executor worker without blocking it. The
/// channel objects re-offer the staged burst on every poll.
///
/// Tree-scheme collectives fan windows out to a *set of children* rather
/// than to the root's peers: [`CollIo::stage_fanout`] stages a packet
/// window once per child, grouped per destination, so the CKS sees long
/// same-route runs it can forward as whole bursts (`forward_runs`) instead
/// of per-packet splits.
#[derive(Debug)]
pub(crate) struct CollIo {
    port: usize,
    res: Option<CollRes>,
    table: EndpointTableHandle,
    staged: Burst,
    timeout: Duration,
    deadline: Option<Duration>,
    max_burst: usize,
    health: FabricHealth,
    copies: CopyMeter,
}

impl CollIo {
    /// Take the collective resource of `port`, checking kind and datatype.
    /// Timing/burst limits come from the runtime configuration.
    pub fn open(
        table: EndpointTableHandle,
        port: usize,
        kind: OpKind,
        dtype: Datatype,
        params: &crate::params::RuntimeParams,
    ) -> Result<Self, SmiError> {
        let res = table.lock().take_coll(port, kind)?;
        if res.dtype != dtype {
            let declared = res.dtype;
            table.lock().put_coll(port, res);
            return Err(SmiError::TypeMismatch {
                declared,
                requested: dtype,
            });
        }
        let (health, copies) = {
            let t = table.lock();
            (t.health.clone(), t.copies.clone())
        };
        Ok(CollIo {
            port,
            res: Some(res),
            table,
            staged: Vec::new(),
            timeout: params.blocking_timeout,
            deadline: params.blocking_deadline,
            max_burst: params.burst_packets.max(1),
            health,
            copies,
        })
    }

    fn res(&self) -> &CollRes {
        self.res.as_ref().expect("resource held while open")
    }

    fn res_mut(&mut self) -> &mut CollRes {
        self.res.as_mut().expect("resource held while open")
    }

    /// The reduce operator declared for this port (reduce bindings only).
    pub fn reduce_op(&self) -> Option<ReduceOp> {
        self.res().reduce_op
    }

    /// The runtime's blocking-stall bound.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Overall deadline for a blocking call starting now (`None` when the
    /// runtime leaves blocking calls stall-bounded only).
    pub fn call_deadline(&self) -> Option<std::time::Instant> {
        self.deadline.map(|d| std::time::Instant::now() + d)
    }

    /// The configured burst size (packets per transport handover).
    pub fn max_burst(&self) -> usize {
        self.max_burst
    }

    /// A clone of the fabric-health board, for recovery-aware stall bounds
    /// (the blocking wrappers keep polling while a reconnect is in flight).
    pub fn health_handle(&self) -> FabricHealth {
        self.health.clone()
    }

    /// The rank's payload-copy meter: collectives charge their own framing,
    /// refill and drain copies against it.
    pub fn meter(&self) -> &CopyMeter {
        &self.copies
    }

    /// Queue a packet for transmission (data or control).
    pub fn stage(&mut self, pkt: NetworkPacket) {
        self.stage_frame(pkt.into());
    }

    /// Queue a frame for transmission (run frames move as handles).
    pub fn stage_frame(&mut self, frame: Frame) {
        self.staged.push(frame);
    }

    /// Stage a frame window once per destination in `dsts` (world ranks),
    /// grouped per child: all of child 0's copies, then child 1's, … so
    /// mixed parent/child bursts reach the CKS as maximal same-route runs.
    /// Inline packets are duplicated per child (a metered payload copy
    /// each); run frames are re-addressed `Arc` clones — no payload moves,
    /// which is what makes tree fan-out zero-copy. The window is drained.
    pub fn stage_fanout(&mut self, window: &mut Vec<Frame>, dsts: &[usize]) {
        if dsts.is_empty() {
            window.clear();
            return;
        }
        for &dst in dsts {
            for f in window.iter() {
                match f {
                    Frame::Pkt(pkt) => {
                        let mut copy = *pkt;
                        copy.header.dst = dst as u8;
                        if copy.header.op.carries_data() {
                            self.copies.add_packets(1);
                        }
                        self.staged.push(copy.into());
                    }
                    Frame::Run(run) => {
                        self.staged.push(Frame::Run(run.with_dst(dst as u8)));
                    }
                }
            }
        }
        window.clear();
    }

    /// Whether the staging buffer reached the configured burst size and
    /// should be offered to the transport. Counts wire packets, not frames,
    /// so a staged run the size of a burst flushes like a full packet burst.
    pub fn stage_full(&self) -> bool {
        self.staged.iter().map(|f| f.packet_count()).sum::<usize>() >= self.max_burst
    }

    /// Offer the staged burst to the transport without blocking. `Ok(true)`
    /// when nothing remains staged; `Ok(false)` when the FIFO is full and
    /// the burst was retained for the next poll.
    pub fn try_flush(&mut self) -> Result<bool, SmiError> {
        if self.staged.is_empty() {
            return Ok(true);
        }
        let burst = std::mem::take(&mut self.staged);
        match self.res().to_cks.try_send(burst) {
            Ok(()) => Ok(true),
            Err(TrySendError::Full(b)) => {
                self.staged = b;
                Ok(false)
            }
            Err(TrySendError::Disconnected(_)) => Err(SmiError::TransportClosed),
        }
    }

    /// Non-blocking receive from the data/sync delivery path.
    ///
    /// Buffered packets are always delivered; once the path runs empty
    /// *and* a peer process has died, the op fails fast with
    /// [`SmiError::PeerDisconnected`] — a collective spans every member, so
    /// waiting out the stall could only end in a timeout anyway.
    pub fn try_recv_data(&mut self) -> Result<Option<NetworkPacket>, SmiError> {
        match self.res_mut().rx.try_recv_packet()? {
            Some(p) => Ok(Some(p)),
            None => match self.health.error() {
                Some(e) => Err(e),
                None => Ok(None),
            },
        }
    }

    /// Non-blocking frame receive from the data/sync delivery path: run
    /// frames arrive whole (no payload copy). Same peer-death fail-fast as
    /// [`CollIo::try_recv_data`].
    pub fn try_recv_data_frame(&mut self) -> Result<Option<Frame>, SmiError> {
        match self.res_mut().rx.try_recv_frame()? {
            Some(f) => Ok(Some(f)),
            None => match self.health.error() {
                Some(e) => Err(e),
                None => Ok(None),
            },
        }
    }

    /// Non-blocking receive from the credit delivery path (same
    /// peer-death fail-fast as [`CollIo::try_recv_data`]).
    pub fn try_recv_credit(&mut self) -> Result<Option<NetworkPacket>, SmiError> {
        match self.res_mut().credit_rx.try_recv_packet()? {
            Some(p) => Ok(Some(p)),
            None => match self.health.error() {
                Some(e) => Err(e),
                None => Ok(None),
            },
        }
    }
}

impl Drop for CollIo {
    fn drop(&mut self) {
        if let Some(res) = self.res.take() {
            // Best-effort handover of anything still staged (mirrors
            // `SendChannel::drop`): Drop may run on an executor worker, so
            // blocking here would wedge the thread that drains the FIFO.
            if !self.staged.is_empty() {
                let _ = res.to_cks.try_send(std::mem::take(&mut self.staged));
            }
            self.table.lock().put_coll(self.port, res);
        }
    }
}

/// Downstream credit accounting for the contributors feeding one node of a
/// reduce (the root in the linear scheme, any combiner node in the tree
/// scheme). Tracks the total credit granted — including the protocol's
/// *implicit* first window — and clamps every subsequent wire grant to the
/// message tail, so a message whose count is not a multiple of the window
/// size can never be over-granted: the total ever granted is
/// `max(window, count)`, reached exactly.
#[derive(Debug, Clone)]
pub(crate) struct CreditLedger {
    window: u64,
    count: u64,
    granted: u64,
}

impl CreditLedger {
    /// New ledger for a `count`-element message with window size `window`
    /// (the first window is implicitly granted and never on the wire).
    pub fn new(window: u64, count: u64) -> Self {
        debug_assert!(window >= 1);
        CreditLedger {
            window,
            count,
            granted: window,
        }
    }

    /// Called when `emitted` elements have completed: returns the credit
    /// to grant (0 when not at a window boundary, and clamped so the total
    /// granted never exceeds the message count — the tail-window rule).
    pub fn window_grant(&mut self, emitted: u64) -> u64 {
        if emitted == 0 || !emitted.is_multiple_of(self.window) {
            return 0;
        }
        let g = self.window.min(self.count.saturating_sub(self.granted));
        self.granted += g;
        g
    }

    /// Total credit granted so far (implicit first window included).
    pub fn granted(&self) -> u64 {
        self.granted
    }
}

/// All endpoint resources of one port.
#[derive(Debug, Default)]
pub(crate) struct PortEndpoints {
    pub send: Option<SendRes>,
    pub recv: Option<RecvRes>,
    pub coll: Option<CollRes>,
}

/// The per-rank endpoint table, shared between the context and the channel
/// objects (which return their resource on drop).
#[derive(Debug, Default)]
pub(crate) struct EndpointTable {
    pub ports: HashMap<usize, PortEndpoints>,
    /// Fabric-wide peer-liveness board (set by the wiring; the default
    /// never reports down). Channels clone it at open so a dead peer
    /// process surfaces as [`SmiError::PeerDisconnected`] instead of a
    /// generic timeout.
    pub health: FabricHealth,
    /// Payload-plane copy meter (set by the wiring; shared with every
    /// [`PacketRx`] of the rank). Channels clone it at open to account
    /// their own staging copies.
    pub copies: CopyMeter,
    declared_send: Vec<usize>,
    declared_recv: Vec<usize>,
    declared_coll: Vec<(usize, OpKind)>,
}

/// Shared handle to a rank's endpoint table. Lock traffic is confined to
/// channel open/close (never the per-element hot path), so a mutex-guarded
/// handle keeps contexts `Send` — required by the cooperative task plane.
pub(crate) type EndpointTableHandle = Arc<Mutex<EndpointTable>>;

impl EndpointTable {
    /// An empty table wired to the given fabric-health board and payload
    /// copy meter.
    pub fn with_health(health: FabricHealth, copies: CopyMeter) -> EndpointTable {
        EndpointTable {
            health,
            copies,
            ..EndpointTable::default()
        }
    }

    /// Record a declared endpoint (wiring time).
    pub fn declare(&mut self, port: usize, kind: OpKind) {
        match kind {
            OpKind::Send => self.declared_send.push(port),
            OpKind::Recv => self.declared_recv.push(port),
            k => self.declared_coll.push((port, k)),
        }
    }

    /// Take the send resource of `port`.
    pub fn take_send(&mut self, port: usize) -> Result<SendRes, SmiError> {
        if !self.declared_send.contains(&port) {
            return Err(SmiError::NoSuchEndpoint { port, kind: "send" });
        }
        self.ports
            .get_mut(&port)
            .and_then(|p| p.send.take())
            .ok_or(SmiError::EndpointBusy { port })
    }

    /// Take the receive resource of `port`.
    pub fn take_recv(&mut self, port: usize) -> Result<RecvRes, SmiError> {
        if !self.declared_recv.contains(&port) {
            return Err(SmiError::NoSuchEndpoint { port, kind: "recv" });
        }
        self.ports
            .get_mut(&port)
            .and_then(|p| p.recv.take())
            .ok_or(SmiError::EndpointBusy { port })
    }

    /// Take the collective resource of `port`, checking the expected kind.
    pub fn take_coll(&mut self, port: usize, kind: OpKind) -> Result<CollRes, SmiError> {
        if !self.declared_coll.contains(&(port, kind)) {
            return Err(SmiError::NoSuchEndpoint {
                port,
                kind: "collective",
            });
        }
        self.ports
            .get_mut(&port)
            .and_then(|p| p.coll.take())
            .ok_or(SmiError::EndpointBusy { port })
    }

    /// Return a send resource (channel drop).
    pub fn put_send(&mut self, port: usize, res: SendRes) {
        self.ports.entry(port).or_default().send = Some(res);
    }

    /// Return a receive resource (channel drop).
    pub fn put_recv(&mut self, port: usize, res: RecvRes) {
        self.ports.entry(port).or_default().recv = Some(res);
    }

    /// Return a collective resource (channel drop).
    pub fn put_coll(&mut self, port: usize, res: CollRes) {
        self.ports.entry(port).or_default().coll = Some(res);
    }
}

/// Build a shared handle.
pub(crate) fn new_table() -> EndpointTableHandle {
    Arc::new(Mutex::new(EndpointTable::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    fn send_res() -> SendRes {
        let (tx, _rx_keep) = bounded(1);
        let (_ctx, crx) = bounded::<Burst>(1);
        // Leak the keepers: tests only exercise the table mechanics.
        std::mem::forget(_rx_keep);
        std::mem::forget(_ctx);
        SendRes {
            dtype: Datatype::Int,
            to_cks: tx,
            credit_rx: PacketRx::new(crx, CopyMeter::default()),
        }
    }

    #[test]
    fn take_put_cycle() {
        let t = new_table();
        t.lock().declare(0, OpKind::Send);
        t.lock().put_send(0, send_res());
        let res = t.lock().take_send(0).unwrap();
        assert!(matches!(
            t.lock().take_send(0),
            Err(SmiError::EndpointBusy { port: 0 })
        ));
        t.lock().put_send(0, res);
        assert!(t.lock().take_send(0).is_ok());
    }

    #[test]
    fn undeclared_port_is_missing_not_busy() {
        let t = new_table();
        assert!(matches!(
            t.lock().take_send(9),
            Err(SmiError::NoSuchEndpoint {
                port: 9,
                kind: "send"
            })
        ));
        assert!(matches!(
            t.lock().take_recv(9),
            Err(SmiError::NoSuchEndpoint { .. })
        ));
        assert!(matches!(
            t.lock().take_coll(9, OpKind::Bcast),
            Err(SmiError::NoSuchEndpoint { .. })
        ));
    }

    #[test]
    fn collective_kind_checked() {
        let t = new_table();
        t.lock().declare(1, OpKind::Bcast);
        assert!(matches!(
            t.lock().take_coll(1, OpKind::Reduce),
            Err(SmiError::NoSuchEndpoint { .. })
        ));
    }

    #[test]
    fn credit_ledger_clamps_tail_window() {
        let mut l = CreditLedger::new(4, 10);
        assert_eq!(l.granted(), 4); // implicit first window
        assert_eq!(l.window_grant(3), 0); // not a window boundary
        assert_eq!(l.window_grant(4), 4); // full interior window
        assert_eq!(l.window_grant(8), 2); // tail window: clamped to 10
        assert_eq!(l.window_grant(12), 0); // nothing left to grant
        assert_eq!(l.granted(), 10);
        // A count below one window never puts a grant on the wire.
        let mut s = CreditLedger::new(8, 3);
        assert_eq!(s.window_grant(8), 0);
        assert_eq!(s.granted(), 8);
    }

    #[test]
    fn packet_rx_unbatches_bursts() {
        use smi_wire::PacketOp;
        let (tx, rx) = bounded::<Burst>(4);
        let mut prx = PacketRx::new(rx, CopyMeter::default());
        let pkt = |d: u8| NetworkPacket::new(0, d, 0, PacketOp::Send);
        tx.send(vec![pkt(1).into(), pkt(2).into()]).unwrap();
        tx.send(vec![pkt(3).into()]).unwrap();
        assert_eq!(prx.try_recv_packet().unwrap().unwrap().header.dst, 1);
        assert_eq!(prx.try_recv_packet().unwrap().unwrap().header.dst, 2);
        assert_eq!(
            prx.recv_packet(
                std::time::Duration::from_secs(1),
                "t",
                &FabricHealth::default()
            )
            .unwrap()
            .header
            .dst,
            3
        );
        assert!(prx.try_recv_packet().unwrap().is_none());
        drop(tx);
        assert!(matches!(
            prx.try_recv_packet(),
            Err(SmiError::TransportClosed)
        ));
    }

    #[test]
    fn packet_rx_materializes_runs_for_packet_consumers() {
        use smi_wire::PacketOp;
        let (tx, rx) = bounded::<Burst>(4);
        let meter = CopyMeter::default();
        let mut prx = PacketRx::new(rx, meter.clone());
        let elems: Vec<i32> = (0..16).collect();
        let run = PacketRun::from_elems(0, 1, 0, PacketOp::Send, &elems);
        tx.send(vec![Frame::Run(run)]).unwrap();
        // 16 ints -> 7 + 7 + 2 packets, materialized lazily and metered.
        let mut got = Vec::new();
        while let Some(p) = prx.try_recv_packet().unwrap() {
            for i in 0..p.header.count as usize {
                got.push(p.read_elem::<i32>(i));
            }
        }
        assert_eq!(got, elems);
        assert_eq!(meter.count(), 3 * smi_wire::PAYLOAD_BYTES as u64);
    }

    #[test]
    fn packet_rx_delivers_runs_whole_to_frame_consumers() {
        use smi_wire::PacketOp;
        let (tx, rx) = bounded::<Burst>(4);
        let meter = CopyMeter::default();
        let mut prx = PacketRx::new(rx, meter.clone());
        let run = PacketRun::from_elems(0, 1, 0, PacketOp::Send, &[1.5f32; 20]);
        tx.send(vec![Frame::Run(run)]).unwrap();
        match prx.try_recv_frame().unwrap() {
            Some(Frame::Run(r)) => assert_eq!(r.elems(), 20),
            other => panic!("expected a whole run, got {other:?}"),
        }
        // A whole-run delivery copies no payload bytes.
        assert_eq!(meter.count(), 0);
    }
}
