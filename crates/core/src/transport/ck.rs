//! The CK state machine: the §4.3 CKS/CKR loop as a cooperative,
//! burst-granular poller.
//!
//! Like the hardware kernels, a machine owns a set of input links, a routing
//! function, and a set of output links; it polls inputs round-robin, reading
//! up to `R` bursts from one input while data is available, and forwards
//! with backpressure (a full output stalls the head burst — order within an
//! input is never reordered). Unlike the previous implementation it never
//! blocks: when an output is full the machine parks the burst and reports
//! [`Step::Idle`], letting the executor worker drive its other machines.
//!
//! Machines are engine-agnostic: inputs and outputs are
//! [`Transport`]/[`TransportReceiver`] trait objects
//! ([`crate::transport::link`]), so the same state machine drives in-memory
//! FIFO edges and socket edges that cross a process boundary.
//!
//! Routing is header-only: a [`Frame::Run`] spanning many packets is routed
//! once and forwarded as a single refcounted view — the zero-copy payload
//! plane's fast path through the fabric.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use smi_wire::{Frame, Header};

use crate::transport::executor::{Pollable, Step};
use crate::transport::link::{LinkRecv, LinkRx, LinkSend, LinkTx};
use crate::transport::Burst;

/// Routing verdict for one frame.
pub(crate) enum Route {
    /// Forward into output `i` of the machine's output list.
    Output(usize),
    /// No route — count as unroutable and drop (always a wiring bug).
    Drop,
}

/// A CKS or CKR kernel body in poll mode.
pub(crate) struct CkMachine {
    /// Diagnostic name.
    #[allow(dead_code)]
    pub name: String,
    pub inputs: Vec<LinkRx>,
    pub outputs: Vec<LinkTx>,
    /// Frame header → output index.
    pub route: Box<dyn Fn(&Header) -> Route + Send>,
    /// Polling persistence `R` (bursts drained from one input before
    /// rotating).
    pub persistence: u32,
    /// Maximum packets grouped into one forwarded burst.
    pub max_burst: usize,
    /// Incremented per forwarded packet (a run counts its packet span).
    pub forwards: Arc<AtomicU64>,
    /// Incremented per dropped packet.
    pub unroutable: Arc<AtomicU64>,
    // --- runtime state ---
    dead: Vec<bool>,
    current: usize,
    /// A routed burst an output refused; retried before anything else.
    parked: Option<(usize, Burst)>,
    /// Received frames not yet routed (mixed-route bursts).
    stash: VecDeque<Frame>,
}

impl CkMachine {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: String,
        inputs: Vec<LinkRx>,
        outputs: Vec<LinkTx>,
        route: Box<dyn Fn(&Header) -> Route + Send>,
        persistence: u32,
        max_burst: usize,
        forwards: Arc<AtomicU64>,
        unroutable: Arc<AtomicU64>,
    ) -> Self {
        let n = inputs.len();
        CkMachine {
            name,
            inputs,
            outputs,
            route,
            persistence: persistence.max(1),
            max_burst: max_burst.max(1),
            forwards,
            unroutable,
            dead: vec![false; n],
            current: 0,
            parked: None,
            stash: VecDeque::new(),
        }
    }

    /// Try to push a routed burst; on `Full` the burst is parked for the
    /// next poll. Returns false when the machine is now blocked.
    fn offer(&mut self, idx: usize, burst: Burst, progressed: &mut bool) -> bool {
        let packets: u64 = burst.iter().map(|f| f.packet_count() as u64).sum();
        match self.outputs[idx].offer(burst) {
            LinkSend::Accepted => {
                self.forwards.fetch_add(packets, Ordering::Relaxed);
                *progressed = true;
                true
            }
            LinkSend::Full(b) => {
                self.parked = Some((idx, b));
                false
            }
            LinkSend::Closed => {
                // Receiver gone: shutdown or a dead peer (reported through
                // the fabric health board); treat the burst as drained.
                *progressed = true;
                true
            }
        }
    }

    /// Drain the parked burst and the stash into outputs. Returns false when
    /// blocked on a full output.
    fn drain(&mut self, progressed: &mut bool) -> bool {
        if let Some((idx, b)) = self.parked.take() {
            if !self.offer(idx, b, progressed) {
                return false;
            }
        }
        while let Some(head) = self.stash.front() {
            let idx = match (self.route)(head.header()) {
                Route::Output(i) => i,
                Route::Drop => {
                    let f = self.stash.pop_front().expect("head");
                    self.unroutable
                        .fetch_add(f.packet_count() as u64, Ordering::Relaxed);
                    *progressed = true;
                    continue;
                }
            };
            // Group the run of consecutive same-output frames into a burst,
            // capped at `max_burst` packets (a single frame always moves).
            let mut burst: Burst = Vec::new();
            let head = self.stash.pop_front().expect("head");
            let mut packets = head.packet_count();
            burst.push(head);
            while packets < self.max_burst {
                match self.stash.front() {
                    Some(f) => match (self.route)(f.header()) {
                        Route::Output(i) if i == idx => {
                            let f = self.stash.pop_front().expect("next");
                            packets += f.packet_count();
                            burst.push(f);
                        }
                        _ => break,
                    },
                    None => break,
                }
            }
            if !self.offer(idx, burst, progressed) {
                return false;
            }
        }
        true
    }

    /// Forward a received burst by carving maximal same-output runs off its
    /// front, without restaging through the stash. A burst whose frames all
    /// share one route (the p2p bulk path) moves as-is, zero-copy; a
    /// mixed-destination burst — the collective fan-out pattern — is split
    /// with `split_off`, *moving* each run out instead of cloning it
    /// packet-by-packet. On backpressure the refused run is parked and the
    /// unrouted tail is stashed for the next poll (order within the input is
    /// preserved). Callers must ensure the stash is empty and nothing is
    /// parked. Returns false when now blocked.
    fn forward_runs(&mut self, mut burst: Burst, progressed: &mut bool) -> bool {
        while !burst.is_empty() {
            match (self.route)(burst[0].header()) {
                Route::Output(idx) => {
                    // Extend the run while the route stays the same, capped
                    // at `max_burst` packets (a lone frame always moves).
                    let mut packets = burst[0].packet_count();
                    let mut j = 1;
                    while j < burst.len() && packets < self.max_burst {
                        match (self.route)(burst[j].header()) {
                            Route::Output(k) if k == idx => {
                                packets += burst[j].packet_count();
                                j += 1;
                            }
                            _ => break,
                        }
                    }
                    let rest = if j == burst.len() {
                        Burst::new() // whole burst is one run: move it as-is
                    } else {
                        burst.split_off(j)
                    };
                    if !self.offer(idx, burst, progressed) {
                        // The run is parked; keep everything after it in order.
                        self.stash.extend(rest);
                        return false;
                    }
                    burst = rest;
                }
                Route::Drop => {
                    // Group consecutive unroutable frames into one drain.
                    let mut j = 1;
                    while j < burst.len() && matches!((self.route)(burst[j].header()), Route::Drop)
                    {
                        j += 1;
                    }
                    let dropped: u64 = burst[..j].iter().map(|f| f.packet_count() as u64).sum();
                    self.unroutable.fetch_add(dropped, Ordering::Relaxed);
                    *progressed = true;
                    burst = if j == burst.len() {
                        Burst::new()
                    } else {
                        burst.split_off(j)
                    };
                }
            }
        }
        true
    }
}

impl Pollable for CkMachine {
    fn poll(&mut self) -> Step {
        let mut progressed = false;
        if !self.drain(&mut progressed) {
            return if progressed {
                Step::Progress
            } else {
                Step::Idle
            };
        }
        let n = self.inputs.len();
        let mut polled = 0usize;
        'rotate: while polled < n {
            polled += 1;
            let at = self.current;
            self.current = (self.current + 1) % n;
            if self.dead[at] {
                continue;
            }
            let mut streak = 0u32;
            while streak < self.persistence {
                match self.inputs[at].try_recv() {
                    LinkRecv::Burst(burst) => {
                        streak += 1;
                        progressed = true;
                        if self.stash.is_empty() && self.parked.is_none() {
                            if !self.forward_runs(burst, &mut progressed) {
                                break 'rotate;
                            }
                        } else {
                            self.stash.extend(burst);
                            if !self.drain(&mut progressed) {
                                break 'rotate;
                            }
                        }
                    }
                    LinkRecv::Empty => break,
                    LinkRecv::Closed => {
                        self.dead[at] = true;
                        break;
                    }
                }
            }
        }
        if self.dead.iter().all(|&d| d) && self.stash.is_empty() && self.parked.is_none() {
            return Step::Done;
        }
        if progressed {
            Step::Progress
        } else {
            Step::Idle
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::executor::ShardedExecutor;
    use crate::transport::link::{fifo_rx, fifo_tx};
    use crossbeam::channel::{bounded, Receiver};
    use smi_wire::{NetworkPacket, PacketOp, PacketRun};
    use std::sync::atomic::AtomicBool;

    fn pkt(dst: u8) -> Frame {
        NetworkPacket::new(0, dst, 0, PacketOp::Send).into()
    }

    fn counters() -> (Arc<AtomicU64>, Arc<AtomicU64>) {
        (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)))
    }

    #[test]
    fn forwards_by_route_and_finishes_on_disconnect() {
        let (in_tx, in_rx) = bounded::<Burst>(16);
        let (out0_tx, out0_rx) = bounded::<Burst>(16);
        let (out1_tx, out1_rx) = bounded::<Burst>(16);
        let (fwd, unr) = counters();
        let m = CkMachine::new(
            "t".into(),
            vec![fifo_rx(in_rx)],
            vec![fifo_tx(out0_tx), fifo_tx(out1_tx)],
            Box::new(|h| Route::Output((h.dst % 2) as usize)),
            8,
            4,
            fwd.clone(),
            unr,
        );
        // Mixed-route burst: must be split per output.
        in_tx.send((0..10u8).map(pkt).collect()).unwrap();
        drop(in_tx); // machine drains then finishes
        let stop = Arc::new(AtomicBool::new(false));
        let ex = ShardedExecutor::spawn(vec![Box::new(m)], 1, stop);
        ex.join();
        let count = |rx: Receiver<Burst>| rx.try_iter().map(|b| b.len()).sum::<usize>();
        assert_eq!(count(out0_rx), 5);
        assert_eq!(count(out1_rx), 5);
        assert_eq!(fwd.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn uniform_burst_forwarded_whole() {
        let (in_tx, in_rx) = bounded::<Burst>(4);
        let (out_tx, out_rx) = bounded::<Burst>(4);
        let (fwd, unr) = counters();
        let m = CkMachine::new(
            "t".into(),
            vec![fifo_rx(in_rx)],
            vec![fifo_tx(out_tx)],
            Box::new(|_| Route::Output(0)),
            8,
            64,
            fwd,
            unr,
        );
        in_tx.send(vec![pkt(0); 7]).unwrap();
        drop(in_tx);
        let stop = Arc::new(AtomicBool::new(false));
        ShardedExecutor::spawn(vec![Box::new(m)], 1, stop).join();
        // The 7-packet burst arrives as a single burst (fast path).
        let bursts: Vec<Burst> = out_rx.try_iter().collect();
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].len(), 7);
    }

    #[test]
    fn run_frame_routed_once_and_counted_in_packets() {
        // A 57-element char run spans 3 packets but moves as one frame:
        // forwards counts the packet span, the output sees one frame.
        let (in_tx, in_rx) = bounded::<Burst>(4);
        let (out_tx, out_rx) = bounded::<Burst>(4);
        let (fwd, unr) = counters();
        let m = CkMachine::new(
            "t".into(),
            vec![fifo_rx(in_rx)],
            vec![fifo_tx(out_tx)],
            Box::new(|h| Route::Output(h.dst as usize)),
            8,
            16,
            fwd.clone(),
            unr,
        );
        let run = PacketRun::from_elems(0, 0, 0, PacketOp::Send, &[7u8; 57]);
        in_tx.send(vec![Frame::Run(run)]).unwrap();
        drop(in_tx);
        let stop = Arc::new(AtomicBool::new(false));
        ShardedExecutor::spawn(vec![Box::new(m)], 1, stop).join();
        let bursts: Vec<Burst> = out_rx.try_iter().collect();
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].len(), 1);
        assert_eq!(fwd.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn fanout_burst_splits_into_per_run_bursts() {
        // The tree-collective staging pattern: one burst holding a window
        // copied per child, grouped per destination (AAAA BBBB CC). The
        // machine must carve it into one whole burst per run — no
        // per-packet splits, no restaging through the stash.
        let (in_tx, in_rx) = bounded::<Burst>(4);
        let outs: Vec<_> = (0..3).map(|_| bounded::<Burst>(8)).collect();
        let (fwd, unr) = counters();
        let m = CkMachine::new(
            "t".into(),
            vec![fifo_rx(in_rx)],
            outs.iter().map(|(tx, _)| fifo_tx(tx.clone())).collect(),
            Box::new(|h| Route::Output(h.dst as usize)),
            8,
            16,
            fwd.clone(),
            unr,
        );
        let mut burst: Burst = Vec::new();
        for (dst, copies) in [(0u8, 4), (1, 4), (2, 2)] {
            burst.extend(std::iter::repeat_n(pkt(dst), copies));
        }
        in_tx.send(burst).unwrap();
        drop(in_tx);
        let stop = Arc::new(AtomicBool::new(false));
        ShardedExecutor::spawn(vec![Box::new(m)], 1, stop).join();
        let sizes: Vec<Vec<usize>> = outs
            .iter()
            .map(|(_, rx)| rx.try_iter().map(|b| b.len()).collect())
            .collect();
        assert_eq!(sizes, vec![vec![4], vec![4], vec![2]]);
        assert_eq!(fwd.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn unroutable_counted_and_dropped() {
        let (in_tx, in_rx) = bounded::<Burst>(4);
        let (out_tx, out_rx) = bounded::<Burst>(4);
        let (fwd, unr) = counters();
        let m = CkMachine::new(
            "t".into(),
            vec![fifo_rx(in_rx)],
            vec![fifo_tx(out_tx)],
            Box::new(|h| {
                if h.dst == 0 {
                    Route::Output(0)
                } else {
                    Route::Drop
                }
            }),
            1,
            8,
            fwd,
            unr.clone(),
        );
        in_tx.send(vec![pkt(0), pkt(3), pkt(0)]).unwrap();
        drop(in_tx);
        let stop = Arc::new(AtomicBool::new(false));
        ShardedExecutor::spawn(vec![Box::new(m)], 1, stop).join();
        let delivered: usize = out_rx.try_iter().map(|b| b.len()).sum();
        assert_eq!(delivered, 2);
        assert_eq!(unr.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stalled_machine_reports_idle_and_releases_on_stop() {
        // Output capacity 1, no consumer: the machine parks the burst and
        // reports Idle; the stop flag releases the executor.
        let (in_tx, in_rx) = bounded::<Burst>(8);
        let (out_tx, _out_rx) = bounded::<Burst>(1);
        let (fwd, unr) = counters();
        let m = CkMachine::new(
            "t".into(),
            vec![fifo_rx(in_rx)],
            vec![fifo_tx(out_tx)],
            Box::new(|_| Route::Output(0)),
            1,
            1,
            fwd,
            unr,
        );
        in_tx.send(vec![pkt(0)]).unwrap();
        in_tx.send(vec![pkt(0)]).unwrap();
        in_tx.send(vec![pkt(0)]).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let ex = ShardedExecutor::spawn(vec![Box::new(m)], 1, stop.clone());
        std::thread::sleep(std::time::Duration::from_millis(20));
        stop.store(true, Ordering::SeqCst);
        ex.join(); // must terminate
    }

    #[test]
    fn order_within_input_preserved_under_backpressure() {
        let (in_tx, in_rx) = bounded::<Burst>(64);
        let (out_tx, out_rx) = bounded::<Burst>(1);
        let (fwd, unr) = counters();
        let m = CkMachine::new(
            "t".into(),
            vec![fifo_rx(in_rx)],
            vec![fifo_tx(out_tx)],
            Box::new(|_| Route::Output(0)),
            4,
            2,
            fwd,
            unr,
        );
        for i in 0..50u8 {
            in_tx.send(vec![pkt(i)]).unwrap();
        }
        drop(in_tx);
        let stop = Arc::new(AtomicBool::new(false));
        let ex = ShardedExecutor::spawn(vec![Box::new(m)], 1, stop);
        // Slowly drain the capacity-1 output while the machine runs.
        let mut seen = Vec::new();
        while seen.len() < 50 {
            for b in out_rx.try_iter() {
                seen.extend(b.into_iter().map(|f| f.header().dst));
            }
            std::thread::yield_now();
        }
        ex.join();
        assert_eq!(seen, (0..50u8).collect::<Vec<_>>());
    }
}
