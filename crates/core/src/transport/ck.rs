//! The polling forwarder: the §4.3 CKS/CKR loop as a thread.
//!
//! Like the hardware kernels, a forwarder owns a set of input FIFOs, a
//! routing function, and a set of output FIFOs; it polls inputs round-robin,
//! reading up to `R` packets from one input while data is available, and
//! forwards with backpressure (a full output FIFO stalls the head packet —
//! order within an input is never reordered).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender, TryRecvError, TrySendError};
use smi_wire::NetworkPacket;

/// Routing verdict for one packet.
pub(crate) enum Route {
    /// Forward into output `i` of the forwarder's output list.
    Output(usize),
    /// No route — count as unroutable and drop (always a wiring bug).
    Drop,
}

/// A CKS or CKR kernel body.
pub(crate) struct PollingForwarder {
    /// Diagnostic name (also used as the thread name at spawn).
    #[allow(dead_code)]
    pub name: String,
    pub inputs: Vec<Receiver<NetworkPacket>>,
    pub outputs: Vec<Sender<NetworkPacket>>,
    /// Packet → output index.
    pub route: Box<dyn Fn(&NetworkPacket) -> Route + Send>,
    /// Polling persistence `R`.
    pub persistence: u32,
    /// Global end-of-run flag, set once every application thread returned.
    pub stop: Arc<AtomicBool>,
    /// Incremented per forwarded packet.
    pub forwards: Arc<std::sync::atomic::AtomicU64>,
    /// Incremented per dropped packet.
    pub unroutable: Arc<std::sync::atomic::AtomicU64>,
}

impl PollingForwarder {
    /// Run the forwarding loop until shutdown. Intended for a dedicated
    /// thread.
    pub fn run(mut self) {
        let n = self.inputs.len();
        if n == 0 {
            return;
        }
        let mut dead = vec![false; n];
        let mut current = 0usize;
        let mut streak = 0u32;
        let mut idle_rotations = 0u32;
        // Inputs polled without moving a packet; a full fruitless rotation
        // triggers the stop check and progressive backoff. (Counting polls —
        // rather than testing `current == 0` — keeps the shutdown check
        // reachable even when input 0 is disconnected.)
        let mut fruitless_polls = 0usize;
        loop {
            if dead.iter().all(|&d| d) {
                return; // every producer hung up
            }
            if fruitless_polls >= n {
                fruitless_polls = 0;
                idle_rotations += 1;
                if self.stop.load(Ordering::Relaxed) {
                    return;
                }
                // Back off progressively: spin, then yield, then nap.
                if idle_rotations < 64 {
                    std::hint::spin_loop();
                } else if idle_rotations < 256 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
            if dead[current] {
                current = (current + 1) % n;
                streak = 0;
                fruitless_polls += 1;
                continue;
            }
            match self.inputs[current].try_recv() {
                Ok(pkt) => {
                    idle_rotations = 0;
                    fruitless_polls = 0;
                    if !self.forward(pkt) {
                        return; // stop requested while stalled
                    }
                    streak += 1;
                    if streak >= self.persistence {
                        streak = 0;
                        current = (current + 1) % n;
                    }
                }
                Err(TryRecvError::Empty) => {
                    streak = 0;
                    current = (current + 1) % n;
                    fruitless_polls += 1;
                }
                Err(TryRecvError::Disconnected) => {
                    dead[current] = true;
                    streak = 0;
                    current = (current + 1) % n;
                    fruitless_polls += 1;
                }
            }
        }
    }

    /// Forward with backpressure; returns false if shutdown interrupted a
    /// stalled push.
    fn forward(&mut self, pkt: NetworkPacket) -> bool {
        let idx = match (self.route)(&pkt) {
            Route::Output(i) => i,
            Route::Drop => {
                self.unroutable.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        };
        let mut pkt = pkt;
        loop {
            match self.outputs[idx].try_send(pkt) {
                Ok(()) => {
                    self.forwards.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(TrySendError::Full(p)) => {
                    pkt = p;
                    if self.stop.load(Ordering::Relaxed) {
                        return false;
                    }
                    std::thread::yield_now();
                }
                Err(TrySendError::Disconnected(_)) => {
                    // Receiver gone: only legal during shutdown; treat the
                    // packet as drained.
                    return !self.stop.load(Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;
    use smi_wire::PacketOp;
    use std::sync::atomic::AtomicU64;

    fn pkt(dst: u8) -> NetworkPacket {
        NetworkPacket::new(0, dst, 0, PacketOp::Send)
    }

    #[test]
    fn forwards_by_route_and_exits_on_disconnect() {
        let (in_tx, in_rx) = bounded(16);
        let (out0_tx, out0_rx) = bounded::<NetworkPacket>(16);
        let (out1_tx, out1_rx) = bounded::<NetworkPacket>(16);
        let stop = Arc::new(AtomicBool::new(false));
        let fwd = PollingForwarder {
            name: "t".into(),
            inputs: vec![in_rx],
            outputs: vec![out0_tx, out1_tx],
            route: Box::new(|p| Route::Output((p.header.dst % 2) as usize)),
            persistence: 8,
            stop: stop.clone(),
            forwards: Arc::new(AtomicU64::new(0)),
            unroutable: Arc::new(AtomicU64::new(0)),
        };
        let h = std::thread::spawn(move || fwd.run());
        for d in 0..10u8 {
            in_tx.send(pkt(d)).unwrap();
        }
        drop(in_tx); // forwarder drains then exits
        h.join().unwrap();
        assert_eq!(out0_rx.len(), 5);
        assert_eq!(out1_rx.len(), 5);
    }

    #[test]
    fn unroutable_counted_and_dropped() {
        let (in_tx, in_rx) = bounded(4);
        let (out_tx, out_rx) = bounded::<NetworkPacket>(4);
        let unroutable = Arc::new(AtomicU64::new(0));
        let fwd = PollingForwarder {
            name: "t".into(),
            inputs: vec![in_rx],
            outputs: vec![out_tx],
            route: Box::new(|p| {
                if p.header.dst == 0 {
                    Route::Output(0)
                } else {
                    Route::Drop
                }
            }),
            persistence: 1,
            stop: Arc::new(AtomicBool::new(false)),
            forwards: Arc::new(AtomicU64::new(0)),
            unroutable: unroutable.clone(),
        };
        let h = std::thread::spawn(move || fwd.run());
        in_tx.send(pkt(0)).unwrap();
        in_tx.send(pkt(3)).unwrap();
        in_tx.send(pkt(0)).unwrap();
        drop(in_tx);
        h.join().unwrap();
        assert_eq!(out_rx.len(), 2);
        assert_eq!(unroutable.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stop_flag_releases_stalled_forwarder() {
        // Output capacity 1, no consumer: the forwarder stalls until stop.
        let (in_tx, in_rx) = bounded(8);
        let (out_tx, _out_rx) = bounded::<NetworkPacket>(1);
        let stop = Arc::new(AtomicBool::new(false));
        let fwd = PollingForwarder {
            name: "t".into(),
            inputs: vec![in_rx],
            outputs: vec![out_tx],
            route: Box::new(|_| Route::Output(0)),
            persistence: 1,
            stop: stop.clone(),
            forwards: Arc::new(AtomicU64::new(0)),
            unroutable: Arc::new(AtomicU64::new(0)),
        };
        let h = std::thread::spawn(move || fwd.run());
        in_tx.send(pkt(0)).unwrap();
        in_tx.send(pkt(0)).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        stop.store(true, Ordering::SeqCst);
        h.join().unwrap(); // must terminate
    }
}
