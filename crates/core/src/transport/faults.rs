//! Deterministic fault injection for the socket fabric.
//!
//! A [`FaultPlan`] is a serde-loadable description of link faults — drop,
//! duplicate or delay the N-th frame, sever the connection after the N-th
//! frame, optionally forbidding restore. Plans ride in
//! [`crate::ProcessPlan`] JSON (`"faults"` key) or `smi-launch --fault`
//! specs, so a chaos schedule is reproducible from a file alone.
//!
//! Two consumers:
//!
//! * the **wire level** (the real fault surface): each socket pump holds a
//!   [`FaultInjector`] for its outbound direction and consults it as it
//!   stages replay-ring frames. Frame indices are 1-based emission
//!   ordinals; every action is one-shot, so replayed frames (which consume
//!   fresh ordinals) are not re-faulted and recovery converges. A dropped
//!   or delayed frame leaves a sequence gap at the receiver, which treats
//!   it as a connection fault and heals through the reconnect/replay
//!   handshake — exactly the path chaos tests need to exercise.
//! * the **trait seam**: [`FaultTx`]/[`FaultRx`] wrap any
//!   [`Transport`]/[`TransportReceiver`] and apply burst-level drop /
//!   duplicate / delay, for deterministic unit tests of components above
//!   the link without a socket in sight.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::transport::link::{LinkRecv, LinkSend, LinkTx, Transport, TransportReceiver};
use crate::transport::Burst;

/// Delay one frame: withhold frame `frame` until `by` further frames have
/// been emitted (it then arrives out of order, which the session layer
/// detects as a gap and heals).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelaySpec {
    /// 1-based emission ordinal of the frame to withhold.
    pub frame: u64,
    /// How many subsequent frames to emit before releasing it.
    pub by: u64,
}

/// Sever the connection after the N-th emitted frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeverSpec {
    /// 1-based emission ordinal after which the stream is shut down.
    pub after_frame: u64,
}

fn default_restore() -> bool {
    true
}

/// Faults on one directed process-pair link (`from` process → `to`
/// process). All frame indices are 1-based ordinals of *wire emissions* on
/// that direction, counted across reconnects; each entry fires once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// Sender process index in the plan.
    pub from: usize,
    /// Receiver process index in the plan.
    pub to: usize,
    /// Emission ordinals to drop (receiver sees a gap → reconnect heals).
    #[serde(default)]
    pub drop: Vec<u64>,
    /// Emission ordinals to duplicate (receiver discards the copy).
    #[serde(default)]
    pub duplicate: Vec<u64>,
    /// Frames to delay (reordered past `by` successors).
    #[serde(default)]
    pub delay: Vec<DelaySpec>,
    /// Points at which to sever the connection.
    #[serde(default)]
    pub sever: Vec<SeverSpec>,
    /// Whether the severed connection may be re-established. `false`
    /// simulates a permanent peer loss: both sides exhaust their reconnect
    /// budgets and surface `PeerDisconnected`.
    #[serde(default = "default_restore")]
    pub restore: bool,
}

impl LinkFault {
    /// A no-fault entry for `from → to` (builder-style starting point).
    pub fn clean(from: usize, to: usize) -> LinkFault {
        LinkFault {
            from,
            to,
            drop: Vec::new(),
            duplicate: Vec::new(),
            delay: Vec::new(),
            sever: Vec::new(),
            restore: true,
        }
    }
}

/// A deterministic fault schedule over directed process-pair links.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-link fault entries; links not listed run fault-free.
    #[serde(default)]
    pub links: Vec<LinkFault>,
}

impl FaultPlan {
    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<FaultPlan, String> {
        serde_json::from_str(s).map_err(|e| format!("fault plan: {e}"))
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("fault plan serializes")
    }

    /// Whether any entry exists for the directed link `from → to`.
    pub fn has_link(&self, from: usize, to: usize) -> bool {
        self.links.iter().any(|l| l.from == from && l.to == to)
    }

    /// Build the runtime injector for the directed link `from → to`, if
    /// the plan configures one.
    pub fn injector_for(&self, from: usize, to: usize) -> Option<FaultInjector> {
        let merged: Vec<&LinkFault> = self
            .links
            .iter()
            .filter(|l| l.from == from && l.to == to)
            .collect();
        if merged.is_empty() {
            return None;
        }
        let mut inj = FaultInjector {
            drop: Vec::new(),
            duplicate: Vec::new(),
            delay: Vec::new(),
            sever: Vec::new(),
            restore: merged.iter().all(|l| l.restore),
            emitted: 0,
            held: Vec::new(),
            released: VecDeque::new(),
        };
        for l in merged {
            inj.drop.extend_from_slice(&l.drop);
            inj.duplicate.extend_from_slice(&l.duplicate);
            inj.delay.extend(l.delay.iter().map(|d| (d.frame, d.by)));
            inj.sever.extend(l.sever.iter().map(|s| s.after_frame));
        }
        inj.sever.sort_unstable();
        Some(inj)
    }
}

/// What to do with the frame currently being emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Emit normally.
    Pass,
    /// Swallow it (the replay ring still holds it; recovery re-sends).
    Drop,
    /// Emit it twice back to back.
    Duplicate,
    /// Withhold it until this many further frames have been emitted.
    Delay(u64),
}

/// Runtime state of one directed link's fault schedule. Each configured
/// fault fires exactly once; the emission counter keeps counting across
/// reconnects, so replayed frames get fresh ordinals and are never
/// re-faulted.
#[derive(Debug)]
pub struct FaultInjector {
    drop: Vec<u64>,
    duplicate: Vec<u64>,
    delay: Vec<(u64, u64)>,
    sever: Vec<u64>,
    restore: bool,
    emitted: u64,
    /// Withheld frame bytes with their release ordinal.
    held: Vec<(u64, Vec<u8>)>,
    released: VecDeque<Vec<u8>>,
}

impl FaultInjector {
    /// Account one frame emission and decide its fate.
    pub fn on_emit(&mut self) -> FaultAction {
        self.emitted += 1;
        let n = self.emitted;
        self.queue_releases();
        if let Some(i) = self.drop.iter().position(|&f| f == n) {
            self.drop.swap_remove(i);
            return FaultAction::Drop;
        }
        if let Some(i) = self.duplicate.iter().position(|&f| f == n) {
            self.duplicate.swap_remove(i);
            return FaultAction::Duplicate;
        }
        if let Some(i) = self.delay.iter().position(|&(f, _)| f == n) {
            let (_, by) = self.delay.swap_remove(i);
            return FaultAction::Delay(by.max(1));
        }
        FaultAction::Pass
    }

    /// Withhold `bytes` until `by` further frames have been emitted.
    pub fn hold(&mut self, bytes: Vec<u8>, by: u64) {
        self.held.push((self.emitted + by, bytes));
    }

    fn queue_releases(&mut self) {
        let n = self.emitted;
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 <= n {
                let (_, bytes) = self.held.swap_remove(i);
                self.released.push_back(bytes);
            } else {
                i += 1;
            }
        }
    }

    /// Withheld frames whose release point has passed, in release order.
    pub fn take_released(&mut self) -> Vec<Vec<u8>> {
        self.released.drain(..).collect()
    }

    /// A sever due at or before the current emission count, if any
    /// (consumed: fires once).
    pub fn sever_due(&mut self) -> Option<u64> {
        match self.sever.first() {
            Some(&at) if at <= self.emitted => {
                self.sever.remove(0);
                Some(at)
            }
            _ => None,
        }
    }

    /// Whether a severed connection may be re-established.
    pub fn allow_restore(&self) -> bool {
        self.restore
    }

    /// Forget withheld frames (called on a connection fault: the frames
    /// live on in the replay ring and will be re-staged after resume).
    pub fn clear_held(&mut self) {
        self.held.clear();
        self.released.clear();
    }

    /// Frames emitted so far (test/diagnostic hook).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

// ---------------------------------------------------------------------------
// Trait-seam wrappers
// ---------------------------------------------------------------------------

/// A [`Transport`] wrapper applying burst-level faults above the link: the
/// N-th *accepted* burst can be dropped, duplicated or delayed. Unlike the
/// wire-level injector these faults are **not** healed by the session
/// layer (they act above it) — use them to unit-test how components react
/// to lost or reordered bursts, not for end-to-end chaos runs.
#[allow(dead_code)] // test-harness seam; constructed by unit tests only
pub(crate) struct FaultTx {
    inner: LinkTx,
    drop: Vec<u64>,
    duplicate: Vec<u64>,
    delay: Vec<(u64, u64)>,
    accepted: u64,
    held: Vec<(u64, Burst)>,
}

#[allow(dead_code)] // test-harness seam; constructed by unit tests only
impl FaultTx {
    /// Wrap `inner` with the burst-level faults of `fault` (its wire-level
    /// `sever`/`restore` fields are ignored at this seam).
    pub fn new(inner: LinkTx, fault: &LinkFault) -> FaultTx {
        FaultTx {
            inner,
            drop: fault.drop.clone(),
            duplicate: fault.duplicate.clone(),
            delay: fault.delay.iter().map(|d| (d.frame, d.by)).collect(),
            accepted: 0,
            held: Vec::new(),
        }
    }

    fn flush_due(&mut self) {
        let n = self.accepted;
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 <= n {
                let (_, burst) = self.held.swap_remove(i);
                // Best effort: a Full downstream re-holds for next offer.
                if let LinkSend::Full(b) = self.inner.offer(burst) {
                    self.held.push((n, b));
                    return;
                }
            } else {
                i += 1;
            }
        }
    }
}

impl Transport for FaultTx {
    fn offer(&mut self, burst: Burst) -> LinkSend {
        self.flush_due();
        let n = self.accepted + 1;
        if let Some(i) = self.drop.iter().position(|&f| f == n) {
            self.drop.swap_remove(i);
            self.accepted = n;
            return LinkSend::Accepted; // swallowed
        }
        if let Some(i) = self.delay.iter().position(|&(f, _)| f == n) {
            let (_, by) = self.delay.swap_remove(i);
            self.accepted = n;
            self.held.push((n + by.max(1), burst));
            return LinkSend::Accepted; // withheld
        }
        let dup_idx = self.duplicate.iter().position(|&f| f == n);
        let dup = dup_idx.map(|_| burst.clone());
        match self.inner.offer(burst) {
            LinkSend::Accepted => {
                self.accepted = n;
                if let (Some(i), Some(d)) = (dup_idx, dup) {
                    self.duplicate.swap_remove(i);
                    let _ = self.inner.offer(d);
                }
                LinkSend::Accepted
            }
            other => other,
        }
    }
}

/// A [`TransportReceiver`] wrapper applying burst-level faults below the
/// consumer: the N-th received burst can be dropped, duplicated or delayed
/// before the consumer sees it.
#[allow(dead_code)] // test-harness seam; constructed by unit tests only
pub(crate) struct FaultRx {
    inner: Box<dyn TransportReceiver>,
    drop: Vec<u64>,
    duplicate: Vec<u64>,
    delay: Vec<(u64, u64)>,
    received: u64,
    held: Vec<(u64, Burst)>,
    pending: VecDeque<Burst>,
}

#[allow(dead_code)] // test-harness seam; constructed by unit tests only
impl FaultRx {
    /// Wrap `inner` with the burst-level faults of `fault`.
    pub fn new(inner: Box<dyn TransportReceiver>, fault: &LinkFault) -> FaultRx {
        FaultRx {
            inner,
            drop: fault.drop.clone(),
            duplicate: fault.duplicate.clone(),
            delay: fault.delay.iter().map(|d| (d.frame, d.by)).collect(),
            received: 0,
            held: Vec::new(),
            pending: VecDeque::new(),
        }
    }

    fn release_due(&mut self) {
        let n = self.received;
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 <= n {
                let (_, burst) = self.held.swap_remove(i);
                self.pending.push_back(burst);
            } else {
                i += 1;
            }
        }
    }
}

impl TransportReceiver for FaultRx {
    fn try_recv(&mut self) -> LinkRecv {
        if let Some(b) = self.pending.pop_front() {
            return LinkRecv::Burst(b);
        }
        loop {
            match self.inner.try_recv() {
                LinkRecv::Burst(b) => {
                    let n = self.received + 1;
                    self.received = n;
                    self.release_due();
                    if let Some(i) = self.drop.iter().position(|&f| f == n) {
                        self.drop.swap_remove(i);
                        continue; // swallowed; look at the next burst
                    }
                    if let Some(i) = self.delay.iter().position(|&(f, _)| f == n) {
                        let (_, by) = self.delay.swap_remove(i);
                        self.held.push((n + by.max(1), b));
                        continue;
                    }
                    if let Some(i) = self.duplicate.iter().position(|&f| f == n) {
                        self.duplicate.swap_remove(i);
                        self.pending.push_back(b.clone());
                    }
                    return LinkRecv::Burst(b);
                }
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::link::{fifo_rx, fifo_tx};
    use smi_wire::{NetworkPacket, PacketOp};

    fn pkt(tag: u8) -> smi_wire::Frame {
        let mut p = NetworkPacket::new(0, 1, 0, PacketOp::Send);
        p.payload[0] = tag;
        p.header.count = 1;
        p.into()
    }

    fn tag(f: &smi_wire::Frame) -> u8 {
        match f {
            smi_wire::Frame::Pkt(p) => p.payload[0],
            smi_wire::Frame::Run(_) => panic!("fault tests use inline packets"),
        }
    }

    fn fifo() -> (LinkTx, Box<dyn TransportReceiver>) {
        let (tx, rx) = crossbeam::channel::bounded::<Burst>(64);
        (fifo_tx(tx), fifo_rx(rx))
    }

    #[test]
    fn plan_json_roundtrip_with_defaults() {
        let plan = FaultPlan {
            links: vec![
                LinkFault {
                    from: 0,
                    to: 1,
                    drop: vec![3],
                    duplicate: vec![5],
                    delay: vec![DelaySpec { frame: 7, by: 2 }],
                    sever: vec![SeverSpec { after_frame: 10 }],
                    restore: false,
                },
                LinkFault::clean(1, 0),
            ],
        };
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
        // Omitted fields deserialize to their defaults.
        let sparse = FaultPlan::from_json(r#"{"links":[{"from":2,"to":0,"drop":[1]}]}"#).unwrap();
        assert_eq!(sparse.links[0].drop, vec![1]);
        assert!(sparse.links[0].duplicate.is_empty());
        assert!(sparse.links[0].sever.is_empty());
        assert!(sparse.links[0].restore, "restore defaults to true");
        let empty = FaultPlan::from_json("{}").unwrap();
        assert!(empty.links.is_empty());
    }

    #[test]
    fn injector_actions_fire_once_in_order() {
        let plan = FaultPlan {
            links: vec![LinkFault {
                from: 0,
                to: 1,
                drop: vec![2],
                duplicate: vec![3],
                delay: vec![DelaySpec { frame: 4, by: 1 }],
                sever: vec![SeverSpec { after_frame: 6 }],
                restore: true,
            }],
        };
        assert!(plan.injector_for(1, 0).is_none());
        let mut inj = plan.injector_for(0, 1).expect("configured link");
        assert_eq!(inj.on_emit(), FaultAction::Pass); // 1
        assert_eq!(inj.on_emit(), FaultAction::Drop); // 2
        assert_eq!(inj.on_emit(), FaultAction::Duplicate); // 3
        assert_eq!(inj.on_emit(), FaultAction::Delay(1)); // 4
        inj.hold(vec![0xAB], 1);
        assert!(inj.take_released().is_empty(), "not due yet");
        assert_eq!(inj.on_emit(), FaultAction::Pass); // 5 → release point
        assert_eq!(inj.take_released(), vec![vec![0xAB]]);
        assert!(inj.sever_due().is_none());
        assert_eq!(inj.on_emit(), FaultAction::Pass); // 6
        assert_eq!(inj.sever_due(), Some(6));
        assert!(inj.sever_due().is_none(), "sever fires once");
        // Ordinals past the schedule pass untouched (one-shot semantics).
        for _ in 0..10 {
            assert_eq!(inj.on_emit(), FaultAction::Pass);
        }
        assert!(inj.allow_restore());
    }

    #[test]
    fn restore_false_wins_across_merged_entries() {
        let plan = FaultPlan {
            links: vec![
                LinkFault {
                    restore: false,
                    sever: vec![SeverSpec { after_frame: 1 }],
                    ..LinkFault::clean(0, 1)
                },
                LinkFault::clean(0, 1),
            ],
        };
        let inj = plan.injector_for(0, 1).unwrap();
        assert!(!inj.allow_restore());
    }

    #[test]
    fn fault_tx_drop_dup_delay_at_the_seam() {
        let (tx, mut rx) = fifo();
        let fault = LinkFault {
            drop: vec![2],
            duplicate: vec![4],
            delay: vec![DelaySpec { frame: 1, by: 2 }],
            ..LinkFault::clean(0, 1)
        };
        let mut ftx = FaultTx::new(tx, &fault);
        for i in 1..=5u8 {
            assert!(matches!(ftx.offer(vec![pkt(i)]), LinkSend::Accepted));
        }
        let mut tags = Vec::new();
        while let LinkRecv::Burst(b) = rx.try_recv() {
            tags.extend(b.iter().map(tag));
        }
        // Burst 1 delayed past 3 (arrives when burst 4 is offered), burst 2
        // dropped, burst 4 duplicated.
        assert_eq!(tags, vec![3, 1, 4, 4, 5]);
    }

    #[test]
    fn fault_rx_drop_dup_delay_at_the_seam() {
        let (mut tx, rx) = fifo();
        for i in 1..=5u8 {
            assert!(matches!(tx.offer(vec![pkt(i)]), LinkSend::Accepted));
        }
        let fault = LinkFault {
            drop: vec![1],
            duplicate: vec![3],
            delay: vec![DelaySpec { frame: 2, by: 1 }],
            ..LinkFault::clean(0, 1)
        };
        let mut frx = FaultRx::new(rx, &fault);
        let mut tags = Vec::new();
        while let LinkRecv::Burst(b) = frx.try_recv() {
            tags.extend(b.iter().map(tag));
        }
        // 1 dropped, 2 delayed until after 3, 3 duplicated.
        assert_eq!(tags, vec![3, 2, 3, 4, 5]);
    }
}
