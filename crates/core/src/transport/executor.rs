//! The work-stealing executor: a fixed pool of worker threads cooperatively
//! driving many poll-mode state machines.
//!
//! The previous runtime dedicated one OS thread to every CKS/CKR kernel
//! (4 per rank on a 4-QSFP cluster) plus one per rank program — hundreds of
//! threads at 64+ ranks. Its successor statically sharded the cluster's
//! machines over `workers` threads, which made load imbalance invisible at
//! one worker and pathological at many: a worker that happened to own the
//! hot machines swept its whole shard (mostly idle machines) per hot poll
//! while its siblings spun over nothing.
//!
//! This module replaces the static shards with per-worker *run queues* plus
//! work stealing:
//!
//! * **Run queues** — every worker owns a deque of machines and drains it
//!   in small batches (one lock per [`ExecutorConfig::batch`] machines, so
//!   thieves interleave without a lock per poll).
//! * **Stealing** — a worker whose queue is empty picks a victim at random
//!   (rotating through all workers) and steals half the victim's queue, so
//!   busy state machines migrate to idle execution resources.
//! * **Cold set** — a machine that reports [`Step::Idle`]
//!   [`ExecutorConfig::cold_after`] times in a row is parked in a shared
//!   cold set instead of re-queued, so hot machines are not diluted by
//!   sweeps over quiescent ones. Cold machines are re-offered to any worker
//!   that runs out of work and, at a trickle, to busy workers, so a machine
//!   that wakes up is re-discovered and promoted back to a run queue.
//! * **Parking** — a fully idle worker backs off (spin → yield) and then
//!   parks on a condvar with a progressively doubling timeout
//!   ([`ExecutorConfig::park_min`] → [`ExecutorConfig::park_max`]) instead
//!   of the previous 50 µs sleep loop. Workers that make progress bump a
//!   generation counter and nudge one parked sibling; the timeout is the
//!   backstop for progress generated outside the pool (rank threads of the
//!   blocking plane, socket peers).
//!
//! Per-worker counters (polls, progress, steals, parks) are snapshotted
//! into [`WorkerStats`] and surface in [`crate::RunReport::worker_stats`],
//! so imbalance is observable instead of invisible. This is the software
//! analogue of the paper's spatial multiplexing: many state machines, few
//! physical execution resources — and, like MPI Streams, stream progress is
//! decoupled from any fixed thread placement.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rand::{Rng, SeedableRng};

use crate::params::RuntimeParams;
use crate::transport::socket::FabricHealth;
use crate::SmiError;

/// Outcome of one cooperative `poll` step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// Moved at least one packet / made observable progress.
    Progress,
    /// Nothing to do right now; poll again later.
    Idle,
    /// Permanently finished; the executor drops the machine.
    Done,
}

/// A cooperative state machine the executor can drive. Implementations must
/// never block inside `poll`.
pub(crate) trait Pollable: Send {
    /// Advance as far as possible without blocking.
    fn poll(&mut self) -> Step;
}

/// Outcome of one iteration of a [`block_on_deadline`] poll closure.
pub(crate) enum BlockingStep<T> {
    /// The operation completed with this value.
    Ready(T),
    /// Moved data this iteration; keep polling with a fresh stall deadline.
    Progress,
    /// Nothing to do until the transport accepts or supplies data.
    Pending,
}

/// Drive a non-blocking poll closure on the calling thread until it reports
/// [`BlockingStep::Ready`] — the adapter through which the blocking channel
/// API wrappers spin their poll-mode cores.
///
/// `timeout` bounds the *stall*, not the whole operation (matching the
/// semantics of the previous `recv_timeout`-based blocking paths): every
/// [`BlockingStep::Progress`] resets the stall deadline. The optional
/// `overall` deadline is checked on every iteration *regardless* of
/// progress: a peer trickling one packet per poll can extend the stall
/// bound indefinitely, and the overall deadline converts that case into
/// [`SmiError::DeadlineExceeded`], bounding the call's total elapsed time.
/// The backoff mirrors the executor worker loop — spin briefly, then
/// yield, then nap — so a rank thread spinning here cannot starve the
/// workers that move its packets.
///
/// The optional `health` board makes the stall bound recovery-aware: while
/// a mid-stream socket reconnect is in flight the stall deadline keeps
/// resetting (the op outlives the repair instead of misreporting it as a
/// timeout). Reconnects are budget-bounded, so a failed recovery still
/// surfaces — as the recorded peer death via [`FabricHealth::escalate`].
pub(crate) fn block_on_deadline<T>(
    timeout: Duration,
    overall: Option<Instant>,
    health: Option<&FabricHealth>,
    waiting_for: &'static str,
    mut poll: impl FnMut() -> Result<BlockingStep<T>, SmiError>,
) -> Result<T, SmiError> {
    let mut deadline = Instant::now() + timeout;
    let mut idle = 0u32;
    loop {
        match poll()? {
            BlockingStep::Ready(v) => return Ok(v),
            BlockingStep::Progress => {
                if let Some(d) = overall {
                    if Instant::now() >= d {
                        return Err(SmiError::DeadlineExceeded { waiting_for });
                    }
                }
                deadline = Instant::now() + timeout;
                idle = 0;
            }
            BlockingStep::Pending => {
                let now = Instant::now();
                if let Some(d) = overall {
                    if now >= d {
                        return Err(SmiError::DeadlineExceeded { waiting_for });
                    }
                }
                if now >= deadline {
                    if health.is_some_and(|h| h.any_reconnecting()) {
                        deadline = now + timeout;
                    } else {
                        return Err(SmiError::Timeout { waiting_for });
                    }
                }
                idle += 1;
                if idle < 16 {
                    std::hint::spin_loop();
                } else if idle < 128 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }
}

/// Tuning of the work-stealing pool, derived from
/// [`RuntimeParams`] by [`ExecutorConfig::from_params`].
#[derive(Debug, Clone)]
pub(crate) struct ExecutorConfig {
    /// Enable stealing and the cold set. `false` reproduces the historical
    /// static sharding (machines never leave their initial queue) — kept as
    /// the measurable baseline for `bench_scaling`'s skewed workload.
    pub steal: bool,
    /// Maximum machines drained from a run queue (own or victim's) per lock
    /// acquisition, and polled before the queue lock is released again.
    pub batch: usize,
    /// Consecutive [`Step::Idle`] polls after which a machine is parked in
    /// the shared cold set.
    pub cold_after: u32,
    /// Initial (and minimum) condvar park timeout of a fully idle worker.
    pub park_min: Duration,
    /// Cap of the progressively doubled park timeout.
    pub park_max: Duration,
}

impl ExecutorConfig {
    /// Map the public runtime knobs onto the pool tuning.
    pub fn from_params(p: &RuntimeParams) -> Self {
        ExecutorConfig {
            steal: p.work_stealing,
            batch: p.steal_batch.max(1),
            cold_after: p.cold_idle_threshold.max(1),
            park_min: p.park_timeout_min.max(Duration::from_micros(1)),
            park_max: p.park_timeout_max.max(p.park_timeout_min),
        }
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig::from_params(&RuntimeParams::default())
    }
}

/// Per-worker scheduling counters, snapshotted out of the pool and exposed
/// via [`crate::RunReport::worker_stats`] so load (im)balance is observable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Machine polls issued by this worker.
    pub polls: u64,
    /// Polls that reported progress.
    pub progress: u64,
    /// Machines this worker stole from siblings' run queues.
    pub steals: u64,
    /// Times this worker parked on the idle condvar.
    pub parks: u64,
}

#[derive(Default)]
struct Counters {
    polls: AtomicU64,
    progress: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            polls: self.polls.load(Ordering::Relaxed),
            progress: self.progress.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
        }
    }
}

/// A machine plus its scheduling state (how long it has been idle).
struct Machine {
    inner: Box<dyn Pollable>,
    idle_streak: u32,
}

/// State shared by all workers of one pool.
struct Pool {
    /// Per-worker run queues. A worker pops batches from the front of its
    /// own queue and re-queues survivors at the back; thieves split off the
    /// back half of a victim's queue.
    queues: Vec<Mutex<VecDeque<Machine>>>,
    /// Machines idle long enough to be evicted from the run queues; re-
    /// offered to idle workers and, at a trickle, to busy ones.
    cold: Mutex<VecDeque<Machine>>,
    /// Machines not yet [`Step::Done`]; workers exit when it reaches zero.
    live: AtomicUsize,
    /// Progress generation: bumped on every sweep that made progress. A
    /// parking worker snapshots it at sweep start and aborts the park when
    /// it moved — the waker bumps it *before* taking `park_lock`, so the
    /// re-check under the lock can never miss a wake.
    epoch: AtomicU64,
    /// Workers currently waiting on `park_cv` (incremented under
    /// `park_lock`). Wakers skip the lock entirely while it is zero.
    parked: AtomicUsize,
    park_lock: Mutex<()>,
    park_cv: Condvar,
    stop: Arc<AtomicBool>,
    counters: Vec<Counters>,
    cfg: ExecutorConfig,
}

impl Pool {
    fn wake_all(&self) {
        if self.parked.load(Ordering::SeqCst) > 0 {
            let _g = self.park_lock.lock();
            self.park_cv.notify_all();
        }
    }

    fn wake_one(&self) {
        if self.parked.load(Ordering::SeqCst) > 0 {
            let _g = self.park_lock.lock();
            self.park_cv.notify_one();
        }
    }
}

/// Handle to the worker pool; joined at shutdown.
pub(crate) struct ShardedExecutor {
    threads: Vec<JoinHandle<()>>,
    pool: Arc<Pool>,
}

impl ShardedExecutor {
    /// [`ShardedExecutor::spawn_with`] under the default tuning.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn spawn(items: Vec<Box<dyn Pollable>>, workers: usize, stop: Arc<AtomicBool>) -> Self {
        Self::spawn_with(items, workers, stop, ExecutorConfig::default())
    }

    /// Seed `items` round-robin over `workers` run queues and start the
    /// workers.
    ///
    /// Workers run until every machine is `Done` or `stop` is raised (end
    /// of run / panic teardown). The round-robin seeding matches the old
    /// static placement, so a no-steal pool is bit-compatible with the
    /// historical sharding.
    pub fn spawn_with(
        items: Vec<Box<dyn Pollable>>,
        workers: usize,
        stop: Arc<AtomicBool>,
        cfg: ExecutorConfig,
    ) -> Self {
        let workers = workers.max(1).min(items.len().max(1));
        let live = items.len();
        let mut queues: Vec<VecDeque<Machine>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, inner) in items.into_iter().enumerate() {
            queues[i % workers].push_back(Machine {
                inner,
                idle_streak: 0,
            });
        }
        let pool = Arc::new(Pool {
            queues: queues.into_iter().map(Mutex::new).collect(),
            cold: Mutex::new(VecDeque::new()),
            live: AtomicUsize::new(live),
            epoch: AtomicU64::new(0),
            parked: AtomicUsize::new(0),
            park_lock: Mutex::new(()),
            park_cv: Condvar::new(),
            stop,
            counters: (0..workers).map(|_| Counters::default()).collect(),
            cfg,
        });
        let threads = (0..workers)
            .map(|w| {
                let pool = pool.clone();
                std::thread::Builder::new()
                    .name(format!("smi-worker-{w}"))
                    .spawn(move || worker_loop(w, &pool))
                    .expect("spawn executor worker")
            })
            .collect();
        ShardedExecutor { threads, pool }
    }

    /// Number of worker threads backing the pool.
    pub fn num_workers(&self) -> usize {
        self.threads.len()
    }

    /// Live snapshot of the per-worker scheduling counters.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.pool.counters.iter().map(Counters::snapshot).collect()
    }

    /// Join every worker (call after raising the stop flag, or once all
    /// machines are expected to finish on their own) and return the final
    /// per-worker counters.
    ///
    /// Parked workers are kicked immediately: the stop flag is re-checked
    /// under the park lock before every wait, so a notify here reaches any
    /// worker that was parked — or about to park — when stop was raised.
    pub fn join(self) -> Vec<WorkerStats> {
        self.pool.wake_all();
        for t in self.threads {
            let _ = t.join();
        }
        self.pool.counters.iter().map(Counters::snapshot).collect()
    }
}

/// How many machine polls may elapse between checks of the stop flag, so
/// teardown latency is bounded by `K · slowest_poll` instead of the full
/// sweep over a worker's queue.
const STOP_CHECK_POLLS: u32 = 32;

/// While busy, pull a couple of cold machines back every this many sweeps so
/// a machine that went cold cannot be starved by a permanently hot queue.
const COLD_REFRESH_SWEEPS: u64 = 8;

fn worker_loop(w: usize, pool: &Pool) {
    let nw = pool.queues.len();
    let me = &pool.counters[w];
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0x9e37_79b9_7f4a_7c15 ^ w as u64);
    let mut idle_rounds = 0u32;
    let mut park_timeout = pool.cfg.park_min;
    let mut sweep = 0u64;
    let mut batch: Vec<Machine> = Vec::with_capacity(pool.cfg.batch);
    let mut keep: Vec<Machine> = Vec::with_capacity(pool.cfg.batch);
    let mut cold_out: Vec<Machine> = Vec::new();

    loop {
        if pool.stop.load(Ordering::Relaxed) {
            return;
        }
        if pool.live.load(Ordering::Acquire) == 0 {
            pool.wake_all();
            return;
        }
        sweep += 1;
        let epoch = pool.epoch.load(Ordering::Acquire);

        // 1. Drain a batch from the local run queue.
        {
            let mut q = pool.queues[w].lock();
            let n = q.len().min(pool.cfg.batch);
            batch.extend(q.drain(..n));
        }

        // 2. Locally out of work: steal half a victim's queue. Victims are
        // visited in rotation from a random start; `try_lock` skips anyone
        // mid-drain rather than convoying behind them.
        if batch.is_empty() && pool.cfg.steal && nw > 1 {
            let start = rng.gen_range(0..nw);
            for i in 0..nw {
                let v = (start + i) % nw;
                if v == w {
                    continue;
                }
                let Some(mut q) = pool.queues[v].try_lock() else {
                    continue;
                };
                let n = q.len().div_ceil(2).min(pool.cfg.batch);
                if n == 0 {
                    continue;
                }
                let at = q.len() - n;
                batch.extend(q.split_off(at));
                me.steals.fetch_add(n as u64, Ordering::Relaxed);
                break;
            }
        }

        // 3. Re-offer cold machines: a full batch when out of work or when
        // the local queue has stopped progressing (its machines may be
        // blocked on evicted peers), a trickle when busy (so waking
        // machines are re-discovered even while every worker stays
        // saturated with hot ones). Re-offered machines get a fresh idle
        // budget — without the reset, one `Idle` poll would bounce them
        // straight back to the cold set before their pipeline peers ever
        // get warmed up alongside them.
        if pool.cfg.steal {
            let want = if batch.is_empty() || idle_rounds >= 2 {
                pool.cfg.batch
            } else if sweep.is_multiple_of(COLD_REFRESH_SWEEPS) {
                2
            } else {
                0
            };
            if want > 0 {
                let mut cold = pool.cold.lock();
                let n = cold.len().min(want);
                batch.extend(cold.drain(..n).map(|mut m| {
                    m.idle_streak = 0;
                    m
                }));
            }
        }

        if batch.is_empty() {
            // Nothing anywhere: back off — spin briefly, then yield, then
            // park on the condvar (timed: external producers like rank
            // threads and socket peers generate no wake hints).
            idle_rounds += 1;
            if idle_rounds < 4 {
                std::hint::spin_loop();
            } else if idle_rounds < 64 {
                std::thread::yield_now();
            } else {
                park(pool, w, epoch, &mut park_timeout);
            }
            continue;
        }

        // 4. Poll the batch, checking the stop flag every
        // `STOP_CHECK_POLLS` polls so teardown cannot wait for a full
        // sweep over a long queue of slow machines.
        let mut progressed = false;
        let mut polls_since_check = 0u32;
        let mut stopping = false;
        for mut m in batch.drain(..) {
            if stopping {
                keep.push(m);
                continue;
            }
            match m.inner.poll() {
                Step::Progress => {
                    m.idle_streak = 0;
                    progressed = true;
                    me.progress.fetch_add(1, Ordering::Relaxed);
                    keep.push(m);
                }
                Step::Idle => {
                    m.idle_streak = m.idle_streak.saturating_add(1);
                    keep.push(m);
                }
                Step::Done => {
                    if pool.live.fetch_sub(1, Ordering::AcqRel) == 1 {
                        pool.wake_all();
                    }
                }
            }
            me.polls.fetch_add(1, Ordering::Relaxed);
            polls_since_check += 1;
            if polls_since_check >= STOP_CHECK_POLLS {
                polls_since_check = 0;
                stopping = pool.stop.load(Ordering::Relaxed);
            }
        }

        // 5. Return survivors: stale machines to the cold set, the rest to
        // the back of the local queue (round-robin fairness). On stop,
        // everything goes straight back — the loop head exits next.
        let cold_cut = if pool.cfg.steal && !stopping {
            pool.cfg.cold_after
        } else {
            u32::MAX
        };
        {
            let mut q = pool.queues[w].lock();
            for m in keep.drain(..) {
                if m.idle_streak >= cold_cut {
                    cold_out.push(m);
                } else {
                    q.push_back(m);
                }
            }
        }
        if !cold_out.is_empty() {
            pool.cold.lock().extend(cold_out.drain(..));
        }

        if progressed {
            idle_rounds = 0;
            park_timeout = pool.cfg.park_min;
            pool.epoch.fetch_add(1, Ordering::Release);
            // Hint one parked sibling: there may now be stealable work or
            // downstream machines made ready by this sweep.
            pool.wake_one();
        } else {
            idle_rounds += 1;
            if idle_rounds < 4 {
                std::hint::spin_loop();
            } else if idle_rounds < 64 {
                std::thread::yield_now();
            } else {
                park(pool, w, epoch, &mut park_timeout);
            }
        }
    }
}

/// Park on the pool condvar until a wake hint or the (progressively
/// doubling) timeout. `epoch` is the generation observed at the start of
/// the caller's fruitless sweep: any progress bumped since then aborts the
/// park, and because wakers bump it before taking `park_lock`, the re-check
/// under the lock closes the lost-wakeup window.
fn park(pool: &Pool, w: usize, epoch: u64, timeout: &mut Duration) {
    let mut g = pool.park_lock.lock();
    if pool.stop.load(Ordering::Relaxed)
        || pool.live.load(Ordering::Acquire) == 0
        || pool.epoch.load(Ordering::Acquire) != epoch
    {
        return;
    }
    pool.parked.fetch_add(1, Ordering::SeqCst);
    pool.counters[w].parks.fetch_add(1, Ordering::Relaxed);
    let _ = pool.park_cv.wait_for(&mut g, *timeout);
    pool.parked.fetch_sub(1, Ordering::SeqCst);
    *timeout = (*timeout * 2).min(pool.cfg.park_max);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct Countdown {
        left: u64,
        hits: Arc<AtomicU64>,
    }

    impl Pollable for Countdown {
        fn poll(&mut self) -> Step {
            if self.left == 0 {
                return Step::Done;
            }
            self.left -= 1;
            self.hits.fetch_add(1, Ordering::Relaxed);
            Step::Progress
        }
    }

    #[test]
    fn drives_all_machines_to_completion() {
        let hits = Arc::new(AtomicU64::new(0));
        let items: Vec<Box<dyn Pollable>> = (0..10)
            .map(|i| {
                Box::new(Countdown {
                    left: i + 1,
                    hits: hits.clone(),
                }) as Box<dyn Pollable>
            })
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let ex = ShardedExecutor::spawn(items, 3, stop);
        assert_eq!(ex.num_workers(), 3);
        ex.join(); // workers exit once every machine is Done
        assert_eq!(hits.load(Ordering::Relaxed), (1..=10).sum::<u64>());
    }

    #[test]
    fn stop_flag_releases_idle_workers() {
        struct Forever;
        impl Pollable for Forever {
            fn poll(&mut self) -> Step {
                Step::Idle
            }
        }
        let stop = Arc::new(AtomicBool::new(false));
        let ex = ShardedExecutor::spawn(vec![Box::new(Forever)], 1, stop.clone());
        std::thread::sleep(Duration::from_millis(10));
        stop.store(true, Ordering::SeqCst);
        ex.join(); // must terminate
    }

    #[test]
    fn block_on_completes_and_times_out() {
        let mut n = 0;
        let got = block_on_deadline(Duration::from_secs(1), None, None, "t", || {
            n += 1;
            Ok(if n == 3 {
                BlockingStep::Ready(42)
            } else {
                BlockingStep::Progress
            })
        })
        .unwrap();
        assert_eq!(got, 42);
        let err = block_on_deadline::<()>(Duration::from_millis(10), None, None, "never", || {
            Ok(BlockingStep::Pending)
        });
        assert!(matches!(err, Err(SmiError::Timeout { .. })));
    }

    #[test]
    fn overall_deadline_bounds_trickling_progress() {
        // A closure reporting Progress forever keeps resetting the stall
        // deadline; only the overall deadline can end it.
        let start = Instant::now();
        let err = block_on_deadline::<()>(
            Duration::from_secs(10),
            Some(start + Duration::from_millis(50)),
            None,
            "trickle",
            || {
                std::thread::sleep(Duration::from_millis(1));
                Ok(BlockingStep::Progress)
            },
        );
        assert!(matches!(err, Err(SmiError::DeadlineExceeded { .. })));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn worker_count_capped_by_item_count() {
        let stop = Arc::new(AtomicBool::new(false));
        let items: Vec<Box<dyn Pollable>> = (0..2)
            .map(|_| {
                Box::new(Countdown {
                    left: 1,
                    hits: Arc::new(AtomicU64::new(0)),
                }) as Box<dyn Pollable>
            })
            .collect();
        let ex = ShardedExecutor::spawn(items, 16, stop);
        assert_eq!(ex.num_workers(), 2);
        ex.join();
    }

    /// One machine with lots of work, seeded onto worker 0's queue next to
    /// nothing else, while worker 1 starts empty: worker 1 must steal it (or
    /// its queue-mates) rather than spin idle forever.
    #[test]
    fn idle_worker_steals_from_busy_victim() {
        let hits = Arc::new(AtomicU64::new(0));
        // 8 machines, all seeded round-robin over 2 workers; the odd-queue
        // machines finish instantly, so worker 1 runs dry and must steal
        // the long-running even-queue machines to share the load.
        let items: Vec<Box<dyn Pollable>> = (0..8)
            .map(|i| {
                Box::new(Countdown {
                    left: if i % 2 == 0 { 200_000 } else { 1 },
                    hits: hits.clone(),
                }) as Box<dyn Pollable>
            })
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let cfg = ExecutorConfig {
            batch: 1,
            ..ExecutorConfig::default()
        };
        let ex = ShardedExecutor::spawn_with(items, 2, stop, cfg);
        let stats = ex.join();
        assert_eq!(hits.load(Ordering::Relaxed), 4 * 200_000 + 4);
        let steals: u64 = stats.iter().map(|s| s.steals).sum();
        assert!(steals > 0, "no machine was ever stolen: {stats:?}");
        let progress: u64 = stats.iter().map(|s| s.progress).sum();
        assert_eq!(progress, 4 * 200_000 + 4);
    }

    /// Teardown latency regression (ISSUE 8 satellite): a large queue of
    /// always-idle machines with slow polls must not delay the stop flag by
    /// a full sweep — the loop checks it every [`STOP_CHECK_POLLS`] polls.
    #[test]
    fn stop_checked_mid_sweep_with_large_idle_shard() {
        struct SlowIdle;
        impl Pollable for SlowIdle {
            fn poll(&mut self) -> Step {
                std::thread::sleep(Duration::from_micros(500));
                Step::Idle
            }
        }
        // One worker, one queue of 1024 machines at 500 µs per poll: a full
        // sweep is ~0.5 s. Disable stealing/cold eviction so the queue
        // stays a single static shard (the historical worst case), and use
        // a large batch so the sweep really is one long poll run.
        let cfg = ExecutorConfig {
            steal: false,
            batch: 1024,
            ..ExecutorConfig::default()
        };
        let items: Vec<Box<dyn Pollable>> = (0..1024)
            .map(|_| Box::new(SlowIdle) as Box<dyn Pollable>)
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let ex = ShardedExecutor::spawn_with(items, 1, stop.clone(), cfg);
        std::thread::sleep(Duration::from_millis(20)); // mid-sweep
        let t = Instant::now();
        stop.store(true, Ordering::SeqCst);
        ex.join();
        let dt = t.elapsed();
        // Bound: STOP_CHECK_POLLS polls at 500 µs each, plus generous CI
        // slack — but far below the ~0.5 s full sweep.
        assert!(
            dt < Duration::from_millis(250),
            "teardown took {dt:?} (full sweep would be ~512 ms)"
        );
    }

    /// A quiescent pool parks on the condvar (observable via the parks
    /// counter) instead of spinning, and still completes promptly when a
    /// machine wakes up.
    #[test]
    fn idle_workers_park_and_resume() {
        struct GateThenCount {
            gate: Arc<AtomicBool>,
            left: u32,
        }
        impl Pollable for GateThenCount {
            fn poll(&mut self) -> Step {
                if !self.gate.load(Ordering::Relaxed) {
                    return Step::Idle;
                }
                if self.left == 0 {
                    return Step::Done;
                }
                self.left -= 1;
                Step::Progress
            }
        }
        let gate = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let cfg = ExecutorConfig {
            park_min: Duration::from_micros(100),
            park_max: Duration::from_millis(2),
            ..ExecutorConfig::default()
        };
        let items: Vec<Box<dyn Pollable>> = (0..4)
            .map(|_| {
                Box::new(GateThenCount {
                    gate: gate.clone(),
                    left: 100,
                }) as Box<dyn Pollable>
            })
            .collect();
        let ex = ShardedExecutor::spawn_with(items, 2, stop, cfg);
        std::thread::sleep(Duration::from_millis(60));
        let parked_stats = ex.worker_stats();
        let parks: u64 = parked_stats.iter().map(|s| s.parks).sum();
        assert!(parks > 0, "idle workers never parked: {parked_stats:?}");
        // While quiescent the workers must not be busy-polling: at 60 ms a
        // 50 µs sleep loop would have issued ~1200 sweeps × 2 machines per
        // worker; parking with a doubling timeout caps polls far below
        // that.
        let polls: u64 = parked_stats.iter().map(|s| s.polls).sum();
        assert!(polls < 2000, "quiescent pool polled {polls} times");
        let t = Instant::now();
        gate.store(true, Ordering::SeqCst);
        ex.join(); // machines drain to Done; workers exit on live == 0
        assert!(
            t.elapsed() < Duration::from_secs(2),
            "resume after wake took {:?}",
            t.elapsed()
        );
    }

    /// Machines that go idle long enough are evicted to the cold set and
    /// re-offered once they would be ready again — the hot machine is never
    /// starved by them, and cold machines still finish.
    #[test]
    fn cold_machines_are_evicted_and_reoffered() {
        struct ColdUntil {
            gate: Arc<AtomicBool>,
            done: Arc<AtomicU64>,
        }
        impl Pollable for ColdUntil {
            fn poll(&mut self) -> Step {
                if self.gate.load(Ordering::Relaxed) {
                    self.done.fetch_add(1, Ordering::Relaxed);
                    Step::Done
                } else {
                    Step::Idle
                }
            }
        }
        let gate = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicU64::new(0));
        let hits = Arc::new(AtomicU64::new(0));
        let mut items: Vec<Box<dyn Pollable>> = (0..32)
            .map(|_| {
                Box::new(ColdUntil {
                    gate: gate.clone(),
                    done: done.clone(),
                }) as Box<dyn Pollable>
            })
            .collect();
        items.push(Box::new(Countdown {
            left: 3_000_000,
            hits: hits.clone(),
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let cfg = ExecutorConfig {
            cold_after: 4,
            ..ExecutorConfig::default()
        };
        let ex = ShardedExecutor::spawn_with(items, 1, stop, cfg);
        // Let the hot machine run while the 32 idle ones go cold; then open
        // the gate — the cold set must be re-offered so they all finish.
        std::thread::sleep(Duration::from_millis(50));
        gate.store(true, Ordering::SeqCst);
        ex.join();
        assert_eq!(done.load(Ordering::Relaxed), 32);
        assert_eq!(hits.load(Ordering::Relaxed), 3_000_000);
    }

    /// Disabling `work_stealing` reproduces the static placement: no
    /// steals, no cold evictions, results identical.
    #[test]
    fn static_mode_never_steals() {
        let hits = Arc::new(AtomicU64::new(0));
        let items: Vec<Box<dyn Pollable>> = (0..16)
            .map(|i| {
                Box::new(Countdown {
                    left: (i as u64 + 1) * 1000,
                    hits: hits.clone(),
                }) as Box<dyn Pollable>
            })
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let cfg = ExecutorConfig {
            steal: false,
            ..ExecutorConfig::default()
        };
        let ex = ShardedExecutor::spawn_with(items, 4, stop, cfg);
        let stats = ex.join();
        assert_eq!(
            hits.load(Ordering::Relaxed),
            (1..=16u64).map(|i| i * 1000).sum::<u64>()
        );
        assert!(stats.iter().all(|s| s.steals == 0), "{stats:?}");
    }
}
