//! The sharded executor: a fixed pool of worker threads cooperatively
//! driving many poll-mode state machines.
//!
//! The previous runtime dedicated one OS thread to every CKS/CKR kernel
//! (4 per rank on a 4-QSFP cluster) plus one per rank program — hundreds of
//! threads at 64+ ranks. Here the whole cluster's machines are statically
//! sharded over `workers` threads (default: the machine's available
//! parallelism); each worker round-robins its shard, backing off
//! progressively when every machine is idle. This is the software analogue
//! of the paper's spatial multiplexing: many state machines, few physical
//! execution resources.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::transport::socket::FabricHealth;
use crate::SmiError;

/// Outcome of one cooperative `poll` step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// Moved at least one packet / made observable progress.
    Progress,
    /// Nothing to do right now; poll again later.
    Idle,
    /// Permanently finished; the executor drops the machine.
    Done,
}

/// A cooperative state machine the executor can drive. Implementations must
/// never block inside `poll`.
pub(crate) trait Pollable: Send {
    /// Advance as far as possible without blocking.
    fn poll(&mut self) -> Step;
}

/// Outcome of one iteration of a [`block_on_deadline`] poll closure.
pub(crate) enum BlockingStep<T> {
    /// The operation completed with this value.
    Ready(T),
    /// Moved data this iteration; keep polling with a fresh stall deadline.
    Progress,
    /// Nothing to do until the transport accepts or supplies data.
    Pending,
}

/// Drive a non-blocking poll closure on the calling thread until it reports
/// [`BlockingStep::Ready`] — the adapter through which the blocking channel
/// API wrappers spin their poll-mode cores.
///
/// `timeout` bounds the *stall*, not the whole operation (matching the
/// semantics of the previous `recv_timeout`-based blocking paths): every
/// [`BlockingStep::Progress`] resets the stall deadline. The optional
/// `overall` deadline is checked on every iteration *regardless* of
/// progress: a peer trickling one packet per poll can extend the stall
/// bound indefinitely, and the overall deadline converts that case into
/// [`SmiError::DeadlineExceeded`], bounding the call's total elapsed time.
/// The backoff mirrors the executor worker loop — spin briefly, then
/// yield, then nap — so a rank thread spinning here cannot starve the
/// workers that move its packets.
///
/// The optional `health` board makes the stall bound recovery-aware: while
/// a mid-stream socket reconnect is in flight the stall deadline keeps
/// resetting (the op outlives the repair instead of misreporting it as a
/// timeout). Reconnects are budget-bounded, so a failed recovery still
/// surfaces — as the recorded peer death via [`FabricHealth::escalate`].
pub(crate) fn block_on_deadline<T>(
    timeout: Duration,
    overall: Option<Instant>,
    health: Option<&FabricHealth>,
    waiting_for: &'static str,
    mut poll: impl FnMut() -> Result<BlockingStep<T>, SmiError>,
) -> Result<T, SmiError> {
    let mut deadline = Instant::now() + timeout;
    let mut idle = 0u32;
    loop {
        match poll()? {
            BlockingStep::Ready(v) => return Ok(v),
            BlockingStep::Progress => {
                if let Some(d) = overall {
                    if Instant::now() >= d {
                        return Err(SmiError::DeadlineExceeded { waiting_for });
                    }
                }
                deadline = Instant::now() + timeout;
                idle = 0;
            }
            BlockingStep::Pending => {
                let now = Instant::now();
                if let Some(d) = overall {
                    if now >= d {
                        return Err(SmiError::DeadlineExceeded { waiting_for });
                    }
                }
                if now >= deadline {
                    if health.is_some_and(|h| h.any_reconnecting()) {
                        deadline = now + timeout;
                    } else {
                        return Err(SmiError::Timeout { waiting_for });
                    }
                }
                idle += 1;
                if idle < 16 {
                    std::hint::spin_loop();
                } else if idle < 128 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }
}

/// Handle to the worker pool; joined at shutdown.
pub(crate) struct ShardedExecutor {
    threads: Vec<JoinHandle<()>>,
}

impl ShardedExecutor {
    /// Distribute `items` round-robin over `workers` threads and start them.
    ///
    /// Workers run until their shard is fully `Done` or `stop` is raised
    /// (end of run / panic teardown).
    pub fn spawn(items: Vec<Box<dyn Pollable>>, workers: usize, stop: Arc<AtomicBool>) -> Self {
        let workers = workers.max(1).min(items.len().max(1));
        let mut shards: Vec<Vec<Box<dyn Pollable>>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            shards[i % workers].push(item);
        }
        let threads = shards
            .into_iter()
            .enumerate()
            .map(|(w, shard)| {
                let stop = stop.clone();
                std::thread::Builder::new()
                    .name(format!("smi-worker-{w}"))
                    .spawn(move || worker_loop(shard, stop))
                    .expect("spawn executor worker")
            })
            .collect();
        ShardedExecutor { threads }
    }

    /// Number of worker threads backing the pool.
    pub fn num_workers(&self) -> usize {
        self.threads.len()
    }

    /// Join every worker (call after raising the stop flag, or once all
    /// machines are expected to finish on their own).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn worker_loop(mut shard: Vec<Box<dyn Pollable>>, stop: Arc<AtomicBool>) {
    let mut idle_rounds = 0u32;
    while !shard.is_empty() {
        let mut progressed = false;
        shard.retain_mut(|m| match m.poll() {
            Step::Progress => {
                progressed = true;
                true
            }
            Step::Idle => true,
            Step::Done => false,
        });
        if stop.load(Ordering::Relaxed) {
            return;
        }
        if progressed {
            idle_rounds = 0;
        } else {
            // Back off progressively: spin briefly, then yield, then nap.
            // One idle round already polled every machine in the shard, so
            // the spin phase is short — on oversubscribed hosts the CPU is
            // better spent running the rank threads that feed us.
            idle_rounds += 1;
            if idle_rounds < 4 {
                std::hint::spin_loop();
            } else if idle_rounds < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct Countdown {
        left: u64,
        hits: Arc<AtomicU64>,
    }

    impl Pollable for Countdown {
        fn poll(&mut self) -> Step {
            if self.left == 0 {
                return Step::Done;
            }
            self.left -= 1;
            self.hits.fetch_add(1, Ordering::Relaxed);
            Step::Progress
        }
    }

    #[test]
    fn drives_all_machines_to_completion() {
        let hits = Arc::new(AtomicU64::new(0));
        let items: Vec<Box<dyn Pollable>> = (0..10)
            .map(|i| {
                Box::new(Countdown {
                    left: i + 1,
                    hits: hits.clone(),
                }) as Box<dyn Pollable>
            })
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let ex = ShardedExecutor::spawn(items, 3, stop);
        assert_eq!(ex.num_workers(), 3);
        ex.join(); // workers exit once every machine is Done
        assert_eq!(hits.load(Ordering::Relaxed), (1..=10).sum::<u64>());
    }

    #[test]
    fn stop_flag_releases_idle_workers() {
        struct Forever;
        impl Pollable for Forever {
            fn poll(&mut self) -> Step {
                Step::Idle
            }
        }
        let stop = Arc::new(AtomicBool::new(false));
        let ex = ShardedExecutor::spawn(vec![Box::new(Forever)], 1, stop.clone());
        std::thread::sleep(Duration::from_millis(10));
        stop.store(true, Ordering::SeqCst);
        ex.join(); // must terminate
    }

    #[test]
    fn block_on_completes_and_times_out() {
        let mut n = 0;
        let got = block_on_deadline(Duration::from_secs(1), None, None, "t", || {
            n += 1;
            Ok(if n == 3 {
                BlockingStep::Ready(42)
            } else {
                BlockingStep::Progress
            })
        })
        .unwrap();
        assert_eq!(got, 42);
        let err = block_on_deadline::<()>(Duration::from_millis(10), None, None, "never", || {
            Ok(BlockingStep::Pending)
        });
        assert!(matches!(err, Err(SmiError::Timeout { .. })));
    }

    #[test]
    fn overall_deadline_bounds_trickling_progress() {
        // A closure reporting Progress forever keeps resetting the stall
        // deadline; only the overall deadline can end it.
        let start = Instant::now();
        let err = block_on_deadline::<()>(
            Duration::from_secs(10),
            Some(start + Duration::from_millis(50)),
            None,
            "trickle",
            || {
                std::thread::sleep(Duration::from_millis(1));
                Ok(BlockingStep::Progress)
            },
        );
        assert!(matches!(err, Err(SmiError::DeadlineExceeded { .. })));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn worker_count_capped_by_item_count() {
        let stop = Arc::new(AtomicBool::new(false));
        let items: Vec<Box<dyn Pollable>> = (0..2)
            .map(|_| {
                Box::new(Countdown {
                    left: 1,
                    hits: Arc::new(AtomicU64::new(0)),
                }) as Box<dyn Pollable>
            })
            .collect();
        let ex = ShardedExecutor::spawn(items, 16, stop);
        assert_eq!(ex.num_workers(), 2);
        ex.join();
    }
}
