//! The socket link backend: framed [`NetworkPacket`] bursts over
//! nonblocking TCP or Unix-domain sockets.
//!
//! One connection is opened per pair of OS processes and multiplexes every
//! topology edge crossing that boundary. The wire format is a stream of
//! frames, each `[src_rank u16 LE][src_qsfp u16 LE][npackets u32 LE]`
//! followed by `npackets` 32-byte packed packets ([`NetworkPacket::pack`]);
//! the `(src_rank, src_qsfp)` tag is the *sender-side* endpoint of the
//! topology edge the burst travels, which is all the receiver needs to demux
//! the frame onto the right CKR input. A hello frame (`src_rank ==`
//! [`HELLO_RANK`], `npackets` = process index, no payload) identifies peers
//! during bootstrap, before the stream switches to nonblocking mode.
//!
//! All socket I/O is performed by a [`SocketPump`] — a [`Pollable`]
//! registered with the same sharded executor that drives the CK machines
//! (the executor's "socket-drain duty cycle"). CK machines themselves only
//! touch lock-guarded byte/burst queues via [`super::link::Transport`]
//! handles, so they never block on a syscall.
//!
//! Peer death (EOF or a hard I/O error) is recorded once on the fabric-wide
//! [`FabricHealth`] board; channel operations and the task watchdog consult
//! it to turn an otherwise-silent stall into
//! [`SmiError::PeerDisconnected`] naming the dead peer.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use smi_wire::{NetworkPacket, PACKET_BYTES};

use crate::error::SmiError;
use crate::transport::executor::{Pollable, Step};
use crate::transport::link::{LinkRecv, LinkRx, LinkSend, LinkTx, Transport, TransportReceiver};
use crate::transport::Burst;

/// Bytes of the per-burst frame header:
/// `[src_rank u16 LE][src_qsfp u16 LE][npackets u32 LE]`.
pub(crate) const FRAME_HEADER_BYTES: usize = 8;

/// `src_rank` sentinel marking a bootstrap hello frame; its `npackets`
/// field carries the sender's process index instead of a packet count.
pub(crate) const HELLO_RANK: u16 = u16::MAX;

/// Cap on the serialized outbound buffer per connection; a link whose
/// buffer is at the cap reports [`LinkSend::Full`] and the CK machine parks
/// the burst (normal transport backpressure).
const WRITE_BUF_CAP: usize = 1 << 20;

/// Cap (in bursts) of each per-link inbound demux queue. A full queue stops
/// the pump from parsing further frames — head-of-line backpressure on the
/// whole connection, resolved as soon as the slow CKR input drains.
const INBOUND_QUEUE_CAP: usize = 1024;

/// Sanity bound on `npackets` in one frame; our own sender never exceeds
/// the burst size, so anything larger is stream corruption.
const MAX_FRAME_PACKETS: usize = 4096;

/// Bytes read from the socket per `read` call inside one poll.
const READ_CHUNK: usize = 16 * 1024;

/// Cap on buffered-but-unparsed inbound bytes before the pump stops
/// reading (keeps a wedged receiver from buffering unboundedly).
const READ_BUF_CAP: usize = 4 << 20;

// ---------------------------------------------------------------------------
// Fabric health
// ---------------------------------------------------------------------------

/// What is known about a dead peer process, for diagnostics.
#[derive(Debug, Clone)]
pub(crate) struct PeerDown {
    /// Lowest world rank hosted by the dead process (what
    /// [`SmiError::PeerDisconnected`] reports).
    pub rank: usize,
    /// Index of the dead process in the process plan.
    pub process: usize,
    /// Backend name (`"tcp"` / `"uds"`).
    pub backend: &'static str,
    /// Peer address as resolved at connect time.
    pub addr: String,
    /// What the pump observed (EOF, truncated frame, I/O error...).
    pub detail: String,
}

/// Identity of the peer process behind one connection; the template a
/// [`SocketPump`] turns into a [`PeerDown`] when the link dies.
#[derive(Debug, Clone)]
pub(crate) struct PeerInfo {
    /// Lowest world rank hosted by the peer process.
    pub rank: usize,
    /// Peer process index in the process plan.
    pub process: usize,
    /// Backend name (`"tcp"` / `"uds"`).
    pub backend: &'static str,
    /// Peer address as resolved at connect time.
    pub addr: String,
}

#[derive(Debug, Default)]
struct HealthInner {
    down: AtomicBool,
    first: Mutex<Option<PeerDown>>,
}

/// Fabric-wide peer-liveness board, shared between socket pumps, endpoint
/// tables and the task watchdog. The default (in-memory fabric) never
/// reports down.
#[derive(Debug, Clone, Default)]
pub(crate) struct FabricHealth {
    inner: Arc<HealthInner>,
}

impl FabricHealth {
    /// Record a dead peer. The first report wins; later ones only keep the
    /// `down` flag set.
    pub fn mark_down(&self, pd: PeerDown) {
        let mut slot = self.inner.first.lock().expect("health lock");
        if slot.is_none() {
            *slot = Some(pd);
        }
        drop(slot);
        self.inner.down.store(true, Ordering::Release);
    }

    /// The first recorded peer death, if any.
    pub fn peer_down(&self) -> Option<PeerDown> {
        if !self.inner.down.load(Ordering::Acquire) {
            return None;
        }
        self.inner.first.lock().expect("health lock").clone()
    }

    /// The first recorded peer death as the error channel ops surface.
    pub fn error(&self) -> Option<SmiError> {
        self.peer_down()
            .map(|p| SmiError::PeerDisconnected { rank: p.rank })
    }

    /// Upgrade a progress-starvation error (timeout, deadline, stall) to
    /// [`SmiError::PeerDisconnected`] when a dead peer explains the stall;
    /// all other errors pass through unchanged.
    pub fn escalate(&self, e: SmiError) -> SmiError {
        if matches!(
            e,
            SmiError::Timeout { .. } | SmiError::DeadlineExceeded { .. } | SmiError::Stalled { .. }
        ) {
            if let Some(err) = self.error() {
                return err;
            }
        }
        e
    }
}

// ---------------------------------------------------------------------------
// Stream wrapper
// ---------------------------------------------------------------------------

/// A connected byte stream of either socket family.
pub(crate) enum SocketStream {
    /// TCP (loopback or cross-host).
    Tcp(TcpStream),
    /// Unix-domain (same host; the low-latency multi-process default).
    Unix(UnixStream),
}

impl SocketStream {
    /// Toggle nonblocking mode (the pump requires nonblocking; the
    /// bootstrap hello exchange runs blocking with a read timeout).
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.set_nonblocking(nb),
            SocketStream::Unix(s) => s.set_nonblocking(nb),
        }
    }

    /// Bound blocking reads (used only during the hello exchange).
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.set_read_timeout(t),
            SocketStream::Unix(s) => s.set_read_timeout(t),
        }
    }

    /// Human-readable peer address for diagnostics.
    pub fn peer_label(&self) -> String {
        match self {
            SocketStream::Tcp(s) => s
                .peer_addr()
                .map(|a| format!("tcp://{a}"))
                .unwrap_or_else(|_| "tcp://?".into()),
            SocketStream::Unix(s) => s
                .peer_addr()
                .ok()
                .and_then(|a| a.as_pathname().map(|p| format!("uds://{}", p.display())))
                .unwrap_or_else(|| "uds://<unnamed>".into()),
        }
    }
}

impl Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.read(buf),
            SocketStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.write(buf),
            SocketStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.flush(),
            SocketStream::Unix(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Append one framed burst to a serialization buffer.
pub(crate) fn encode_frame_into(
    out: &mut Vec<u8>,
    src_rank: u16,
    src_qsfp: u16,
    burst: &[NetworkPacket],
) {
    out.reserve(FRAME_HEADER_BYTES + burst.len() * PACKET_BYTES);
    out.extend_from_slice(&src_rank.to_le_bytes());
    out.extend_from_slice(&src_qsfp.to_le_bytes());
    out.extend_from_slice(&(burst.len() as u32).to_le_bytes());
    for p in burst {
        out.extend_from_slice(&p.pack());
    }
}

/// Send the bootstrap hello identifying this process (blocking mode).
pub(crate) fn send_hello(stream: &mut SocketStream, proc_idx: usize) -> io::Result<()> {
    let mut hdr = [0u8; FRAME_HEADER_BYTES];
    hdr[..2].copy_from_slice(&HELLO_RANK.to_le_bytes());
    hdr[4..8].copy_from_slice(&(proc_idx as u32).to_le_bytes());
    stream.write_all(&hdr)?;
    stream.flush()
}

/// Receive the peer's bootstrap hello, returning its process index
/// (blocking mode; callers set a read timeout first).
pub(crate) fn recv_hello(stream: &mut SocketStream) -> io::Result<usize> {
    let mut hdr = [0u8; FRAME_HEADER_BYTES];
    stream.read_exact(&mut hdr)?;
    let rank = u16::from_le_bytes(hdr[..2].try_into().expect("2 bytes"));
    if rank != HELLO_RANK {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected hello frame, got src_rank {rank}"),
        ));
    }
    Ok(u32::from_le_bytes(hdr[4..8].try_into().expect("4 bytes")) as usize)
}

// ---------------------------------------------------------------------------
// Connection: link handles + pump
// ---------------------------------------------------------------------------

/// One per-link inbound demux queue.
type InQueue = Arc<Mutex<VecDeque<Burst>>>;

struct ConnShared {
    closed: AtomicBool,
    out: Mutex<Vec<u8>>,
}

/// Handle side of one process-pair connection: mints [`LinkTx`]/[`LinkRx`]
/// trait objects for every topology edge multiplexed over the socket. The
/// matching [`SocketPump`] owns the socket and must be registered with the
/// executor for any byte to move.
pub(crate) struct SocketConn {
    shared: Arc<ConnShared>,
    queues: HashMap<(usize, usize), InQueue>,
}

impl SocketConn {
    /// Wrap an established, hello-exchanged stream. `recv_keys` lists the
    /// *sender-side* endpoints `(rank, qsfp)` whose traffic this process
    /// expects over this connection; each gets a demux queue.
    pub fn new(
        stream: SocketStream,
        recv_keys: &[(usize, usize)],
        health: FabricHealth,
        peer: PeerInfo,
    ) -> io::Result<(SocketConn, SocketPump)> {
        stream.set_nonblocking(true)?;
        let shared = Arc::new(ConnShared {
            closed: AtomicBool::new(false),
            out: Mutex::new(Vec::new()),
        });
        let queues: HashMap<(usize, usize), InQueue> = recv_keys
            .iter()
            .map(|&k| (k, Arc::new(Mutex::new(VecDeque::new()))))
            .collect();
        let conn = SocketConn {
            shared: shared.clone(),
            queues: queues.clone(),
        };
        let pump = SocketPump {
            stream,
            shared,
            queues,
            health,
            peer,
            staged: Vec::new(),
            staged_pos: 0,
            rbuf: Vec::new(),
            rpos: 0,
            eof: false,
            done: false,
        };
        Ok((conn, pump))
    }

    /// Send half for the edge leaving local endpoint `(src_rank, src_qsfp)`.
    pub fn tx(&self, src_rank: usize, src_qsfp: usize) -> LinkTx {
        Box::new(SocketLinkTx {
            conn: self.shared.clone(),
            src_rank: src_rank as u16,
            src_qsfp: src_qsfp as u16,
        })
    }

    /// Receive half for traffic sent by the peer endpoint `key`. Panics if
    /// `key` was not in `recv_keys` — a wiring bug.
    pub fn rx(&self, key: (usize, usize)) -> LinkRx {
        Box::new(SocketLinkRx {
            conn: self.shared.clone(),
            queue: self.queues[&key].clone(),
        })
    }
}

struct SocketLinkTx {
    conn: Arc<ConnShared>,
    src_rank: u16,
    src_qsfp: u16,
}

impl Transport for SocketLinkTx {
    fn offer(&mut self, burst: Burst) -> LinkSend {
        if self.conn.closed.load(Ordering::Relaxed) {
            return LinkSend::Closed;
        }
        let mut out = self.conn.out.lock().expect("conn out lock");
        if out.len() >= WRITE_BUF_CAP {
            return LinkSend::Full(burst);
        }
        encode_frame_into(&mut out, self.src_rank, self.src_qsfp, &burst);
        LinkSend::Accepted
    }
}

struct SocketLinkRx {
    conn: Arc<ConnShared>,
    queue: InQueue,
}

impl TransportReceiver for SocketLinkRx {
    fn try_recv(&mut self) -> LinkRecv {
        if let Some(b) = self.queue.lock().expect("in queue lock").pop_front() {
            return LinkRecv::Burst(b);
        }
        if !self.conn.closed.load(Ordering::Acquire) {
            return LinkRecv::Empty;
        }
        // The pump finishes demuxing before setting `closed`; one re-check
        // after observing the flag drains the race window.
        match self.queue.lock().expect("in queue lock").pop_front() {
            Some(b) => LinkRecv::Burst(b),
            None => LinkRecv::Closed,
        }
    }
}

/// The I/O duty cycle of one connection: a [`Pollable`] that flushes the
/// shared outbound buffer to the socket and reads/deframes inbound bytes
/// into the per-link demux queues. Never blocks; backpressure on either
/// side simply leaves bytes where they are until the next poll.
pub(crate) struct SocketPump {
    stream: SocketStream,
    shared: Arc<ConnShared>,
    queues: HashMap<(usize, usize), InQueue>,
    health: FabricHealth,
    peer: PeerInfo,
    /// Bytes swapped out of the shared buffer, partially written.
    staged: Vec<u8>,
    staged_pos: usize,
    /// Inbound bytes not yet parsed (`rpos` = parse cursor).
    rbuf: Vec<u8>,
    rpos: usize,
    eof: bool,
    done: bool,
}

impl SocketPump {
    fn fail(&mut self, detail: String) {
        self.health.mark_down(PeerDown {
            rank: self.peer.rank,
            process: self.peer.process,
            backend: self.peer.backend,
            addr: self.peer.addr.clone(),
            detail,
        });
        self.shared.closed.store(true, Ordering::Release);
        self.done = true;
    }

    fn flush_out(&mut self, progressed: &mut bool) -> Result<(), String> {
        if self.staged_pos == self.staged.len() {
            self.staged.clear();
            self.staged_pos = 0;
            let mut out = self.shared.out.lock().expect("conn out lock");
            if !out.is_empty() {
                std::mem::swap(&mut *out, &mut self.staged);
            }
        }
        while self.staged_pos < self.staged.len() {
            match self.stream.write(&self.staged[self.staged_pos..]) {
                Ok(0) => return Err("write returned 0 (connection closed)".into()),
                Ok(n) => {
                    self.staged_pos += n;
                    *progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // A peer that died mid-stream commonly surfaces as a write
                // error (EPIPE/ECONNRESET) before the read side sees EOF.
                Err(e) => return Err(format!("write failed: {e}")),
            }
        }
        Ok(())
    }

    fn fill_rbuf(&mut self, progressed: &mut bool) -> Result<(), String> {
        if self.eof {
            return Ok(());
        }
        let mut chunk = [0u8; READ_CHUNK];
        for _ in 0..4 {
            if self.rbuf.len() - self.rpos > READ_BUF_CAP {
                break;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    *progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(format!("read failed: {e}")),
            }
        }
        Ok(())
    }

    fn deframe(&mut self, progressed: &mut bool) -> Result<(), String> {
        loop {
            let avail = self.rbuf.len() - self.rpos;
            if avail < FRAME_HEADER_BYTES {
                break;
            }
            let hdr = &self.rbuf[self.rpos..self.rpos + FRAME_HEADER_BYTES];
            let src_rank = u16::from_le_bytes(hdr[..2].try_into().expect("2 bytes"));
            let src_qsfp = u16::from_le_bytes(hdr[2..4].try_into().expect("2 bytes"));
            let npackets = u32::from_le_bytes(hdr[4..8].try_into().expect("4 bytes")) as usize;
            if src_rank == HELLO_RANK {
                return Err("unexpected hello frame mid-stream".into());
            }
            if npackets > MAX_FRAME_PACKETS {
                return Err(format!("corrupt frame: {npackets} packets claimed"));
            }
            let need = FRAME_HEADER_BYTES + npackets * PACKET_BYTES;
            if avail < need {
                break;
            }
            let key = (src_rank as usize, src_qsfp as usize);
            let Some(queue) = self.queues.get(&key) else {
                return Err(format!(
                    "frame from unknown endpoint (rank {src_rank}, qsfp {src_qsfp})"
                ));
            };
            let mut q = queue.lock().expect("in queue lock");
            if q.len() >= INBOUND_QUEUE_CAP {
                // Head-of-line backpressure: stop parsing until the slow
                // CKR input drains its queue.
                break;
            }
            let mut burst: Burst = Vec::with_capacity(npackets);
            let mut off = self.rpos + FRAME_HEADER_BYTES;
            for _ in 0..npackets {
                let bytes: &[u8; PACKET_BYTES] = self.rbuf[off..off + PACKET_BYTES]
                    .try_into()
                    .expect("packet slice");
                let pkt = NetworkPacket::unpack(bytes)
                    .map_err(|e| format!("undecodable packet on wire: {e}"))?;
                burst.push(pkt);
                off += PACKET_BYTES;
            }
            q.push_back(burst);
            drop(q);
            self.rpos += need;
            *progressed = true;
        }
        if self.rpos > 0 && (self.rpos == self.rbuf.len() || self.rpos >= READ_CHUNK * 4) {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        Ok(())
    }

    /// After EOF: remaining unparsed bytes are either complete frames
    /// blocked on a full queue (keep polling) or a truncated tail.
    fn eof_verdict(&self) -> Option<String> {
        let avail = self.rbuf.len() - self.rpos;
        if avail == 0 {
            return Some("connection closed by peer (EOF)".into());
        }
        if avail < FRAME_HEADER_BYTES {
            return Some(format!("link cut mid-frame ({avail} trailing bytes)"));
        }
        let hdr = &self.rbuf[self.rpos..self.rpos + FRAME_HEADER_BYTES];
        let npackets = u32::from_le_bytes(hdr[4..8].try_into().expect("4 bytes")) as usize;
        if avail < FRAME_HEADER_BYTES + npackets.min(MAX_FRAME_PACKETS) * PACKET_BYTES {
            return Some(format!("link cut mid-frame ({avail} trailing bytes)"));
        }
        None // complete frame waiting on a full demux queue
    }
}

impl Pollable for SocketPump {
    fn poll(&mut self) -> Step {
        if self.done {
            return Step::Done;
        }
        let mut progressed = false;
        let r = self
            .flush_out(&mut progressed)
            .and_then(|()| self.fill_rbuf(&mut progressed))
            .and_then(|()| self.deframe(&mut progressed));
        if let Err(detail) = r {
            self.fail(detail);
            return Step::Progress;
        }
        if self.eof {
            if let Some(detail) = self.eof_verdict() {
                self.fail(detail);
                return Step::Progress;
            }
        }
        if progressed {
            Step::Progress
        } else {
            Step::Idle
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smi_wire::PacketOp;

    fn pair() -> (SocketStream, SocketStream) {
        let (a, b) = UnixStream::pair().expect("socketpair");
        (SocketStream::Unix(a), SocketStream::Unix(b))
    }

    fn pkt(dst: u8, tag: u8) -> NetworkPacket {
        let mut p = NetworkPacket::new(0, dst, 0, PacketOp::Send);
        p.payload[0] = tag;
        p.header.count = 1;
        p
    }

    fn peer(backend: &'static str) -> PeerInfo {
        PeerInfo {
            rank: 1,
            process: 1,
            backend,
            addr: "test".into(),
        }
    }

    #[test]
    fn hello_roundtrip() {
        let (mut a, mut b) = pair();
        send_hello(&mut a, 3).unwrap();
        assert_eq!(recv_hello(&mut b).unwrap(), 3);
    }

    #[test]
    fn bursts_cross_the_socket_in_order() {
        let (sa, sb) = pair();
        let health = FabricHealth::default();
        // A sends from endpoint (0,0); B receives the same key.
        let (conn_a, mut pump_a) = SocketConn::new(sa, &[], health.clone(), peer("uds")).unwrap();
        let (conn_b, mut pump_b) =
            SocketConn::new(sb, &[(0, 0)], health.clone(), peer("uds")).unwrap();
        let mut tx = conn_a.tx(0, 0);
        let mut rx = conn_b.rx((0, 0));
        for i in 0..50u8 {
            assert!(matches!(tx.offer(vec![pkt(1, i)]), LinkSend::Accepted));
        }
        let mut seen = Vec::new();
        while seen.len() < 50 {
            pump_a.poll();
            pump_b.poll();
            while let LinkRecv::Burst(b) = rx.try_recv() {
                seen.extend(b.iter().map(|p| p.payload[0]));
            }
        }
        assert_eq!(seen, (0..50u8).collect::<Vec<_>>());
        assert!(health.peer_down().is_none());
    }

    #[test]
    fn peer_death_marks_health_and_closes_links() {
        let (sa, sb) = pair();
        let health_a = FabricHealth::default();
        let (conn_a, mut pump_a) =
            SocketConn::new(sa, &[(1, 0)], health_a.clone(), peer("uds")).unwrap();
        let (conn_b, mut pump_b) =
            SocketConn::new(sb, &[], FabricHealth::default(), peer("uds")).unwrap();
        // B sends one burst, then dies (stream dropped).
        let mut btx = conn_b.tx(1, 0);
        assert!(matches!(btx.offer(vec![pkt(0, 7)]), LinkSend::Accepted));
        for _ in 0..100 {
            pump_b.poll();
        }
        drop(pump_b);
        drop(conn_b);
        // A must deliver the in-flight burst, then report the dead peer.
        let mut rx = conn_a.rx((1, 0));
        let mut got = None;
        let mut closed = false;
        for _ in 0..10_000 {
            pump_a.poll();
            match rx.try_recv() {
                LinkRecv::Burst(b) => got = Some(b),
                LinkRecv::Closed => {
                    closed = true;
                    break;
                }
                LinkRecv::Empty => std::thread::yield_now(),
            }
        }
        assert_eq!(got.expect("in-flight burst delivered")[0].payload[0], 7);
        assert!(closed, "rx must report Closed after peer death");
        let pd = health_a.peer_down().expect("health board marked");
        assert_eq!(pd.rank, 1);
        assert_eq!(pd.backend, "uds");
        // Sends toward the dead peer report Closed, not Full.
        let mut tx = conn_a.tx(0, 0);
        assert!(matches!(tx.offer(vec![pkt(1, 0)]), LinkSend::Closed));
        assert_eq!(
            health_a.error(),
            Some(SmiError::PeerDisconnected { rank: 1 })
        );
    }

    #[test]
    fn frame_encode_shape() {
        let mut out = Vec::new();
        encode_frame_into(&mut out, 5, 2, &[pkt(1, 9), pkt(1, 10)]);
        assert_eq!(out.len(), FRAME_HEADER_BYTES + 2 * PACKET_BYTES);
        assert_eq!(u16::from_le_bytes(out[..2].try_into().unwrap()), 5);
        assert_eq!(u16::from_le_bytes(out[2..4].try_into().unwrap()), 2);
        assert_eq!(u32::from_le_bytes(out[4..8].try_into().unwrap()), 2);
    }
}
